"""Legacy setup shim.

The evaluation environment has setuptools but no ``wheel`` package, so
PEP 660 editable installs cannot build; this shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``pip install -e .`` via the fallback) use the classic develop path.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
