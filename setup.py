"""Legacy setup shim plus the optional native-engine extension.

The evaluation environment has setuptools but no ``wheel`` package, so
PEP 660 editable installs cannot build; this shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``pip install -e .`` via the fallback) use the classic develop path.
All project metadata lives in ``pyproject.toml``.

The native scan kernel (``repro.core._nativescan``) is declared here
as an *optional* extension: when a C compiler is present the wheel
ships the prebuilt kernel; when compilation fails (or
``REPRO_DISABLE_NATIVE=1`` is set at build time) the build completes
without it and the engine ladder falls back at runtime.  A source
checkout run via ``PYTHONPATH=src`` gets the same kernel through the
just-in-time build in ``repro.core._native_build``, so installing is
never required.  The checked-in C file is the canonical kernel — no
Cython toolchain is needed to build or rebuild it.
"""

import os

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class optional_build_ext(build_ext):
    """Build the native kernel if possible; never fail the install."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # pragma: no cover - toolchain-specific
            print(f"skipping optional native extension: {exc}")

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # pragma: no cover - toolchain-specific
            print(f"skipping optional extension {ext.name}: {exc}")


if os.environ.get("REPRO_DISABLE_NATIVE", "") not in ("", "0"):
    ext_modules = []
else:
    ext_modules = [
        Extension(
            "repro.core._nativescan",
            sources=["src/repro/core/_nativescan.c"],
            optional=True,
        )
    ]

setup(
    ext_modules=ext_modules,
    cmdclass={"build_ext": optional_build_ext},
)
