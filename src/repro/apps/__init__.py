"""Applications built on the token tagger (the paper's §4 and §5.1).

* :mod:`repro.apps.xmlrpc` — the XML-RPC content-based message router
  of §4 (Fig. 12), with message model, workload generator and both
  context-aware and naive baselines;
* :mod:`repro.apps.content_filter` — a token-context content filter;
* :mod:`repro.apps.nids` — a context-aware signature tagger in the
  style of the network-intrusion-detection applications of §5.1;
* :mod:`repro.apps.structgen` — the constrained-decoding subsystem:
  per-automaton-state valid-token bitmasks over an LLM-style
  vocabulary, precomputed from the compiled tables and served as
  decode sessions (imported lazily — ``from repro.apps import
  structgen``).
"""

from repro.apps.xmlrpc import (
    ContentBasedRouter,
    MethodCall,
    NaiveRouter,
    RoutedMessage,
    ServiceTable,
    WorkloadGenerator,
)
from repro.apps.content_filter import ContentFilter, FilterRule
from repro.apps.nids import ContextSignatureScanner, Signature, SignatureAlert

__all__ = [
    "ContentBasedRouter",
    "ContentFilter",
    "ContextSignatureScanner",
    "FilterRule",
    "MethodCall",
    "NaiveRouter",
    "RoutedMessage",
    "ServiceTable",
    "Signature",
    "SignatureAlert",
    "WorkloadGenerator",
]
