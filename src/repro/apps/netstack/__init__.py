"""Packet-processing substrate for the FPX deployment (§5.2).

"We also plan to incorporate this work into the Field-programmable
Port Extender (FPX). … Modules have already been developed for the
FPX that aid in the processing of common protocols such as IP and
TCP." (§5.2, citing the layered protocol wrappers and TCP-Splitter)

The paper's tagger processes *network streams*; this package builds
the plumbing it would sit behind on the FPX:

* :mod:`repro.apps.netstack.packets` — Ethernet/IPv4/TCP header
  model, serialization, checksums;
* :mod:`repro.apps.netstack.flows` — a TCP-Splitter-style in-order
  byte-stream reassembler (monitor-side: no retransmission, just
  sequence tracking and reorder buffering);
* :mod:`repro.apps.netstack.tracegen` — synthetic trace generation
  (segmentation, flow interleaving, reordering, duplication);
* :mod:`repro.apps.netstack.wrapper` — the layered wrapper: packets
  in, per-flow tagged tokens / routed messages out.
"""

from repro.apps.netstack.packets import (
    EthernetHeader,
    IPv4Header,
    Packet,
    TCPHeader,
    ipv4_checksum,
)
from repro.apps.netstack.flows import FlowKey, TCPReassembler
from repro.apps.netstack.tracegen import TraceGenerator
from repro.apps.netstack.wrapper import TaggingWrapper

__all__ = [
    "EthernetHeader",
    "FlowKey",
    "IPv4Header",
    "Packet",
    "TCPHeader",
    "TCPReassembler",
    "TaggingWrapper",
    "TraceGenerator",
    "ipv4_checksum",
]
