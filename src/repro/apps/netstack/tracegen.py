"""Synthetic packet-trace generation.

The paper evaluated against live 1+ Gbps traffic we do not have; this
generator produces the closest synthetic equivalent (see DESIGN.md §2):
application payloads segmented into TCP flows with configurable MSS,
flow interleaving, reordering and duplication — the impairments the
TCP-Splitter-style reassembler must undo before the tagger sees clean
byte streams.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.apps.netstack.packets import IPv4Header, Packet, TCPHeader


@dataclass
class TraceGenerator:
    """Seeded builder of TCP packet traces from application payloads."""

    seed: int = 2006
    mss: int = 64
    #: probability that two adjacent packets of the shuffled trace swap
    reorder_rate: float = 0.0
    #: probability that a packet is emitted twice
    duplicate_rate: float = 0.0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------
    def flow_packets(
        self,
        payload: bytes,
        src: str = "10.0.0.1",
        dst: str = "10.0.0.2",
        src_port: int = 40000,
        dst_port: int = 80,
        initial_seq: int | None = None,
    ) -> list[Packet]:
        """One flow: SYN, MSS-sized data segments, FIN — in order."""
        rng = self._rng
        seq = initial_seq if initial_seq is not None else rng.randrange(1 << 32)
        ip = IPv4Header(src=src, dst=dst)
        packets = [
            Packet(ip, TCPHeader(src_port, dst_port, seq=seq, flags=TCPHeader.SYN))
        ]
        cursor = (seq + 1) % (1 << 32)
        for start in range(0, len(payload), self.mss):
            chunk = payload[start : start + self.mss]
            packets.append(
                Packet(ip, TCPHeader(src_port, dst_port, seq=cursor), chunk)
            )
            cursor = (cursor + len(chunk)) % (1 << 32)
        packets.append(
            Packet(
                ip,
                TCPHeader(
                    src_port,
                    dst_port,
                    seq=cursor,
                    flags=TCPHeader.FIN | TCPHeader.ACK_FLAG,
                ),
            )
        )
        return packets

    # ------------------------------------------------------------------
    def impair(self, packets: list[Packet]) -> list[Packet]:
        """Apply duplication and local reordering (never across SYN)."""
        rng = self._rng
        result: list[Packet] = []
        for packet in packets:
            result.append(packet)
            if packet.payload and rng.random() < self.duplicate_rate:
                result.append(packet)
        index = 1
        while index < len(result) - 1:
            here, there = result[index], result[index + 1]
            if (
                here.payload
                and there.payload
                and rng.random() < self.reorder_rate
            ):
                result[index], result[index + 1] = there, here
                index += 2
            else:
                index += 1
        return result

    def interleave(self, flows: list[list[Packet]]) -> list[Packet]:
        """Merge flows packet-by-packet in seeded random order."""
        rng = self._rng
        cursors = [0] * len(flows)
        trace: list[Packet] = []
        while any(c < len(f) for c, f in zip(cursors, flows)):
            candidates = [
                i for i, (c, f) in enumerate(zip(cursors, flows)) if c < len(f)
            ]
            chosen = rng.choice(candidates)
            trace.append(flows[chosen][cursors[chosen]])
            cursors[chosen] += 1
        return trace

    # ------------------------------------------------------------------
    def trace(
        self, payloads: list[bytes], base_port: int = 40000
    ) -> list[Packet]:
        """A full impaired, interleaved trace, one flow per payload."""
        flows = [
            self.impair(
                self.flow_packets(
                    payload,
                    src=f"10.0.{i // 250}.{i % 250 + 1}",
                    src_port=base_port + i,
                )
            )
            for i, payload in enumerate(payloads)
        ]
        return self.interleave(flows)

    def wire_bytes(self, packets: list[Packet]) -> list[bytes]:
        """Serialized frames, as captured off the wire."""
        return [packet.serialize() for packet in packets]
