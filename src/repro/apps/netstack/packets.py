"""Ethernet / IPv4 / TCP packet model.

Binary-faithful header structures with serialization, parsing and the
IPv4 header checksum — the protocol layers the FPX wrappers [5] strip
before content processing. Only the fields the reproduction exercises
are modelled; everything serializes to correct wire format so the
parse/serialize round-trip is testable bit-for-bit.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import BackendError

ETHERTYPE_IPV4 = 0x0800
PROTO_TCP = 6


def ipv4_checksum(header: bytes) -> int:
    """RFC 791 ones-complement sum over 16-bit words."""
    if len(header) % 2:
        header += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", header):
        total += word
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def _parse_mac(text: str) -> bytes:
    parts = text.split(":")
    if len(parts) != 6:
        raise BackendError(f"bad MAC address {text!r}")
    return bytes(int(p, 16) for p in parts)


def _parse_ip(text: str) -> bytes:
    parts = text.split(".")
    if len(parts) != 4 or any(not 0 <= int(p) <= 255 for p in parts):
        raise BackendError(f"bad IPv4 address {text!r}")
    return bytes(int(p) for p in parts)


@dataclass(frozen=True)
class EthernetHeader:
    """14-byte Ethernet II header."""

    dst: str = "02:00:00:00:00:02"
    src: str = "02:00:00:00:00:01"
    ethertype: int = ETHERTYPE_IPV4

    def serialize(self) -> bytes:
        return _parse_mac(self.dst) + _parse_mac(self.src) + struct.pack(
            "!H", self.ethertype
        )

    @classmethod
    def parse(cls, data: bytes) -> tuple["EthernetHeader", bytes]:
        if len(data) < 14:
            raise BackendError("truncated Ethernet header")
        dst = ":".join(f"{b:02x}" for b in data[0:6])
        src = ":".join(f"{b:02x}" for b in data[6:12])
        (ethertype,) = struct.unpack("!H", data[12:14])
        return cls(dst=dst, src=src, ethertype=ethertype), data[14:]


@dataclass(frozen=True)
class IPv4Header:
    """20-byte IPv4 header (no options)."""

    src: str
    dst: str
    protocol: int = PROTO_TCP
    ttl: int = 64
    identification: int = 0
    total_length: int = 20

    def serialize(self) -> bytes:
        header = struct.pack(
            "!BBHHHBBH4s4s",
            (4 << 4) | 5,          # version + IHL
            0,                      # DSCP/ECN
            self.total_length,
            self.identification,
            0,                      # flags/fragment offset
            self.ttl,
            self.protocol,
            0,                      # checksum placeholder
            _parse_ip(self.src),
            _parse_ip(self.dst),
        )
        checksum = ipv4_checksum(header)
        return header[:10] + struct.pack("!H", checksum) + header[12:]

    @classmethod
    def parse(cls, data: bytes) -> tuple["IPv4Header", bytes]:
        if len(data) < 20:
            raise BackendError("truncated IPv4 header")
        (vihl, _tos, total_length, identification, _frag, ttl, protocol,
         checksum, src, dst) = struct.unpack("!BBHHHBBH4s4s", data[:20])
        if vihl >> 4 != 4:
            raise BackendError(f"not IPv4 (version {vihl >> 4})")
        ihl = (vihl & 0xF) * 4
        if ipv4_checksum(data[:ihl]) != 0:
            raise BackendError("IPv4 header checksum mismatch")
        header = cls(
            src=".".join(str(b) for b in src),
            dst=".".join(str(b) for b in dst),
            protocol=protocol,
            ttl=ttl,
            identification=identification,
            total_length=total_length,
        )
        return header, data[ihl:]


@dataclass(frozen=True)
class TCPHeader:
    """20-byte TCP header (no options)."""

    src_port: int
    dst_port: int
    seq: int
    ack: int = 0
    flags: int = 0x18  # PSH|ACK
    window: int = 65535

    SYN = 0x02
    FIN = 0x01
    ACK_FLAG = 0x10

    def serialize(self) -> bytes:
        return struct.pack(
            "!HHIIBBHHH",
            self.src_port,
            self.dst_port,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            5 << 4,             # data offset
            self.flags,
            self.window,
            0,                  # checksum (monitor-side: unchecked)
            0,                  # urgent pointer
        )

    @classmethod
    def parse(cls, data: bytes) -> tuple["TCPHeader", bytes]:
        if len(data) < 20:
            raise BackendError("truncated TCP header")
        (src_port, dst_port, seq, ack, offset_byte, flags, window,
         _checksum, _urgent) = struct.unpack("!HHIIBBHHH", data[:20])
        offset = (offset_byte >> 4) * 4
        return (
            cls(
                src_port=src_port,
                dst_port=dst_port,
                seq=seq,
                ack=ack,
                flags=flags,
                window=window,
            ),
            data[offset:],
        )


@dataclass(frozen=True)
class Packet:
    """A full frame: Ethernet + IPv4 + TCP + payload."""

    ip: IPv4Header
    tcp: TCPHeader
    payload: bytes = b""
    ethernet: EthernetHeader = field(default_factory=EthernetHeader)

    def serialize(self) -> bytes:
        ip = IPv4Header(
            src=self.ip.src,
            dst=self.ip.dst,
            protocol=self.ip.protocol,
            ttl=self.ip.ttl,
            identification=self.ip.identification,
            total_length=20 + 20 + len(self.payload),
        )
        return (
            self.ethernet.serialize()
            + ip.serialize()
            + self.tcp.serialize()
            + self.payload
        )

    @classmethod
    def parse(cls, frame: bytes) -> "Packet":
        ethernet, rest = EthernetHeader.parse(frame)
        if ethernet.ethertype != ETHERTYPE_IPV4:
            raise BackendError(f"not IPv4 (ethertype {ethernet.ethertype:#x})")
        ip, rest = IPv4Header.parse(rest)
        if ip.protocol != PROTO_TCP:
            raise BackendError(f"not TCP (protocol {ip.protocol})")
        tcp, rest = TCPHeader.parse(rest)
        payload_length = ip.total_length - 40
        return cls(
            ethernet=ethernet, ip=ip, tcp=tcp, payload=rest[:payload_length]
        )
