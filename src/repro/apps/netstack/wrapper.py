"""Layered protocol wrapper: packets in, tagged content out.

The FPX composes "layered protocol wrappers" [5] with content
processors; this is that composition in the reproduction: frames are
parsed, TCP flows reassembled, and each flow's in-order byte stream is
run through its own tagger back-end — here the §4 XML-RPC router.

Per-flow state mirrors the hardware reality: one scanning context per
flow (the FPX TCP scanner kept per-flow matcher state the same way).
With the compiled tagger engine each flow owns a streaming
:class:`~repro.apps.xmlrpc.router.RouterSession`, so payload bytes are
tagged as packets arrive instead of being re-scanned from the start of
the flow on every inspection; taggers that cannot scan incrementally
fall back to whole-stream routing at :meth:`TaggingWrapper.results`
time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.netstack.flows import FlowKey, TCPReassembler
from repro.apps.netstack.packets import Packet
from repro.apps.xmlrpc.router import (
    ContentBasedRouter,
    RoutedMessage,
    RouterSession,
)
from repro.errors import BackendError


@dataclass
class FlowResult:
    """Everything the wrapper extracted from one flow."""

    key: FlowKey
    payload: bytes = b""
    messages: list[RoutedMessage] = field(default_factory=list)


class TaggingWrapper:
    """Packet-level front end for a content-based router.

    Example
    -------
    >>> from repro.apps.netstack.tracegen import TraceGenerator
    >>> from repro.apps.xmlrpc import MethodCall
    >>> wrapper = TaggingWrapper()
    >>> trace = TraceGenerator(mss=16).trace([MethodCall("buy").encode()])
    >>> results = wrapper.process(trace)
    >>> results[0].messages[0].port
    1
    """

    def __init__(self, router: ContentBasedRouter | None = None) -> None:
        self.router = router if router is not None else ContentBasedRouter()
        self.reassembler = TCPReassembler()
        self._payloads: dict[FlowKey, bytearray] = {}
        self._sessions: dict[FlowKey, RouterSession] = {}
        self._messages: dict[FlowKey, list[RoutedMessage]] = {}
        try:
            self.router.stream()
            self._streaming = True
        except BackendError:
            # e.g. a gate-level tagger: route whole streams at results()
            self._streaming = False
        self.malformed = 0

    # ------------------------------------------------------------------
    def push_frame(self, frame: bytes) -> None:
        """Consume one wire frame (parse errors are counted, not fatal)."""
        try:
            self.push_packet(Packet.parse(frame))
        except BackendError:
            self.malformed += 1

    def push_packet(self, packet: Packet) -> None:
        key, data = self.reassembler.push(packet)
        if data:
            self._payloads.setdefault(key, bytearray()).extend(data)
            if self._streaming:
                session = self._sessions.get(key)
                if session is None:
                    session = self._sessions[key] = self.router.stream()
                    self._messages[key] = []
                self._messages[key].extend(session.feed(bytes(data)))

    # ------------------------------------------------------------------
    def results(self) -> list[FlowResult]:
        """Every flow's messages so far (idempotent; callable mid-trace).

        Streaming flows report the messages their sessions already
        emitted plus whatever end-of-data would complete right now
        (evaluated on a snapshot, so later packets still tag
        incrementally).
        """
        results = []
        for key, payload in self._payloads.items():
            data = bytes(payload)
            if self._streaming:
                session = self._sessions[key]
                messages = self._messages[key] + session.peek_finish()
            else:
                messages = self.router.route(data)
            results.append(
                FlowResult(key=key, payload=data, messages=messages)
            )
        return results

    def process(
        self, packets: list[Packet] | None = None, frames: list[bytes] | None = None
    ) -> list[FlowResult]:
        """Convenience: push a whole trace and return the flow results."""
        for packet in packets or ():
            self.push_packet(packet)
        for frame in frames or ():
            self.push_frame(frame)
        return self.results()
