"""Layered protocol wrapper: packets in, tagged content out.

The FPX composes "layered protocol wrappers" [5] with content
processors; this is that composition in the reproduction: frames are
parsed, TCP flows reassembled, and each flow's in-order byte stream is
run through its own tagger back-end — here the §4 XML-RPC router.

Per-flow state mirrors the hardware reality: one scanning context per
flow (the FPX TCP scanner kept per-flow matcher state the same way).
Three back-end arrangements are supported:

* **local streaming** (default): each flow owns a
  :class:`~repro.apps.xmlrpc.router.RouterSession`, so payload bytes
  are tagged as packets arrive;
* **sharded**: pass a running :class:`~repro.service.ScanService` and
  reassembled flow bytes are submitted to the worker pool instead,
  hash-sharded by :class:`~repro.apps.netstack.flows.FlowKey` — the
  multi-process arrangement for heavy multi-flow traffic (results are
  collected at :meth:`results`/:meth:`finish` time);
* **whole-stream fallback**: taggers that cannot scan incrementally
  (e.g. gate-level) are re-run over each flow's bytes at inspection
  time.

The wrapper itself implements the
:class:`~repro.core.api.StreamSession` contract — ``feed(frame)``
consumes one wire frame and returns the ``(flow, message)`` pairs it
completed, ``finish()`` flushes every flow against end-of-data — with
``push_frame`` kept as a deprecated alias.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.netstack.flows import FlowKey, TCPReassembler
from repro.apps.netstack.packets import Packet
from repro.apps.xmlrpc.router import (
    ContentBasedRouter,
    RoutedMessage,
    RouterSession,
)
from repro.core.api import StreamSession, warn_deprecated
from repro.errors import BackendError


@dataclass
class FlowResult:
    """Everything the wrapper extracted from one flow."""

    key: FlowKey
    payload: bytes = b""
    messages: list[RoutedMessage] = field(default_factory=list)


class TaggingWrapper(StreamSession):
    """Packet-level front end for a content-based router.

    Example
    -------
    >>> from repro.apps.netstack.tracegen import TraceGenerator
    >>> from repro.apps.xmlrpc import MethodCall
    >>> wrapper = TaggingWrapper()
    >>> trace = TraceGenerator(mss=16).trace([MethodCall("buy").encode()])
    >>> results = wrapper.process(trace)
    >>> results[0].messages[0].port
    1
    """

    def __init__(
        self,
        router: ContentBasedRouter | None = None,
        service=None,
    ) -> None:
        self.router = router if router is not None else ContentBasedRouter()
        #: A started :class:`~repro.service.ScanService` (RouterSpec
        #: workers); when set, flow bytes are scanned by the pool.
        self.service = service
        self.reassembler = TCPReassembler()
        self._payloads: dict[FlowKey, bytearray] = {}
        self._sessions: dict[FlowKey, RouterSession] = {}
        self._messages: dict[FlowKey, list[RoutedMessage]] = {}
        self._final: list[FlowResult] | None = None
        if service is not None:
            self._streaming = True
        else:
            try:
                self.router.stream()
                self._streaming = True
            except BackendError:
                # e.g. a gate-level tagger: route whole streams at
                # inspection time instead
                self._streaming = False
        self.malformed = 0

    # ------------------------------------------------------------------
    # StreamSession surface
    # ------------------------------------------------------------------
    def feed(self, frame: bytes) -> list[tuple[FlowKey, RoutedMessage]]:
        """Consume one wire frame; return the (flow, message) pairs it
        completed (parse errors are counted, not fatal).

        With a sharded service attached, scanning is asynchronous and
        this returns ``[]``; completed messages are collected by
        :meth:`results` / :meth:`finish`.
        """
        self._check_open()
        try:
            packet = Packet.parse(frame)
        except BackendError:
            self.malformed += 1
            return []
        return self.feed_packet(packet)

    def feed_packet(
        self, packet: Packet
    ) -> list[tuple[FlowKey, RoutedMessage]]:
        """Like :meth:`feed` for an already-parsed packet."""
        self._check_open()
        key, data = self.reassembler.push(packet)
        completed: list[tuple[FlowKey, RoutedMessage]] = []
        if data:
            self._payloads.setdefault(key, bytearray()).extend(data)
            if self.service is not None:
                self.service.submit(key, bytes(data))
            elif self._streaming:
                session = self._sessions.get(key)
                if session is None:
                    session = self._sessions[key] = self.router.stream()
                    self._messages[key] = []
                messages = session.feed(bytes(data))
                self._messages[key].extend(messages)
                completed.extend((key, message) for message in messages)
        return completed

    def finish(self) -> list[FlowResult]:
        """Flush every flow against end-of-data and end the session.

        Returns the final per-flow results (also cached, so
        :meth:`results` keeps answering afterwards).
        """
        self._check_open()
        if self.service is not None:
            for key in self._payloads:
                self.service.finish_flow(key)
            self.service.drain()
            merged = self.service.results()
            results = [
                FlowResult(
                    key=key,
                    payload=bytes(payload),
                    messages=list(merged.get(key, [])),
                )
                for key, payload in self._payloads.items()
            ]
        else:
            results = []
            for key, payload in self._payloads.items():
                data = bytes(payload)
                if self._streaming:
                    messages = self._messages[key] + self._sessions[
                        key
                    ].finish()
                else:
                    messages = self.router.route(data)
                results.append(
                    FlowResult(key=key, payload=data, messages=messages)
                )
        self._finished = True
        self._final = results
        return results

    # ------------------------------------------------------------------
    # inspection API
    # ------------------------------------------------------------------
    def results(self) -> list[FlowResult]:
        """Every flow's messages so far (idempotent; callable mid-trace).

        Streaming flows report the messages already emitted plus
        whatever end-of-data would complete right now, evaluated on a
        snapshot — local sessions via
        :meth:`~repro.apps.xmlrpc.router.RouterSession.peek_finish`,
        sharded flows via a worker-side
        :meth:`~repro.service.ScanService.peek` round trip — so later
        packets still tag incrementally.
        """
        if self._final is not None:
            return self._final
        if self.service is not None:
            self.service.drain()
            merged = self.service.results()
            return [
                FlowResult(
                    key=key,
                    payload=bytes(payload),
                    messages=list(merged.get(key, []))
                    + self.service.peek(key),
                )
                for key, payload in self._payloads.items()
            ]
        results = []
        for key, payload in self._payloads.items():
            data = bytes(payload)
            if self._streaming:
                session = self._sessions[key]
                messages = self._messages[key] + session.peek_finish()
            else:
                messages = self.router.route(data)
            results.append(
                FlowResult(key=key, payload=data, messages=messages)
            )
        return results

    def process(
        self,
        packets: list[Packet] | None = None,
        frames: list[bytes] | None = None,
    ) -> list[FlowResult]:
        """Convenience: push a whole trace and return the flow results."""
        for packet in packets or ():
            self.feed_packet(packet)
        for frame in frames or ():
            self.feed(frame)
        return self.results()

    # ------------------------------------------------------------------
    # deprecated aliases (pre-StreamSession surface)
    # ------------------------------------------------------------------
    # push_frame is inherited from StreamSession (alias of feed).

    def push_packet(self, packet: Packet) -> None:
        """Deprecated alias of :meth:`feed_packet` (return discarded)."""
        warn_deprecated("TaggingWrapper.push_packet", "feed_packet")
        self.feed_packet(packet)
