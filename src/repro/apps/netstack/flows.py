"""TCP byte-stream reassembly (TCP-Splitter style, refs [29][30]).

A passive monitor, not an endpoint: it tracks each flow's expected
sequence number, buffers out-of-order segments, drops duplicates and
retransmissions of already-delivered bytes, and hands the application
layer an in-order byte stream per flow — exactly the service the
paper's tagger would consume on the FPX.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.netstack.packets import Packet, TCPHeader

_SEQ_MOD = 1 << 32


@dataclass(frozen=True)
class FlowKey:
    """The classic 4-tuple identifying one direction of a connection."""

    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int

    @classmethod
    def of(cls, packet: Packet) -> "FlowKey":
        return cls(
            src_ip=packet.ip.src,
            src_port=packet.tcp.src_port,
            dst_ip=packet.ip.dst,
            dst_port=packet.tcp.dst_port,
        )

    def __str__(self) -> str:
        return (
            f"{self.src_ip}:{self.src_port}->{self.dst_ip}:{self.dst_port}"
        )


@dataclass
class _FlowState:
    expected: int | None = None  # next in-order sequence number
    pending: dict[int, bytes] = field(default_factory=dict)
    delivered: int = 0
    finished: bool = False


@dataclass
class ReassemblyStats:
    """Counters a monitor would export."""

    packets: int = 0
    in_order: int = 0
    out_of_order: int = 0
    duplicates: int = 0
    flows: int = 0


class TCPReassembler:
    """Per-flow in-order delivery of TCP payload bytes.

    :meth:`push` consumes a packet and returns the (possibly empty)
    chunk of newly in-order payload for that packet's flow.

    Example
    -------
    >>> from repro.apps.netstack.packets import IPv4Header, Packet, TCPHeader
    >>> r = TCPReassembler()
    >>> ip = IPv4Header(src="10.0.0.1", dst="10.0.0.2")
    >>> syn = Packet(ip, TCPHeader(1000, 80, seq=7, flags=TCPHeader.SYN))
    >>> _ = r.push(syn)
    >>> key, data = r.push(Packet(ip, TCPHeader(1000, 80, seq=8), b"hi"))
    >>> data
    b'hi'
    """

    def __init__(self, max_pending_per_flow: int = 256) -> None:
        self.flows: dict[FlowKey, _FlowState] = {}
        self.max_pending = max_pending_per_flow
        self.stats = ReassemblyStats()

    # ------------------------------------------------------------------
    def push(self, packet: Packet) -> tuple[FlowKey, bytes]:
        """Consume one packet; return newly in-order bytes for its flow."""
        key = FlowKey.of(packet)
        state = self.flows.get(key)
        if state is None:
            state = _FlowState()
            self.flows[key] = state
            self.stats.flows += 1
        self.stats.packets += 1
        tcp = packet.tcp

        if tcp.flags & TCPHeader.SYN:
            state.expected = (tcp.seq + 1) % _SEQ_MOD
            state.pending.clear()
            return key, b""
        if state.expected is None:
            # Mid-stream capture: synchronize on the first data seen.
            state.expected = tcp.seq

        delivered = bytearray()
        if packet.payload:
            self._stash(state, tcp.seq, packet.payload)
            delivered += self._drain(state)
        if tcp.flags & TCPHeader.FIN:
            state.finished = True
        return key, bytes(delivered)

    def _stash(self, state: _FlowState, seq: int, payload: bytes) -> None:
        offset = (seq - state.expected) % _SEQ_MOD
        if offset >= _SEQ_MOD // 2:
            # Entirely before the expected point: retransmission of
            # delivered data (possibly with a new tail).
            behind = _SEQ_MOD - offset
            if behind >= len(payload):
                self.stats.duplicates += 1
                return
            payload = payload[behind:]
            offset = 0
        seq = (state.expected + offset) % _SEQ_MOD
        existing = state.pending.get(seq)
        if existing is not None and len(existing) >= len(payload):
            self.stats.duplicates += 1
            return
        if offset == 0:
            self.stats.in_order += 1
        else:
            self.stats.out_of_order += 1
        if len(state.pending) >= self.max_pending:
            # Bounded buffering, as hardware would have.
            oldest = max(
                state.pending, key=lambda s: (s - state.expected) % _SEQ_MOD
            )
            del state.pending[oldest]
        state.pending[seq] = payload

    def _drain(self, state: _FlowState) -> bytes:
        out = bytearray()
        while True:
            segment = state.pending.pop(state.expected, None)
            if segment is None:
                # A overlapping earlier segment may cover expected.
                segment = self._overlapping(state)
                if segment is None:
                    break
            out += segment
            state.expected = (state.expected + len(segment)) % _SEQ_MOD
            state.delivered += len(segment)
        return bytes(out)

    def _overlapping(self, state: _FlowState) -> bytes | None:
        """Find a stashed segment that straddles the expected point."""
        for seq, payload in sorted(state.pending.items()):
            offset = (state.expected - seq) % _SEQ_MOD
            if 0 < offset < len(payload):
                del state.pending[seq]
                return payload[offset:]
        return None

    # ------------------------------------------------------------------
    def gaps(self, key: FlowKey) -> int:
        """Out-of-order segments still waiting for a hole to fill."""
        state = self.flows.get(key)
        return len(state.pending) if state else 0

    def finished(self, key: FlowKey) -> bool:
        state = self.flows.get(key)
        return bool(state and state.finished)
