"""Context-aware signature scanning (the §5.1 NIDS application).

"Other applications for the networking community include more
powerful network intrusion detection and prevention systems…" — the
point being that a signature hit inside the *right* grammatical
context is an alert, while the same byte pattern elsewhere is benign
(the false-positive problem of §1).

:class:`ContextSignatureScanner` pairs a protocol grammar with
signatures scoped to elements of the message; it reports each
signature hit with its grammatical context and a verdict, alongside a
naive context-free scan for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tagger import BehavioralTagger
from repro.grammar.analysis import Occurrence
from repro.grammar.cfg import Grammar
from repro.grammar.symbols import Terminal
from repro.software.naive import NaiveScanner, ScanHit


@dataclass(frozen=True)
class Signature:
    """A byte pattern that is malicious only in certain contexts.

    ``contexts`` lists element (non-terminal) names where a hit is a
    true alert; hits anywhere else are benign payload bytes.
    """

    name: str
    pattern: bytes
    contexts: frozenset[str]


@dataclass(frozen=True)
class SignatureAlert:
    """One contextual signature hit."""

    signature: str
    context: str
    start: int
    end: int


@dataclass
class ScanComparison:
    """Contextual alerts vs naive hits for the same stream."""

    alerts: list[SignatureAlert]
    naive_hits: list[ScanHit]

    @property
    def false_positives(self) -> int:
        """Naive hits that the contextual scan did not alert on."""
        alerted = {(a.start, a.end) for a in self.alerts}
        return sum(
            1 for hit in self.naive_hits if (hit.start, hit.end) not in alerted
        )


class ContextSignatureScanner:
    """Scans a tagged stream for in-context signature hits."""

    def __init__(
        self,
        grammar: Grammar,
        signatures: list[Signature],
        tagger: BehavioralTagger | None = None,
    ) -> None:
        self.grammar = grammar
        self.signatures = signatures
        self.tagger = tagger if tagger is not None else BehavioralTagger(grammar)
        #: occurrence -> element (lhs) name, for context lookup
        self._element_of: dict[Occurrence, str] = {}
        for production in grammar.productions:
            for position, symbol in enumerate(production.rhs):
                if isinstance(symbol, Terminal):
                    self._element_of[
                        Occurrence(production.index, position, symbol)
                    ] = production.lhs.name

    # ------------------------------------------------------------------
    def scan(self, data: bytes) -> list[SignatureAlert]:
        """Contextual alerts: signature bytes inside a scoped element."""
        alerts: list[SignatureAlert] = []
        for token in self.tagger.tag(data):
            element = self._element_of.get(token.occurrence, "")
            for signature in self.signatures:
                if element not in signature.contexts:
                    continue
                offset = token.lexeme.find(signature.pattern)
                while offset >= 0:
                    alerts.append(
                        SignatureAlert(
                            signature=signature.name,
                            context=element,
                            start=token.start + offset,
                            end=token.start + offset + len(signature.pattern),
                        )
                    )
                    offset = token.lexeme.find(signature.pattern, offset + 1)
        return alerts

    def compare_with_naive(self, data: bytes) -> ScanComparison:
        """Contextual scan vs a context-free string sweep."""
        naive = NaiveScanner.find_strings(
            data, [s.pattern for s in self.signatures]
        )
        return ScanComparison(alerts=self.scan(data), naive_hits=naive)
