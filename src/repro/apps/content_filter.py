"""Token-context content filter (a §3.5 / §5.1 application).

"Contextual information of the tokens can be used to process the data
more accurately to reduce the number of false positive. Some of the
most obvious applications would be in data filtering…" (§3.5)

A :class:`ContentFilter` drops or flags messages whose tokens match
forbidden values *in specific grammatical contexts* — e.g. forbid the
method name ``withdraw`` while leaving the same word legal inside a
string parameter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.tagger import BehavioralTagger
from repro.core.tokens import TaggedToken
from repro.grammar.analysis import Occurrence
from repro.grammar.cfg import Grammar
from repro.grammar.symbols import Terminal


@dataclass(frozen=True)
class FilterRule:
    """Forbid ``value`` when it appears inside element ``context``.

    ``context`` names a non-terminal (an element); the rule matches
    any non-literal token directly inside that element's productions.
    A ``context`` of ``None`` matches the value in *any* context — the
    context-free behaviour, kept for baseline comparisons.
    """

    value: bytes
    context: str | None = None
    action: str = "drop"  # or "flag"


@dataclass
class FilterDecision:
    """Outcome for one message."""

    start: int
    end: int
    dropped: bool
    flags: list[str] = field(default_factory=list)
    payload: bytes = b""


class ContentFilter:
    """Filters a tagged message stream by context-sensitive rules."""

    def __init__(
        self,
        grammar: Grammar,
        rules: list[FilterRule],
        tagger: BehavioralTagger | None = None,
    ) -> None:
        self.grammar = grammar
        self.rules = rules
        self.tagger = tagger if tagger is not None else BehavioralTagger(grammar)
        self.accepting = set(self.tagger.accepting)
        #: context name -> occurrences of data tokens inside it
        self._context_occurrences: dict[str, set[Occurrence]] = {}
        for production in grammar.productions:
            bucket = self._context_occurrences.setdefault(
                production.lhs.name, set()
            )
            for position, symbol in enumerate(production.rhs):
                if isinstance(symbol, Terminal) and not grammar.lexspec.get(
                    symbol.name
                ).is_literal:
                    bucket.add(Occurrence(production.index, position, symbol))

    # ------------------------------------------------------------------
    def _rule_matches(self, rule: FilterRule, token: TaggedToken) -> bool:
        if token.lexeme != rule.value:
            return False
        if rule.context is None:
            return True
        return token.occurrence in self._context_occurrences.get(
            rule.context, set()
        )

    def filter(self, data: bytes) -> list[FilterDecision]:
        """Evaluate every message in the stream against the rules."""
        decisions: list[FilterDecision] = []
        message_start: int | None = None
        dropped = False
        flags: list[str] = []
        for token in self.tagger.tag(data):
            if message_start is None:
                message_start = token.start
            for rule in self.rules:
                if self._rule_matches(rule, token):
                    note = (
                        f"{rule.value.decode('latin-1')} in "
                        f"{rule.context or 'any context'}"
                    )
                    if rule.action == "drop":
                        dropped = True
                    flags.append(note)
            if token.occurrence in self.accepting:
                decisions.append(
                    FilterDecision(
                        start=message_start,
                        end=token.end,
                        dropped=dropped,
                        flags=flags,
                        payload=data[message_start : token.end],
                    )
                )
                message_start, dropped, flags = None, False, []
        return decisions

    def passed(self, data: bytes) -> bytes:
        """The stream with dropped messages removed."""
        kept = [
            decision.payload
            for decision in self.filter(data)
            if not decision.dropped
        ]
        return b"".join(kept)
