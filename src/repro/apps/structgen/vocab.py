"""Byte-level token vocabularies for constrained decoding.

An LLM vocabulary is, for masking purposes, just an ordered list of
byte strings: token id ``i`` is row bit ``i`` in every mask.  The
identity that keys a mask artifact is :attr:`Vocabulary.vocab_hash` —
sha256 over the count and the length-prefixed token bytes, so two
vocabularies with the same tokens in the same order share masks and
any reorder, insert or edit invalidates them.

:func:`synthetic_vocab` builds the deterministic 1–4k-token test/bench
vocabulary: single-byte fallback tokens (every byte value, so partial
UTF-8 sequences exist), markup/keyword fragments that straddle the
grammars' byte-equivalence-class boundaries, whitespace-prefixed
words, digit runs, and multi-byte UTF-8 tokens (accented Latin, CJK,
emoji) — the shapes real BPE vocabularies contain.
"""

from __future__ import annotations

import hashlib
import json
import random

__all__ = ["Vocabulary", "synthetic_vocab"]

#: Fragments that straddle the example grammars' structure: XML-RPC
#: markup split at unnatural points, keywords, and parser noise.
_FRAGMENTS = (
    "<methodCall>", "</methodCall>", "<methodName>", "odName>", "<met",
    "hodResponse>", "<params>", "<param>", "</param", "<value>", "<i4>",
    "</i4>", "<int>", "<string>", "</string>", "<boolean>", "<double>",
    "<array>", "<data>", "<struct>", "<member>", "<name>", "<fault>",
    "if", "then", "else", "true", "false", "go", "stop", "and", "or",
    "(", ")", "((", "))", "()", ")(", "((((", "))))",
    "<", ">", "</", "/>", "<>", "=\"", "\">",
)

#: Multi-byte UTF-8 tokens: 2-byte (Latin-1 supplement), 3-byte (CJK,
#: arrows), 4-byte (emoji) — several per class so token walks cross
#: byte-class boundaries mid-sequence.
_UTF8 = (
    "é", "été", "café", "naïve", "über", "ño",
    "日本語", "漢字", "中文", "한국어",
    "→", "⇒", "✓", "∑", "≈",
    "🚀", "🎉", "🧪", "😀",
    " é", " 日本", "a→b",
)

_WORDS = (
    "the", "value", "name", "data", "call", "response", "param",
    "buy", "sell", "price", "amount", "result", "error", "status",
    "method", "struct", "array", "member", "fault", "code",
)


class Vocabulary:
    """An ordered, immutable byte-level token list."""

    __slots__ = ("tokens", "_hash")

    def __init__(self, tokens) -> None:
        toks = tuple(
            t if isinstance(t, bytes) else str(t).encode("utf-8")
            for t in tokens
        )
        if not toks:
            raise ValueError("vocabulary is empty")
        for t in toks:
            if not t:
                raise ValueError("vocabulary contains an empty token")
        self.tokens = toks
        self._hash: str | None = None

    def __len__(self) -> int:
        return len(self.tokens)

    def __getitem__(self, i: int) -> bytes:
        return self.tokens[i]

    def __iter__(self):
        return iter(self.tokens)

    @property
    def vocab_hash(self) -> str:
        """sha256 over count + length-prefixed token bytes (hex)."""
        if self._hash is None:
            h = hashlib.sha256()
            h.update(b"vocab1:%d:" % len(self.tokens))
            for t in self.tokens:
                h.update(len(t).to_bytes(4, "big"))
                h.update(t)
            self._hash = h.hexdigest()
        return self._hash

    # ------------------------------------------------------------------
    @classmethod
    def from_file(cls, path: str) -> "Vocabulary":
        """Load from JSON: a list of strings, or ``{"tokens": [...]}``.
        Strings are UTF-8 encoded; ``\\uDC80``-style surrogate escapes
        round-trip raw bytes (``errors="surrogateescape"``)."""
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        if isinstance(doc, dict):
            doc = doc.get("tokens", [])
        return cls(
            s.encode("utf-8", errors="surrogateescape") for s in doc
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(
                [t.decode("utf-8", errors="surrogateescape")
                 for t in self.tokens],
                fh, ensure_ascii=True,
            )


def synthetic_vocab(size: int = 2048, seed: int = 2006) -> Vocabulary:
    """A deterministic LLM-shaped byte-level vocabulary of ``size``
    unique tokens (order and content fixed by ``seed``)."""
    if size < 300:
        raise ValueError("synthetic vocabulary needs size >= 300")
    rng = random.Random(seed)
    seen: set[bytes] = set()
    tokens: list[bytes] = []

    def add(token: bytes) -> None:
        if token and token not in seen and len(tokens) < size:
            seen.add(token)
            tokens.append(token)

    for b in range(256):  # byte fallback: partial UTF-8 included
        add(bytes([b]))
    for frag in _FRAGMENTS:
        add(frag.encode("utf-8"))
    for word in _WORDS:
        add(word.encode("utf-8"))
        add((" " + word).encode("utf-8"))
        add(word.capitalize().encode("utf-8"))
    for tok in _UTF8:
        add(tok.encode("utf-8"))
    for n in list(range(100)) + [1234, 65536, 999999]:
        add(str(n).encode("ascii"))
    alphabet = "abcdefghijklmnopqrstuvwxyz<>/=\"' \t\n0123456789"
    while len(tokens) < size:
        length = rng.choice((2, 3, 3, 4, 4, 5, 6, 8))
        add("".join(rng.choice(alphabet) for _ in range(length)).encode())
    return Vocabulary(tokens)
