"""Byte-level token vocabularies for constrained decoding.

An LLM vocabulary is, for masking purposes, just an ordered list of
byte strings: token id ``i`` is row bit ``i`` in every mask.  The
identity that keys a mask artifact is :attr:`Vocabulary.vocab_hash` —
sha256 over the count and the length-prefixed token bytes, so two
vocabularies with the same tokens in the same order share masks and
any reorder, insert or edit invalidates them.

:func:`synthetic_vocab` builds the deterministic 1–4k-token test/bench
vocabulary: single-byte fallback tokens (every byte value, so partial
UTF-8 sequences exist), markup/keyword fragments that straddle the
grammars' byte-equivalence-class boundaries, whitespace-prefixed
words, digit runs, and multi-byte UTF-8 tokens (accented Latin, CJK,
emoji) — the shapes real BPE vocabularies contain.
"""

from __future__ import annotations

import hashlib
import json
import random

__all__ = ["Vocabulary", "synthetic_vocab"]

#: Fragments that straddle the example grammars' structure: XML-RPC
#: markup split at unnatural points, keywords, and parser noise.
_FRAGMENTS = (
    "<methodCall>", "</methodCall>", "<methodName>", "odName>", "<met",
    "hodResponse>", "<params>", "<param>", "</param", "<value>", "<i4>",
    "</i4>", "<int>", "<string>", "</string>", "<boolean>", "<double>",
    "<array>", "<data>", "<struct>", "<member>", "<name>", "<fault>",
    "if", "then", "else", "true", "false", "go", "stop", "and", "or",
    "(", ")", "((", "))", "()", ")(", "((((", "))))",
    "<", ">", "</", "/>", "<>", "=\"", "\">",
)

#: Multi-byte UTF-8 tokens: 2-byte (Latin-1 supplement), 3-byte (CJK,
#: arrows), 4-byte (emoji) — several per class so token walks cross
#: byte-class boundaries mid-sequence.
_UTF8 = (
    "é", "été", "café", "naïve", "über", "ño",
    "日本語", "漢字", "中文", "한국어",
    "→", "⇒", "✓", "∑", "≈",
    "🚀", "🎉", "🧪", "😀",
    " é", " 日本", "a→b",
)

_WORDS = (
    "the", "value", "name", "data", "call", "response", "param",
    "buy", "sell", "price", "amount", "result", "error", "status",
    "method", "struct", "array", "member", "fault", "code",
)


class Vocabulary:
    """An ordered, immutable byte-level token list."""

    __slots__ = ("tokens", "_hash")

    def __init__(self, tokens) -> None:
        toks = tuple(
            t if isinstance(t, bytes) else str(t).encode("utf-8")
            for t in tokens
        )
        if not toks:
            raise ValueError("vocabulary is empty")
        for t in toks:
            if not t:
                raise ValueError("vocabulary contains an empty token")
        self.tokens = toks
        self._hash: str | None = None

    def __len__(self) -> int:
        return len(self.tokens)

    def __getitem__(self, i: int) -> bytes:
        return self.tokens[i]

    def __iter__(self):
        return iter(self.tokens)

    @property
    def vocab_hash(self) -> str:
        """sha256 over count + length-prefixed token bytes (hex)."""
        if self._hash is None:
            h = hashlib.sha256()
            h.update(b"vocab1:%d:" % len(self.tokens))
            for t in self.tokens:
                h.update(len(t).to_bytes(4, "big"))
                h.update(t)
            self._hash = h.hexdigest()
        return self._hash

    # ------------------------------------------------------------------
    @classmethod
    def from_file(cls, path: str) -> "Vocabulary":
        """Load from JSON: a list of strings, or ``{"tokens": [...]}``.
        Strings are UTF-8 encoded; ``\\uDC80``-style surrogate escapes
        round-trip raw bytes (``errors="surrogateescape"``)."""
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        if isinstance(doc, dict):
            doc = doc.get("tokens", [])
        return cls(
            s.encode("utf-8", errors="surrogateescape") for s in doc
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(
                [t.decode("utf-8", errors="surrogateescape")
                 for t in self.tokens],
                fh, ensure_ascii=True,
            )

    @classmethod
    def from_tokenizer_json(cls, path: str) -> "Vocabulary":
        """Import a HuggingFace ``tokenizer.json`` (BPE / byte-level).

        Token id ``i`` becomes row bit ``i``, so masks line up with
        the model's logits directly.  Byte-level tokenizers (GPT-2
        lineage) store each raw byte as a printable unicode stand-in;
        those are resolved back to raw bytes via the inverse of the
        GPT-2 ``bytes_to_unicode`` map.  Added tokens (specials like
        ``<|endoftext|>``) are literal strings and are UTF-8 encoded
        as-is.
        """
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        model = doc.get("model") or {}
        vocab_map = model.get("vocab")
        if not isinstance(vocab_map, dict):
            raise ValueError(
                f"{path}: no model.vocab table (model type "
                f"{model.get('type')!r}); only BPE-style "
                "tokenizer.json files are supported"
            )
        byte_level = _uses_byte_level(
            doc.get("pre_tokenizer")
        ) or _uses_byte_level(doc.get("decoder"))
        unmap = _byte_level_inverse() if byte_level else None

        by_id: dict[int, bytes] = {}
        for text, tid in vocab_map.items():
            if unmap is not None:
                raw = bytes(
                    b
                    for ch in text
                    for b in (
                        (unmap[ch],)
                        if ch in unmap
                        else ch.encode("utf-8")
                    )
                )
            else:
                raw = text.encode("utf-8", errors="surrogateescape")
            by_id[tid] = raw
        for added in doc.get("added_tokens") or []:
            by_id[added["id"]] = added["content"].encode("utf-8")

        size = max(by_id) + 1
        missing = [i for i in range(size) if i not in by_id]
        if missing:
            raise ValueError(
                f"{path}: vocabulary has holes (no token for id "
                f"{missing[0]}, {len(missing)} missing of {size})"
            )
        return cls(by_id[i] for i in range(size))


def _uses_byte_level(component) -> bool:
    """Whether a tokenizer.json component tree contains a ByteLevel
    stage (pre_tokenizer/decoder may be a single object or a
    ``Sequence`` of them)."""
    if not isinstance(component, dict):
        return False
    if component.get("type") == "ByteLevel":
        return True
    for sub in component.get("pretokenizers") or component.get(
        "decoders"
    ) or []:
        if _uses_byte_level(sub):
            return True
    return False


def _byte_level_inverse() -> dict[str, int]:
    """char → raw byte, the inverse of GPT-2's ``bytes_to_unicode``:
    printable bytes map to themselves, the rest to U+0100+offset
    stand-ins."""
    bs = (
        list(range(ord("!"), ord("~") + 1))
        + list(range(0xA1, 0xAD))
        + list(range(0xAE, 0x100))
    )
    cs = bs[:]
    n = 0
    for b in range(256):
        if b not in bs:
            bs.append(b)
            cs.append(256 + n)
            n += 1
    return {chr(c): b for b, c in zip(bs, cs)}


def synthetic_vocab(size: int = 2048, seed: int = 2006) -> Vocabulary:
    """A deterministic LLM-shaped byte-level vocabulary of ``size``
    unique tokens (order and content fixed by ``seed``)."""
    if size < 300:
        raise ValueError("synthetic vocabulary needs size >= 300")
    rng = random.Random(seed)
    seen: set[bytes] = set()
    tokens: list[bytes] = []

    def add(token: bytes) -> None:
        if token and token not in seen and len(tokens) < size:
            seen.add(token)
            tokens.append(token)

    for b in range(256):  # byte fallback: partial UTF-8 included
        add(bytes([b]))
    for frag in _FRAGMENTS:
        add(frag.encode("utf-8"))
    for word in _WORDS:
        add(word.encode("utf-8"))
        add((" " + word).encode("utf-8"))
        add(word.capitalize().encode("utf-8"))
    for tok in _UTF8:
        add(tok.encode("utf-8"))
    for n in list(range(100)) + [1234, 65536, 999999]:
        add(str(n).encode("ascii"))
    alphabet = "abcdefghijklmnopqrstuvwxyz<>/=\"' \t\n0123456789"
    while len(tokens) < size:
        length = rng.choice((2, 3, 3, 4, 4, 5, 6, 8))
        add("".join(rng.choice(alphabet) for _ in range(length)).encode())
    return Vocabulary(tokens)
