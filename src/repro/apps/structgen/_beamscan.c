/* Beam kernels for the constrained-decoding mask engine.
 *
 * Two tiny hot loops, called via ctypes from
 * repro.apps.structgen.beam with every table flattened ahead of time:
 *
 *   beam_advance  — walk each lane's token class string through the
 *                   class-indexed step table (the per-decode-step
 *                   batched transition);
 *   beam_gather   — copy each lane's packed CI validity row out of
 *                   the row matrix (the batched mask lookup).
 *
 * Plain C with no CPython API: the shared object is built by
 * repro.core._native_build.jit_shared_library under the same cache
 * discipline as the scan kernel and is interpreter-independent.
 */

#include <stdint.h>
#include <string.h>

/* Walk lane l's token (toks[l]) from states[l].  codes/offs/lens are
 * the vocabulary's byte-class strings, concatenated and indexed by
 * token id.  err marks states whose next step reports an error
 * (walking out of them is invalid); doomed marks final states no
 * detection can ever leave.
 *
 * Returns -1 when every lane advanced, else the index of the first
 * invalid lane.  states is updated in place lane by lane, so on
 * failure earlier lanes have already moved: callers pass a scratch
 * copy and discard it unless the call returns -1 (atomic commit). */
long beam_advance(const int32_t *step, int32_t n_classes,
                  const uint8_t *err, const uint8_t *doomed,
                  const uint8_t *codes, const int32_t *offs,
                  const int32_t *lens, const int32_t *toks,
                  int32_t *states, int32_t n_lanes)
{
    int32_t lane;
    for (lane = 0; lane < n_lanes; lane++) {
        int32_t s = states[lane];
        int32_t tok = toks[lane];
        const uint8_t *p = codes + offs[tok];
        int32_t len = lens[tok];
        int32_t i;
        for (i = 0; i < len; i++) {
            if (err[s])
                return lane;
            s = step[(int64_t)s * n_classes + p[i]];
        }
        if (doomed[s])
            return lane;
        states[lane] = s;
    }
    return -1;
}

/* Copy each lane's packed row into out (n_lanes * row_bytes). */
void beam_gather(const uint8_t *rows, int64_t row_bytes,
                 const int32_t *states, int32_t n_lanes, uint8_t *out)
{
    int32_t lane;
    for (lane = 0; lane < n_lanes; lane++) {
        memcpy(out + (int64_t)lane * row_bytes,
               rows + (int64_t)states[lane] * row_bytes,
               (size_t)row_bytes);
    }
}

/* All the per-table pointers, marshalled once at session setup so
 * the per-step call passes five arguments instead of thirteen
 * (ctypes argument conversion is the dominant per-call cost at beam
 * widths of a few dozen).  Field order must match the ctypes
 * Structure in beam.py. */
typedef struct {
    const int32_t *step;
    const uint8_t *err;
    const uint8_t *doomed;
    const uint8_t *codes;
    const int32_t *offs;
    const int32_t *lens;
    const uint8_t *rows;
    int64_t row_bytes;
    int32_t n_classes;
    int32_t n_vocab;
} beam_plan;

/* The fused decode step: range-check and advance every lane from
 * prev[] into next[], then gather every lane's row — one ctypes
 * transition per generated token for the whole beam.  Returns -1 on
 * success; on the first invalid lane (bad token id, error edge, or
 * doomed final state) returns that lane's index and prev[] is
 * untouched, so commit stays atomic. */
long beam_step(const beam_plan *plan, const int32_t *toks,
               const int32_t *prev, int32_t *next,
               int32_t n_lanes, uint8_t *out)
{
    const int32_t *step = plan->step;
    const uint8_t *err = plan->err;
    const uint8_t *doomed = plan->doomed;
    int32_t n_classes = plan->n_classes;
    int32_t lane;
    for (lane = 0; lane < n_lanes; lane++) {
        int32_t tok = toks[lane];
        int32_t s = prev[lane];
        const uint8_t *p;
        int32_t len, i;
        if (tok < 0 || tok >= plan->n_vocab)
            return lane;
        p = plan->codes + plan->offs[tok];
        len = plan->lens[tok];
        for (i = 0; i < len; i++) {
            if (err[s])
                return lane;
            s = step[(int64_t)s * n_classes + p[i]];
        }
        if (doomed[s])
            return lane;
        next[lane] = s;
    }
    beam_gather(plan->rows, plan->row_bytes, next, n_lanes, out);
    return -1;
}
