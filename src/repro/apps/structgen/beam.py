"""Batched beam decode: N mask cursors advanced as one call.

A realistic constrained-decoding loop carries a *beam* of candidate
continuations, and with :class:`~repro.apps.structgen.MaskSession`
each of the B lanes pays its own ``mask()``/``advance()`` round trip
per generated token.  :class:`BeamMaskSession` holds the N decode
states as a flat array and turns the per-step work into single
vectorized calls:

* ``masks()`` — every lane's packed validity row in one gather over
  the table's row matrix;
* ``advance(token_ids)`` — every lane stepped through the
  class-indexed step table at once, committed atomically (an invalid
  token in any lane leaves *all* lanes unmoved and raises);
* ``fork(i)`` — duplicate lane ``i`` (beam expansion);
* ``rollback(k)`` — undo the last ``k`` mutating calls across the
  whole beam (speculative decoding: propose k tokens, verify, rewind
  the rejected tail).

Three compute paths produce bit-identical results (the differential
suite in ``tests/apps/test_beam.py`` enforces it): a ctypes kernel
JIT-built from ``_beamscan.c`` via the ``_nativescan`` build
machinery, a NumPy gather over the packed row matrix and step table,
and a tight pure-Python loop (``REPRO_DISABLE_NUMPY=1`` /
``REPRO_DISABLE_NATIVE=1`` safe).  The pure-Python path additionally
serves warm states through the table's precomputed sparse XOR deltas
(:meth:`~repro.apps.structgen.masks.MaskTable.build_deltas`): full
rows only for cold states, 3-byte patches otherwise.
"""

from __future__ import annotations

import ctypes
import os
import struct
from array import array

from .masks import MaskError, MaskTable

try:  # pragma: no cover - exercised via the REPRO_DISABLE_NUMPY job
    if os.environ.get("REPRO_DISABLE_NUMPY"):
        raise ImportError("NumPy disabled by REPRO_DISABLE_NUMPY")
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "BeamMaskSession",
    "apply_xor_patch",
    "beam_capability",
    "xor_patch",
]

_SOURCE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "_beamscan.c"
)

#: Bumped when the ``_beamscan.c`` calling contract changes.
_KERNEL_ABI = "1"

#: How many delta patches the pure-Python path will chase up the
#: delta tree before declaring the state cold.
_DELTA_CHAIN_CAP = 32

#: Cap on the per-session cache of resolved CI rows (pure-Python
#: path); cleared wholesale when full.
_CI_CACHE_CAP = 4096

_kernel = None
_kernel_attempted = False


class _CPlan(ctypes.Structure):
    """Mirror of ``beam_plan`` in ``_beamscan.c`` — every per-table
    pointer marshalled once, so the per-step call passes five
    arguments instead of thirteen."""

    _fields_ = [
        ("step", ctypes.c_char_p),
        ("err", ctypes.c_char_p),
        ("doomed", ctypes.c_char_p),
        ("codes", ctypes.c_char_p),
        ("offs", ctypes.c_char_p),
        ("lens", ctypes.c_char_p),
        ("rows", ctypes.c_char_p),
        ("row_bytes", ctypes.c_int64),
        ("n_classes", ctypes.c_int32),
        ("n_vocab", ctypes.c_int32),
    ]


def _load_kernel():
    """The ctypes-loaded beam kernel, or None (no compiler, disabled,
    unwritable cache).  Cached per process like the scan kernel."""
    global _kernel, _kernel_attempted
    from repro.core import _native_build

    if _native_build._disabled():
        return None
    if _kernel is not None:
        return _kernel
    if _kernel_attempted:
        return None
    _kernel_attempted = True
    path = _native_build.jit_shared_library(_SOURCE, _KERNEL_ABI)
    if path is None:
        return None
    import ctypes

    try:
        lib = ctypes.CDLL(path)
    except OSError:
        return None
    c = ctypes
    lib.beam_advance.restype = c.c_long
    lib.beam_advance.argtypes = [
        c.c_char_p,  # step table (native int32 bytes)
        c.c_int32,  # n_classes
        c.c_char_p,  # err (u8 per state)
        c.c_char_p,  # doomed (u8 per state)
        c.c_char_p,  # codes blob
        c.c_char_p,  # offs (native int32 bytes)
        c.c_char_p,  # lens (native int32 bytes)
        c.c_char_p,  # toks (native int32 bytes)
        c.POINTER(c.c_int32),  # states (in/out scratch)
        c.c_int32,  # n_lanes
    ]
    lib.beam_gather.restype = None
    lib.beam_gather.argtypes = [
        c.c_char_p,  # rows
        c.c_int64,  # row_bytes
        c.POINTER(c.c_int32),  # states
        c.c_int32,  # n_lanes
        c.POINTER(c.c_ubyte),  # out
    ]
    lib.beam_step.restype = c.c_long
    lib.beam_step.argtypes = [
        c.POINTER(_CPlan),  # plan
        c.c_char_p,  # toks (native int32 bytes)
        c.POINTER(c.c_int32),  # prev states
        c.POINTER(c.c_int32),  # next states
        c.c_int32,  # n_lanes
        c.POINTER(c.c_ubyte),  # out rows
    ]
    _kernel = lib
    return lib


def xor_patch(prev: bytes, new: bytes) -> bytes:
    """Sparse XOR diff between two equal-length rows, as the delta
    tables' 3-byte entries (u16 BE byte index, u8 XOR value).  The
    MASKS wire frames ship this instead of the full row whenever it is
    strictly smaller."""
    return b"".join(
        i.to_bytes(2, "big") + bytes((a ^ b,))
        for i, (a, b) in enumerate(zip(prev, new))
        if a != b
    )


def apply_xor_patch(prev: bytes, patch: bytes) -> bytes:
    """Rebuild the new row from ``prev`` and an :func:`xor_patch`."""
    row = bytearray(prev)
    for i in range(0, len(patch), 3):
        row[patch[i] << 8 | patch[i + 1]] ^= patch[i + 2]
    return bytes(row)


def beam_capability() -> dict:
    """Which beam compute paths are live (``/stats``, CLI)."""
    return {
        "native": _load_kernel() is not None,
        "numpy": _np is not None,
    }


# ----------------------------------------------------------------------
# Per-table prepared tables, shared across sessions via
# MaskTable._beam_cache (built once, read-only afterwards).
# ----------------------------------------------------------------------
#: The dense (state × token → next state) advance matrix is only
#: materialized below this many cells (int32 each); past it the NumPy
#: path walks class strings per call instead.
_ADV_MATRIX_CAP = 1 << 24


class _VectorTables:
    __slots__ = (
        "rows", "step", "err", "doomed", "codes", "lens",
        "adv", "adv_known",
    )

    def __init__(self, table: MaskTable) -> None:
        lowering = table.lowering
        n = lowering.n_states
        self.rows = _np.frombuffer(table.rows, dtype=_np.uint8).reshape(
            n, table.row_bytes
        )
        self.step = _np.array(lowering.step, dtype=_np.int32)
        self.err = _np.array(lowering.err_state, dtype=bool)
        self.doomed = _np.array(lowering.doomed, dtype=bool)
        lens = _np.array([len(c) for c in table.codes], dtype=_np.int32)
        width = max(1, int(lens.max()))
        codes = _np.zeros((len(table.codes), width), dtype=_np.uint8)
        for i, c in enumerate(table.codes):
            if c:
                codes[i, : len(c)] = _np.frombuffer(c, dtype=_np.uint8)
        self.codes = codes
        self.lens = lens
        # Lazily-filled dense advance matrix: row s holds the
        # post-token state for every token from s (-1 = invalid),
        # computed by one vectorized vocabulary-wide walk on the first
        # visit to s.  Decode loops revisit a small state set, so the
        # steady-state advance is a single fancy-indexed gather.
        if n * len(table.codes) <= _ADV_MATRIX_CAP:
            self.adv = _np.full(
                (n, len(table.codes)), -1, dtype=_np.int32
            )
            self.adv_known = _np.zeros(n, dtype=bool)
        else:
            self.adv = None
            self.adv_known = None

    def fill_adv_row(self, s: int) -> None:
        V = self.codes.shape[0]
        cur = _np.full(V, s, dtype=_np.int64)
        alive = _np.ones(V, dtype=bool)
        lens = self.lens
        step = self.step
        err = self.err
        codes = self.codes
        for pos in range(codes.shape[1]):
            act = alive & (pos < lens)
            if not act.any():
                break
            bad = act & err[cur]
            if bad.any():
                alive &= ~bad
                act &= ~bad
            idx = _np.nonzero(act)[0]
            if idx.size:
                cur[idx] = step[cur[idx], codes[idx, pos]]
        alive &= ~self.doomed[cur]
        self.adv[s] = _np.where(alive, cur, -1).astype(_np.int32)
        self.adv_known[s] = True


class _NativeTables:
    __slots__ = (
        "lib", "step", "n_classes", "err", "doomed",
        "codes", "offs", "lens", "rows", "row_bytes",
        "plan", "planref",
    )

    def __init__(self, table: MaskTable, lib) -> None:
        lowering = table.lowering
        self.lib = lib
        self.n_classes = lowering.n_classes
        self.step = array(
            "i", (x for row in lowering.step for x in row)
        ).tobytes()
        self.err = bytes(map(int, lowering.err_state))
        self.doomed = bytes(map(int, lowering.doomed))
        offs = array("i")
        lens = array("i")
        pos = 0
        for c in table.codes:
            offs.append(pos)
            lens.append(len(c))
            pos += len(c)
        self.codes = b"".join(table.codes)
        self.offs = offs.tobytes()
        self.lens = lens.tobytes()
        self.rows = table.rows
        self.row_bytes = table.row_bytes
        plan = _CPlan()
        plan.step = self.step
        plan.err = self.err
        plan.doomed = self.doomed
        plan.codes = self.codes
        plan.offs = self.offs
        plan.lens = self.lens
        plan.rows = self.rows
        plan.row_bytes = self.row_bytes
        plan.n_classes = self.n_classes
        plan.n_vocab = len(table.codes)
        self.plan = plan
        self.planref = ctypes.byref(plan)


def _prepared(table: MaskTable, kind: str):
    cache = table._beam_cache
    if cache is None:
        cache = table._beam_cache = {}
    if kind not in cache:
        if kind == "numpy":
            cache[kind] = _VectorTables(table)
        else:
            cache[kind] = _NativeTables(table, _load_kernel())
    return cache[kind]


# ----------------------------------------------------------------------
class BeamMaskSession:
    """N decode cursors over one shared :class:`MaskTable`, every
    operation a single batched call.

    ``path`` selects the compute path: ``"auto"`` walks the engine
    ladder (native → numpy → python); forcing ``"native"``/``"numpy"``
    raises :class:`MaskError` when that path is unavailable.  All
    paths are bit-identical to N independent
    :class:`~repro.apps.structgen.MaskSession`\\ s.
    """

    __slots__ = (
        "table",
        "path",
        "counters",
        "history_cap",
        "_states",
        "_history",
        "_vt",
        "_nt",
        "_nbuf",
        "_nsync",
        "_ci_cache",
        "_metrics",
    )

    def __init__(
        self,
        table: MaskTable,
        width: int = 1,
        *,
        metrics=None,
        path: str = "auto",
        history_cap: int = 1024,
    ) -> None:
        if width < 1:
            raise MaskError("beam width must be >= 1")
        if path == "auto":
            if _load_kernel() is not None:
                path = "native"
            elif _np is not None:
                path = "numpy"
            else:
                path = "python"
        elif path == "numpy":
            if _np is None:
                raise MaskError("NumPy path unavailable")
        elif path == "native":
            if _load_kernel() is None:
                raise MaskError("native beam kernel unavailable")
        elif path != "python":
            raise MaskError(f"unknown beam path {path!r}")
        self.table = table
        self.path = path
        self.history_cap = history_cap
        self._states: list[int] = [0] * width
        self._history: list[tuple[int, ...]] = []
        self._vt = _prepared(table, "numpy") if path == "numpy" else None
        self._nt = _prepared(table, "native") if path == "native" else None
        self._nbuf = None
        self._nsync = False
        self._ci_cache: dict[int, bytes] = {0: bytes(table.ci_row(0))}
        self._metrics = metrics
        self.counters = {
            "masks_served": 0,
            "ci_tokens": 0,
            "cd_checks": 0,
            "advances": 0,
            "forks": 0,
            "rollbacks": 0,
            "delta_hits": 0,
            "delta_cold": 0,
        }

    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        return len(self._states)

    @property
    def states(self) -> tuple[int, ...]:
        return tuple(self._states)

    def eos_valid(self) -> list[bool]:
        eos = self.table.lowering.eos
        return [eos[s] for s in self._states]

    # ------------------------------------------------------------------
    # masks
    # ------------------------------------------------------------------
    def masks(self) -> list[bytes]:
        """Every lane's packed validity row, one batched call."""
        rows = self._gather_rows()
        self._count_masks()
        return rows

    def masks_packed(self) -> bytes:
        """All lanes' rows as one lane-major buffer (the wire shape)."""
        rows = self._gather_packed()
        self._count_masks()
        return rows

    def _count_masks(self) -> None:
        table = self.table
        w = len(self._states)
        counters = self.counters
        counters["masks_served"] += w
        counters["ci_tokens"] += table.ci_count * w
        counters["cd_checks"] += len(table.cd_ids) * w
        metrics = self._metrics
        if metrics is not None:
            metrics.counter("structgen.masks_served").inc(w)
            metrics.counter("structgen.ci_tokens").inc(
                table.ci_count * w
            )
            metrics.counter("structgen.cd_checks").inc(
                len(table.cd_ids) * w
            )

    def _gather_rows(self) -> list[bytes]:
        path = self.path
        if path == "numpy":
            mat = self._gather_numpy()
            return [mat[i].tobytes() for i in range(len(self._states))]
        if path == "native":
            packed = self._gather_native()
            rb = self.table.row_bytes
            return [
                bytes(packed[i * rb : (i + 1) * rb])
                for i in range(len(self._states))
            ]
        return self._gather_python()

    def _gather_packed(self) -> bytes:
        path = self.path
        if path == "numpy":
            return self._gather_numpy().tobytes()
        if path == "native":
            return bytes(self._gather_native())
        return b"".join(self._gather_python())

    def _gather_numpy(self):
        vt = self._vt
        states = self._states
        idx = _np.fromiter(states, dtype=_np.intp, count=len(states))
        mat = vt.rows[idx]
        table = self.table
        if table.cd_ids:
            lanes_by_state: dict[int, list[int]] = {}
            for lane, s in enumerate(states):
                lanes_by_state.setdefault(s, []).append(lane)
            for s, lanes in lanes_by_state.items():
                extra = bytearray(table.row_bytes)
                table.cd_bits(s, extra)
                patch = _np.frombuffer(bytes(extra), dtype=_np.uint8)
                mat[lanes] |= patch
        return mat

    def _gather_native(self) -> bytearray:
        import ctypes

        nt = self._nt
        states = self._states
        w = len(states)
        rb = nt.row_bytes
        out = bytearray(w * rb)
        arr = (ctypes.c_int32 * w)(*states)
        nt.lib.beam_gather(
            nt.rows,
            rb,
            arr,
            w,
            (ctypes.c_ubyte * len(out)).from_buffer(out),
        )
        table = self.table
        if table.cd_ids:
            for lane, s in enumerate(states):
                row = bytearray(out[lane * rb : (lane + 1) * rb])
                table.cd_bits(s, row)
                out[lane * rb : (lane + 1) * rb] = row
        return out

    def _gather_python(self) -> list[bytes]:
        table = self.table
        out = []
        if table.cd_ids:
            for s in self._states:
                row = bytearray(self._ci_python(s))
                table.cd_bits(s, row)
                out.append(bytes(row))
        else:
            for s in self._states:
                out.append(self._ci_python(s))
        return out

    def _ci_python(self, s: int) -> bytes:
        """The CI row for ``s`` via the session row cache: a sparse
        delta chain from a cached ancestor when the table carries
        deltas (warm), a full row copy otherwise (cold)."""
        cache = self._ci_cache
        row = cache.get(s)
        if row is not None:
            return row
        table = self.table
        db = table.delta_base
        base_row = None
        chain: list[int] = []
        if db is not None:
            cur = s
            while len(chain) < _DELTA_CHAIN_CAP:
                base = db[cur]
                if base < 0:
                    break
                chain.append(cur)
                hit = cache.get(base)
                if hit is not None:
                    base_row = hit
                    break
                cur = base
            else:
                base_row = None
        if base_row is not None:
            patched = bytearray(base_row)
            patches = table.delta_patches
            for st in reversed(chain):
                patch = patches[st]
                for i in range(0, len(patch), 3):
                    patched[patch[i] << 8 | patch[i + 1]] ^= patch[i + 2]
            row = bytes(patched)
            self.counters["delta_hits"] += 1
            if self._metrics is not None:
                self._metrics.counter("structgen.delta_hits").inc()
        else:
            row = bytes(table.ci_row(s))
            self.counters["delta_cold"] += 1
            if self._metrics is not None:
                self._metrics.counter("structgen.delta_cold").inc()
        if len(cache) >= _CI_CACHE_CAP:
            cache.clear()
            cache[0] = bytes(table.ci_row(0))
        cache[s] = row
        return row

    # ------------------------------------------------------------------
    # advance / fork / rollback
    # ------------------------------------------------------------------
    def advance(self, token_ids) -> tuple[int, ...]:
        """Step every lane by its token, atomically: an invalid token
        in any lane raises :class:`MaskError` naming the lane, and no
        lane moves."""
        states = self._states
        toks = list(token_ids)
        if len(toks) != len(states):
            raise MaskError(
                f"advance() got {len(toks)} token ids for "
                f"{len(states)} lanes"
            )
        vocab_size = len(self.table.vocab)
        for lane, tok in enumerate(toks):
            if not 0 <= tok < vocab_size:
                raise MaskError(
                    f"lane {lane}: token id {tok} out of range "
                    f"(vocabulary has {vocab_size} tokens)"
                )
        path = self.path
        if path == "numpy":
            new = self._advance_numpy(toks)
        elif path == "native":
            new = self._advance_native(toks)
        else:
            new = self._advance_python(toks)
        self._push_history()
        self._states = new
        self._nsync = False
        self.counters["advances"] += len(new)
        if self._metrics is not None:
            self._metrics.counter("structgen.advances").inc(len(new))
        return tuple(new)

    def advance_masks(self, token_ids) -> tuple[tuple[int, ...], bytes]:
        """The fused decode step: advance every lane and return
        ``(new_states, packed_rows)`` in one engine transition — what
        a BATCH_ADVANCE wire frame costs server-side.  Same atomic
        failure contract as :meth:`advance`."""
        toks = (
            token_ids
            if type(token_ids) in (list, tuple)
            else list(token_ids)
        )
        if len(toks) != len(self._states):
            raise MaskError(
                f"advance() got {len(toks)} token ids for "
                f"{len(self._states)} lanes"
            )
        path = self.path
        packed = None
        if path == "native":
            new, packed = self._step_native(toks)
        elif path == "numpy":
            new = self._advance_numpy(toks)
        else:
            new = self._advance_python(toks)
        self._push_history()
        self._states = new
        self.counters["advances"] += len(new)
        if self._metrics is not None:
            self._metrics.counter("structgen.advances").inc(len(new))
        if packed is None:
            packed = self._gather_packed()
        self._count_masks()
        return tuple(new), packed

    def _step_native(self, toks) -> tuple[tuple[int, ...], bytes]:
        nt = self._nt
        w = len(toks)
        buf = self._nbuf
        if buf is None or buf[0] != w:
            out = bytearray(w * nt.row_bytes)
            buf = self._nbuf = (
                w,
                (ctypes.c_int32 * w)(),
                (ctypes.c_int32 * w)(),
                out,
                (ctypes.c_ubyte * len(out)).from_buffer(out),
                struct.Struct(f"{w}i"),
            )
            self._nsync = False
        _, prev, nxt, outb, outv, lanes = buf
        if not self._nsync:
            prev[:] = self._states
        ret = nt.lib.beam_step(
            nt.planref, lanes.pack(*toks), prev, nxt, w, outv
        )
        if ret >= 0:
            self._fail(int(ret), toks)
        # Swap prev/next so the committed states stay resident for
        # the next step without a resync copy.
        self._nbuf = (w, nxt, prev, outb, outv, lanes)
        self._nsync = True
        new = lanes.unpack(nxt)
        out = bytes(outb)
        table = self.table
        if table.cd_ids:
            rb = nt.row_bytes
            patched = bytearray(out)
            for lane, s in enumerate(new):
                row = bytearray(patched[lane * rb : (lane + 1) * rb])
                table.cd_bits(s, row)
                patched[lane * rb : (lane + 1) * rb] = row
            out = bytes(patched)
        return new, out

    def _fail(self, lane: int, toks) -> None:
        tok = toks[lane]
        vocab_size = len(self.table.vocab)
        if not 0 <= tok < vocab_size:
            raise MaskError(
                f"lane {lane}: token id {tok} out of range "
                f"(vocabulary has {vocab_size} tokens)"
            )
        raise MaskError(
            f"lane {lane}: token {tok} is not valid in "
            f"state {self._states[lane]}"
        )

    def _advance_python(self, toks) -> list[int]:
        table = self.table
        new = []
        for lane, (s, tok) in enumerate(zip(self._states, toks)):
            try:
                new.append(table.advance_state(s, tok))
            except MaskError:
                self._fail(lane, toks)
        return new

    def _advance_numpy(self, toks) -> list[int]:
        vt = self._vt
        n = len(toks)
        tok_arr = _np.fromiter(toks, dtype=_np.int64, count=n)
        oob = (tok_arr < 0) | (tok_arr >= vt.codes.shape[0])
        if oob.any():
            self._fail(int(_np.nonzero(oob)[0][0]), toks)
        if vt.adv is not None:
            known = vt.adv_known
            for s in set(self._states):
                if not known[s]:
                    vt.fill_adv_row(s)
            nxt = vt.adv[
                _np.fromiter(self._states, dtype=_np.intp, count=n),
                tok_arr,
            ]
            if (nxt < 0).any():
                self._fail(int(_np.nonzero(nxt < 0)[0][0]), toks)
            return nxt.tolist()
        tok = tok_arr
        cur = _np.fromiter(self._states, dtype=_np.int64, count=n)
        lens = vt.lens[tok]
        alive = _np.ones(n, dtype=bool)
        step = vt.step
        err = vt.err
        codes = vt.codes
        for pos in range(int(lens.max())):
            act = alive & (pos < lens)
            if not act.any():
                break
            bad = act & err[cur]
            if bad.any():
                alive &= ~bad
                act &= ~bad
            if act.any():
                idx = _np.nonzero(act)[0]
                cur[idx] = step[cur[idx], codes[tok[idx], pos]]
        alive &= ~vt.doomed[cur]
        if not alive.all():
            self._fail(int(_np.nonzero(~alive)[0][0]), toks)
        return cur.tolist()

    def _advance_native(self, toks) -> list[int]:
        import ctypes

        nt = self._nt
        w = len(toks)
        scratch = (ctypes.c_int32 * w)(*self._states)
        ret = nt.lib.beam_advance(
            nt.step,
            nt.n_classes,
            nt.err,
            nt.doomed,
            nt.codes,
            nt.offs,
            nt.lens,
            array("i", toks).tobytes(),
            scratch,
            w,
        )
        if ret >= 0:
            self._fail(int(ret), toks)
        return list(scratch)

    def fork(self, lane: int) -> int:
        """Duplicate lane ``lane``; returns the new lane's index."""
        states = self._states
        if not 0 <= lane < len(states):
            raise MaskError(
                f"fork lane {lane} out of range (beam width "
                f"{len(states)})"
            )
        self._push_history()
        self._states = [*states, states[lane]]
        self._nsync = False
        self.counters["forks"] += 1
        return len(states)

    def rollback(self, k: int = 1) -> tuple[int, ...]:
        """Undo the last ``k`` mutating calls (advance or fork) across
        the whole beam — including width changes from forks."""
        history = self._history
        if k < 1 or k > len(history):
            raise MaskError(
                f"cannot roll back {k} step(s); history holds "
                f"{len(history)}"
            )
        for _ in range(k):
            snapshot = history.pop()
        self._states = list(snapshot)
        self._nsync = False
        self.counters["rollbacks"] += 1
        return tuple(self._states)

    def _push_history(self) -> None:
        history = self._history
        history.append(tuple(self._states))
        if len(history) > self.history_cap:
            del history[0]

    def reset(self, width: int | None = None) -> None:
        if width is None:
            width = len(self._states)
        if width < 1:
            raise MaskError("beam width must be >= 1")
        self._states = [0] * width
        self._history = []
        self._nsync = False
