"""Per-state token masks: tables, sessions, and the on-disk artifact.

This is the constrained-decoding workload (`ROADMAP`): given a
compiled grammar and a byte-level vocabulary, answer "which tokens may
the model emit from the current parse state" once per decode step.
The lowering lives in :mod:`repro.core.maskgen`; this module adds the
three things a serving stack needs:

* **The CI/CD split (XGrammar-style).** Most tokens are
  *context-independent*: their validity bit per state is baked into a
  packed row ahead of time, over the byte-equivalence-class closure,
  with shared-prefix trie walking so the precompute is
  ``states × trie-nodes``, not ``states × tokens × bytes``.  Tokens
  past a length cap or a precompute budget stay *context-dependent*
  and are re-checked (memoized) against the live state at query time.
  ``mask()`` is therefore one row copy plus a handful of CD checks —
  which is where the ≥10× over naive per-token simulation comes from.

* **MaskSession.** The per-decode API: ``mask()`` returns the packed
  validity row for the current state (bit *i*, LSB-first per byte, is
  token *i*), ``advance(token_id)`` steps the automaton by the
  token's bytes.  Sessions mirror their counters into a
  :class:`~repro.service.metrics.MetricsRegistry` when given one.

* **The mask artifact.** ``RMSK`` blobs, ABI-tagged like ``RART`` and
  keyed ``content_id × vocab_hash`` (:func:`mask_key`) — the same
  artifact, byte for byte, for every interpreter, because the payload
  is raw packed rows rather than marshal.  A table fingerprint
  (:meth:`~repro.core.maskgen.MaskLowering.fingerprint`) guards
  against state-id drift: rows are only served when the loader's
  lowered tables hash identically to the builder's.
"""

from __future__ import annotations

import hashlib
import json
import time

from repro.core.compiled import CompiledTagger
from repro.core.generator import TaggerOptions
from repro.core.maskgen import MaskInfeasible, MaskLowering
from repro.errors import ReproError
from repro.grammar.writer import write_yacc_grammar

from .vocab import Vocabulary

__all__ = [
    "MASK_ABI",
    "MASK_FORMAT_REV",
    "MaskError",
    "MaskSession",
    "MaskTable",
    "build_mask_table",
    "load_mask_blob",
    "mask_key",
    "read_mask_header",
]

#: Bumped whenever the RMSK layout changes *incompatibly*; part of
#: :func:`mask_key`, so old blobs are never looked up again (same
#: discipline as ``ARTIFACT_ABI``).
MASK_ABI = 1

#: Format revision within ABI 1.  Rev 2 appends an optional delta-table
#: section *after* the vocabulary: rev-1 readers stop at the last token
#: and never see it, and rev-1 blobs simply load without deltas (the
#: registry heal path re-publishes them deltified).
MASK_FORMAT_REV = 2

_MAGIC = b"RMSK"

#: A state's row is stored as a sparse XOR patch against an adjacent
#: state's row when they differ in at most ``row_bytes // 8`` bytes
#: (but never fewer than this floor) — past that a full row copy is
#: cheaper than chasing patch entries.
DELTA_MIN_PATCH_CAP = 4

#: Default budget for the delta section payload, in bytes.
DEFAULT_DELTA_BUDGET = 1 << 20

#: Default per-token byte-class-length cap for the precomputed set:
#: longer tokens are context-dependent regardless of budget.
DEFAULT_CI_MAX_LEN = 48

#: Default precompute budget in trie-DFS steps (states × trie nodes):
#: class strings are admitted shortest-first until the trie would push
#: past it; the remainder stays context-dependent.
DEFAULT_CI_BUDGET = 8_000_000


class MaskError(ReproError):
    """Bad token id, invalid advance, or a corrupt/mismatched blob."""


def mask_key(content: str, vocab_hash: str) -> str:
    """The store key for one mask artifact: grammar content id ×
    vocabulary hash × mask ABI.  No interpreter tag — RMSK payloads
    are raw bytes, valid under every interpreter."""
    digest = hashlib.sha256()
    digest.update(content.encode("ascii"))
    digest.update(b":")
    digest.update(vocab_hash.encode("ascii"))
    digest.update(b":rmsk%d" % MASK_ABI)
    return digest.hexdigest()


class MaskTable:
    """Packed per-state validity rows + the CD remainder for one
    (grammar content, vocabulary) pair.  Stateless and shared: any
    number of :class:`MaskSession`\\ s (and server flows) query one
    table concurrently."""

    __slots__ = (
        "lowering",
        "vocab",
        "codes",
        "rows",
        "row_bytes",
        "cd_ids",
        "ci_count",
        "content",
        "grammar_name",
        "wiring",
        "build_ms",
        "_adv_memo",
        "delta_base",
        "delta_patches",
        "_delta_stats",
        "_beam_cache",
    )

    def __init__(
        self,
        lowering: MaskLowering,
        vocab: Vocabulary,
        rows: bytes,
        cd_ids: tuple[int, ...],
        content: str,
        grammar_name: str = "grammar",
        wiring: list | None = None,
        build_ms: float = 0.0,
    ) -> None:
        self.lowering = lowering
        self.vocab = vocab
        self.codes = tuple(lowering.codes(t) for t in vocab.tokens)
        self.rows = bytes(rows)
        self.row_bytes = (len(vocab) + 7) // 8
        self.cd_ids = tuple(cd_ids)
        self.ci_count = len(vocab) - len(self.cd_ids)
        self.content = content
        self.grammar_name = grammar_name
        self.wiring = wiring or []
        self.build_ms = build_ms
        self._adv_memo: dict = {}
        # Delta tables (rev 2): per-state base state (-1 = cold, serve
        # the full row) and 3-byte sparse XOR patch entries against the
        # base's *CI* row.  ``None`` means "no delta section" — an
        # old-format blob; :meth:`build_deltas` fills them in.
        self.delta_base: list[int] | None = None
        self.delta_patches: list[bytes] | None = None
        self._delta_stats: dict | None = None
        self._beam_cache = None  # lazily-built vectorized tables

    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        return self.lowering.n_states

    @property
    def vocab_hash(self) -> str:
        return self.vocab.vocab_hash

    @property
    def key(self) -> str:
        return mask_key(self.content, self.vocab_hash)

    def describe(self) -> dict:
        """JSON-safe summary (``/stats``, ``registry inspect``)."""
        out = {
            "key": self.key[:16],
            "grammar": self.grammar_name,
            "vocab_hash": self.vocab_hash[:16],
            "vocab_size": len(self.vocab),
            "states": self.n_states,
            "ci": self.ci_count,
            "cd": len(self.cd_ids),
            "row_bytes": self.row_bytes,
            "rev": MASK_FORMAT_REV if self.has_deltas else 1,
            "deltas": self.delta_stats() if self.has_deltas else None,
        }
        return out

    # ------------------------------------------------------------------
    # incremental mask deltas (rev 2)
    # ------------------------------------------------------------------
    @property
    def has_deltas(self) -> bool:
        return self.delta_base is not None

    def build_deltas(
        self, *, budget: int = DEFAULT_DELTA_BUDGET
    ) -> None:
        """Precompute sparse XOR row diffs between adjacent states.

        "Adjacent" means connected in the class-indexed step graph —
        exactly the state pairs consecutive decode steps traverse, so a
        warm consumer usually holds the base row already.  BFS from
        state 0 assigns each reachable state its discovery parent as
        delta base; the patch (3-byte entries: u16 byte index, u8 XOR)
        is kept only while it is sparse (≤ ``row_bytes // 8`` entries)
        and the section stays under ``budget`` bytes.  Everything else
        is *cold* and serves the full row.
        """
        n = self.n_states
        rb = self.row_bytes
        rows = self.rows
        step = self.lowering.step
        err = self.lowering.err_state
        base = [-1] * n
        patches = [b""] * n
        cap = max(DELTA_MIN_PATCH_CAP, rb // 8)
        spent = 0
        seen = [False] * n
        seen[0] = True
        frontier = [0]
        while frontier:
            nxt = []
            for s in frontier:
                if err[s]:
                    continue
                s_row = rows[s * rb : (s + 1) * rb]
                for t in set(step[s]):
                    if seen[t]:
                        continue
                    seen[t] = True
                    nxt.append(t)
                    t_row = rows[t * rb : (t + 1) * rb]
                    diff = [
                        (i, a ^ b)
                        for i, (a, b) in enumerate(zip(s_row, t_row))
                        if a != b
                    ]
                    size = 6 + 3 * len(diff)
                    if len(diff) > cap or spent + size > budget:
                        continue
                    base[t] = s
                    patches[t] = b"".join(
                        i.to_bytes(2, "big") + bytes((x,))
                        for i, x in diff
                    )
                    spent += size
            frontier = nxt
        self.delta_base = base
        self.delta_patches = patches
        self._delta_stats = None

    def delta_stats(self) -> dict:
        """Delta-table telemetry: how many rows are stored as patches
        and how sparse the patches are (``/stats``, ``inspect``)."""
        if self._delta_stats is None:
            if not self.has_deltas:
                return {
                    "rows_deltified": 0,
                    "mean_popcount": 0.0,
                    "payload_bytes": 0,
                }
            count = 0
            bits = 0
            payload = 0
            for b, patch in zip(self.delta_base, self.delta_patches):
                if b < 0:
                    continue
                count += 1
                payload += 6 + len(patch)
                for i in range(2, len(patch), 3):
                    bits += patch[i].bit_count()
            self._delta_stats = {
                "rows_deltified": count,
                "mean_popcount": bits / count if count else 0.0,
                "payload_bytes": payload,
            }
        return self._delta_stats

    def ci_row(self, state: int) -> bytearray:
        """The precomputed CI row only — no CD checks.  The base the
        delta patches apply against."""
        base = state * self.row_bytes
        return bytearray(self.rows[base : base + self.row_bytes])

    def patched_ci_row(
        self, state: int, base_row: bytes
    ) -> bytearray:
        """Rebuild ``state``'s CI row from its delta base's row.  The
        caller guarantees ``base_row`` is ``delta_base[state]``'s CI
        row; the patch XORs the few differing bytes in place."""
        row = bytearray(base_row)
        patch = self.delta_patches[state]
        for i in range(0, len(patch), 3):
            row[patch[i] << 8 | patch[i + 1]] ^= patch[i + 2]
        return row

    def cd_bits(self, state: int, row: bytearray) -> None:
        """OR the context-dependent tokens' live validity into ``row``."""
        if self.cd_ids:
            codes = self.codes
            valid = self.lowering.valid_memo
            for tok in self.cd_ids:
                if valid(state, codes[tok]):
                    row[tok >> 3] |= 1 << (tok & 7)

    # ------------------------------------------------------------------
    def mask_row(self, state: int) -> bytearray:
        """The packed validity row for ``state``: the precomputed CI
        bits copied, the CD tokens re-checked (memoized) live."""
        row = self.ci_row(state)
        self.cd_bits(state, row)
        return row

    def naive_row(self, state: int) -> bytearray:
        """The simulate-every-token baseline: no precomputed rows, no
        trie, no memo — each token's bytes walked individually.  The
        benchmark's denominator."""
        lowering = self.lowering
        class_table = lowering.class_table
        step = lowering.step
        err = lowering.err_state
        doomed = lowering.doomed
        row = bytearray(self.row_bytes)
        for i, token in enumerate(self.vocab.tokens):
            s = state
            for c in token.translate(class_table):
                if err[s]:
                    s = -1
                    break
                s = step[s][c]
            if s >= 0 and not doomed[s]:
                row[i >> 3] |= 1 << (i & 7)
        return row

    def advance_state(self, state: int, token_id: int) -> int:
        """The state after emitting ``token_id`` from ``state``.
        Raises :class:`MaskError` for out-of-range ids or tokens whose
        mask bit is 0 (a constrained decoder never emits those)."""
        if not 0 <= token_id < len(self.vocab):
            raise MaskError(
                f"token id {token_id} out of range "
                f"(vocabulary has {len(self.vocab)} tokens)"
            )
        memo = self._adv_memo
        key = (state, token_id)
        nxt = memo.get(key)
        if nxt is None:
            lowering = self.lowering
            nxt = lowering.walk(state, self.codes[token_id])
            if nxt < 0 or lowering.doomed[nxt]:
                nxt = -1
            if len(memo) < 1 << 18:
                memo[key] = nxt
        if nxt < 0:
            raise MaskError(
                f"token {token_id} is not valid in state {state}"
            )
        return nxt

    def eos_valid(self, state: int) -> bool:
        """Whether end-of-data is accepted in ``state`` (some pending
        token detects at EOF — the flush path's condition)."""
        return self.lowering.eos[state]

    # ------------------------------------------------------------------
    # serialization: RMSK | u32 header len | JSON header | raw sections
    # ------------------------------------------------------------------
    def to_blob(self) -> bytes:
        header = {
            "format": _MAGIC.decode("ascii"),
            "abi": MASK_ABI,
            "content": self.content,
            "fingerprint": self.lowering.fingerprint(),
            "grammar": self.grammar_name,
            "wiring": self.wiring,
            "vocab_hash": self.vocab_hash,
            "vocab_size": len(self.vocab),
            "states": self.n_states,
            "row_bytes": self.row_bytes,
            "ci": self.ci_count,
            "cd": len(self.cd_ids),
            "built": time.time(),
        }
        if self.has_deltas:
            # The delta section trails the vocabulary, so rev-1
            # readers (which stop after the last token) load this blob
            # unchanged; the header flag is what rev-2 readers key on.
            header["rev"] = MASK_FORMAT_REV
            header["deltas"] = self.delta_stats()
        head = json.dumps(header, sort_keys=True).encode("utf-8")
        parts = [_MAGIC, len(head).to_bytes(4, "big"), head, self.rows]
        parts.extend(t.to_bytes(4, "big") for t in self.cd_ids)
        for token in self.vocab.tokens:
            parts.append(len(token).to_bytes(4, "big"))
            parts.append(token)
        if self.has_deltas:
            for base, patch in zip(self.delta_base, self.delta_patches):
                parts.append((base & 0xFFFFFFFF).to_bytes(4, "big"))
                parts.append((len(patch) // 3).to_bytes(2, "big"))
                parts.append(patch)
        return b"".join(parts)


def read_mask_header(blob: bytes) -> dict:
    """Parse and validate an RMSK header without touching the rows."""
    if blob[:4] != _MAGIC:
        raise MaskError("not a mask artifact (bad magic)")
    head_len = int.from_bytes(blob[4:8], "big")
    if len(blob) < 8 + head_len:
        raise MaskError("truncated mask artifact header")
    try:
        header = json.loads(blob[8 : 8 + head_len])
    except ValueError as exc:
        raise MaskError(f"corrupt mask artifact header: {exc}") from None
    return header


# ----------------------------------------------------------------------
# build / load
# ----------------------------------------------------------------------
def build_mask_table(
    grammar,
    vocab: Vocabulary,
    options: TaggerOptions | None = None,
    *,
    ci_max_len: int = DEFAULT_CI_MAX_LEN,
    ci_budget: int = DEFAULT_CI_BUDGET,
    delta_budget: int = DEFAULT_DELTA_BUDGET,
) -> MaskTable:
    """Lower ``grammar`` and precompute the CI rows for ``vocab``.

    Tokens group by byte-class string (distinct tokens with one class
    string are one walk — the token-space-compression observation);
    groups are admitted into the precomputed trie shortest-first until
    ``ci_max_len`` / ``ci_budget`` push the remainder into the
    context-dependent set.  Sparse row deltas between adjacent states
    are precomputed under ``delta_budget`` bytes (0 disables them —
    the rev-1 blob shape).
    """
    start = time.perf_counter()
    options = options or TaggerOptions()
    tagger = CompiledTagger(grammar, options)
    lowering = MaskLowering(tagger)

    groups: dict[bytes, list[int]] = {}
    for i, token in enumerate(vocab.tokens):
        groups.setdefault(lowering.codes(token), []).append(i)

    n = lowering.n_states
    root: list = [{}, []]
    nodes = 1
    cd_ids: list[int] = []
    for code_str, ids in sorted(
        groups.items(), key=lambda kv: (len(kv[0]), kv[0])
    ):
        if len(code_str) > ci_max_len:
            cd_ids.extend(ids)
            continue
        # Count the nodes this string would add before inserting, so a
        # budget refusal leaves the trie untouched.
        node = root
        new = 0
        for depth, c in enumerate(code_str):
            child = node[0].get(c)
            if child is None:
                new = len(code_str) - depth
                break
            node = child
        if (nodes + new) * n > ci_budget and nodes > 1:
            cd_ids.extend(ids)
            continue
        nodes += new
        node = root
        for c in code_str:
            child = node[0].get(c)
            if child is None:
                child = [{}, []]
                node[0][c] = child
            node = child
        node[1].extend(ids)

    rows = lowering.rows_from_trie(root, len(vocab))
    from repro.core.artifact import content_id, wiring_fields

    source = write_yacc_grammar(grammar)
    table = MaskTable(
        lowering,
        vocab,
        bytes(rows),
        tuple(sorted(cd_ids)),
        content_id(source, options.wiring),
        grammar_name=grammar.name,
        wiring=wiring_fields(options.wiring),
    )
    if delta_budget:
        table.build_deltas(budget=delta_budget)
    table.build_ms = (time.perf_counter() - start) * 1e3
    return table


def load_mask_blob(
    blob: bytes, grammar, options: TaggerOptions | None = None
) -> MaskTable:
    """Restore a mask table from an RMSK blob.

    ``grammar``/``options`` must be the artifact the masks were built
    against (normally the registry hands both over).  The lowering is
    recomputed — cheap next to the trie precompute — and its
    fingerprint must match the builder's, which pins the state-id
    interning order; a mismatch raises :class:`MaskError` so callers
    rebuild instead of serving misaligned rows.
    """
    start = time.perf_counter()
    header = read_mask_header(blob)
    if header.get("abi") != MASK_ABI:
        raise MaskError(
            f"mask artifact ABI {header.get('abi')!r}, "
            f"this build is {MASK_ABI}"
        )
    options = options or TaggerOptions()
    try:
        lowering = MaskLowering(CompiledTagger(grammar, options))
    except MaskInfeasible as exc:
        raise MaskError(str(exc)) from None
    if lowering.fingerprint() != header.get("fingerprint"):
        raise MaskError(
            "mask artifact fingerprint mismatch (grammar tables "
            "drifted); rebuild the masks"
        )
    n_states = header["states"]
    row_bytes = header["row_bytes"]
    vocab_size = header["vocab_size"]
    cd_count = header["cd"]
    offset = 8 + int.from_bytes(blob[4:8], "big")
    rows_end = offset + n_states * row_bytes
    cd_end = rows_end + 4 * cd_count
    if len(blob) < cd_end:
        raise MaskError("truncated mask artifact payload")
    rows = blob[offset:rows_end]
    cd_ids = tuple(
        int.from_bytes(blob[i : i + 4], "big")
        for i in range(rows_end, cd_end, 4)
    )
    tokens = []
    pos = cd_end
    for _ in range(vocab_size):
        if len(blob) < pos + 4:
            raise MaskError("truncated mask artifact vocabulary")
        tlen = int.from_bytes(blob[pos : pos + 4], "big")
        pos += 4
        tokens.append(blob[pos : pos + tlen])
        pos += tlen
    vocab = Vocabulary(tokens)
    if vocab.vocab_hash != header.get("vocab_hash"):
        raise MaskError("mask artifact vocabulary hash mismatch")
    table = MaskTable(
        lowering,
        vocab,
        rows,
        cd_ids,
        header["content"],
        grammar_name=header.get("grammar", "grammar"),
        wiring=header.get("wiring", []),
    )
    if "deltas" in header:
        delta_base = []
        delta_patches = []
        for _ in range(n_states):
            if len(blob) < pos + 6:
                raise MaskError("truncated mask artifact delta table")
            base = int.from_bytes(blob[pos : pos + 4], "big")
            count = int.from_bytes(blob[pos + 4 : pos + 6], "big")
            pos += 6
            if len(blob) < pos + 3 * count:
                raise MaskError("truncated mask artifact delta table")
            delta_base.append(-1 if base == 0xFFFFFFFF else base)
            delta_patches.append(blob[pos : pos + 3 * count])
            pos += 3 * count
        table.delta_base = delta_base
        table.delta_patches = delta_patches
    table.build_ms = (time.perf_counter() - start) * 1e3
    return table


# ----------------------------------------------------------------------
class MaskSession:
    """One decode's cursor over a shared :class:`MaskTable`.

    ``mask()`` → packed row for the current state; ``advance(id)`` →
    step by that token's bytes.  ``metrics`` (when given) receives the
    structgen counters — masks served, precomputed CI bits served,
    context-dependent checks — alongside the session-local
    :attr:`counters` dict.
    """

    __slots__ = ("table", "state", "counters", "_metrics")

    def __init__(self, table: MaskTable, metrics=None) -> None:
        self.table = table
        self.state = 0
        self.counters = {
            "masks_served": 0,
            "ci_tokens": 0,
            "cd_checks": 0,
            "advances": 0,
        }
        self._metrics = metrics

    def mask(self) -> bytes:
        table = self.table
        row = bytes(table.mask_row(self.state))
        counters = self.counters
        counters["masks_served"] += 1
        counters["ci_tokens"] += table.ci_count
        counters["cd_checks"] += len(table.cd_ids)
        metrics = self._metrics
        if metrics is not None:
            metrics.counter("structgen.masks_served").inc()
            metrics.counter("structgen.ci_tokens").inc(table.ci_count)
            metrics.counter("structgen.cd_checks").inc(len(table.cd_ids))
        return row

    def advance(self, token_id: int) -> int:
        self.state = self.table.advance_state(self.state, token_id)
        self.counters["advances"] += 1
        metrics = self._metrics
        if metrics is not None:
            metrics.counter("structgen.advances").inc()
        return self.state

    def eos_valid(self) -> bool:
        return self.table.eos_valid(self.state)

    def reset(self) -> None:
        self.state = 0
