"""Constrained-decoding subsystem: grammar → per-state token masks.

The 2006 tagger under a 2026 inference-stack workload: precompute
which vocabulary tokens each product-automaton state admits
(:mod:`repro.apps.structgen.masks`), persist the packed tables in the
registry keyed ``content_id × vocab_hash``, and serve
``advance``/``mask`` decode flows in-process (:class:`MaskSession`)
or over the framed protocol (``ScanServer``/``ScanClient``).  See the
README "Constrained decoding" walkthrough and DESIGN.md §12.
"""

from .beam import BeamMaskSession, beam_capability
from .bench import run_beam_bench, run_mask_bench
from .masks import (
    MASK_ABI,
    MASK_FORMAT_REV,
    MaskError,
    MaskSession,
    MaskTable,
    build_mask_table,
    load_mask_blob,
    mask_key,
)
from .vocab import Vocabulary, synthetic_vocab

__all__ = [
    "BeamMaskSession",
    "MASK_ABI",
    "MASK_FORMAT_REV",
    "MaskError",
    "MaskSession",
    "MaskTable",
    "Vocabulary",
    "beam_capability",
    "build_mask_table",
    "load_mask_blob",
    "mask_key",
    "run_beam_bench",
    "run_mask_bench",
    "synthetic_vocab",
]
