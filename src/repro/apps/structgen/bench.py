"""Masks/sec benchmark: precomputed path vs naive per-token simulation.

Both paths answer the same query — the full packed validity row for
the decode's current state — over the same seeded random walk through
valid tokens.  The precomputed path is a row copy plus the
context-dependent remainder; the naive baseline re-walks every
vocabulary token's bytes at every step (what a masking layer without
ahead-of-time precompute has to do).  The ≥10× ratio between them is
the CI acceptance gate and lands in ``BENCH_throughput.json``.
"""

from __future__ import annotations

import random
import time

from .beam import BeamMaskSession, xor_patch
from .masks import MaskSession, MaskTable, build_mask_table
from .vocab import Vocabulary, synthetic_vocab

__all__ = [
    "beam_schedule",
    "random_walk_states",
    "run_beam_bench",
    "run_mask_bench",
]


def random_walk_states(
    table: MaskTable, steps: int, seed: int = 2006
) -> list[int]:
    """A seeded decode trajectory: from state 0, repeatedly pick a
    uniformly random valid token and advance (reset on dead ends), and
    return the state visited at each step."""
    rng = random.Random(seed)
    session = MaskSession(table)
    states = []
    for _ in range(steps):
        states.append(session.state)
        row = session.mask()
        valid = [
            i for i in range(len(table.vocab)) if row[i >> 3] >> (i & 7) & 1
        ]
        if not valid:
            session.reset()
            continue
        session.advance(rng.choice(valid))
    return states


def _rate(query, states, reps: int = 3) -> float:
    """Best-of-``reps`` masks/sec for ``query(state)`` over a fixed
    trajectory (one untimed warmup pass first)."""
    for state in states:
        query(state)
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        for state in states:
            query(state)
        best = min(best, time.perf_counter() - start)
    return len(states) / best


def run_mask_bench(
    grammar,
    options=None,
    vocab: Vocabulary | None = None,
    *,
    steps: int = 400,
    naive_steps: int = 40,
    seed: int = 2006,
    reps: int = 3,
    ci_max_len=None,
    ci_budget=None,
) -> dict:
    """Measure the precomputed and naive masks/sec on one grammar.

    The naive baseline runs over a prefix of the same trajectory
    (``naive_steps``) because it is orders of magnitude slower; both
    rates are per-mask, so the ratio is fair.
    """
    vocab = vocab or synthetic_vocab()
    kwargs = {}
    if ci_max_len is not None:
        kwargs["ci_max_len"] = ci_max_len
    if ci_budget is not None:
        kwargs["ci_budget"] = ci_budget
    table = build_mask_table(grammar, vocab, options, **kwargs)

    states = random_walk_states(table, steps, seed=seed)
    session = MaskSession(table)

    def precomputed(state: int):
        session.state = state
        return session.mask()

    masks_per_s = _rate(precomputed, states, reps=reps)
    naive_per_s = _rate(table.naive_row, states[:naive_steps], reps=1)

    counters = dict(session.counters)
    served = counters["masks_served"] or 1
    return {
        "grammar": table.grammar_name,
        "vocab_size": len(vocab),
        "vocab_hash": vocab.vocab_hash[:16],
        "states": table.n_states,
        "ci": table.ci_count,
        "cd": len(table.cd_ids),
        "ci_fraction": table.ci_count / len(vocab),
        "build_ms": table.build_ms,
        "steps": len(states),
        "masks_per_s": masks_per_s,
        "naive_masks_per_s": naive_per_s,
        "speedup": masks_per_s / naive_per_s if naive_per_s else 0.0,
        "ci_tokens_per_mask": counters["ci_tokens"] / served,
        "cd_checks_per_mask": counters["cd_checks"] / served,
    }


# ----------------------------------------------------------------------
# beam: batched advance+mask vs independent per-lane sessions
# ----------------------------------------------------------------------
def beam_schedule(
    table: MaskTable, width: int, steps: int, seed: int = 2006
) -> list:
    """A seeded beam trajectory: per step one valid token id per lane
    (``("advance", ids)``) or a full-beam reset when any lane dead-
    ends (``("reset",)``).  Both the beam session and the independent
    baselines replay the identical operation list."""
    rng = random.Random(seed)
    lanes = [MaskSession(table) for _ in range(width)]
    n = len(table.vocab)
    ops: list = []
    for _ in range(steps):
        ids = []
        for lane in lanes:
            row = lane.mask()
            valid = [
                i for i in range(n) if row[i >> 3] >> (i & 7) & 1
            ]
            if not valid:
                ids = None
                break
            ids.append(rng.choice(valid))
        if ids is None:
            ops.append(("reset",))
            for lane in lanes:
                lane.reset()
            continue
        ops.append(("advance", ids))
        for lane, tok in zip(lanes, ids):
            lane.advance(tok)
    return ops


def _beam_rate(run, reps: int = 3) -> float:
    """Best-of-``reps`` seconds for ``run()`` (one warmup pass)."""
    run()
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def run_beam_bench(
    grammar,
    options=None,
    vocab: Vocabulary | None = None,
    *,
    width: int = 32,
    steps: int = 200,
    seed: int = 2006,
    reps: int = 3,
    path: str = "auto",
) -> dict:
    """Beam-of-``width`` masks/sec vs ``width`` independent sessions.

    Both sides replay the same seeded schedule and serve the same
    masks per step (one per lane), so the ratio isolates exactly what
    the batched engine saves: per-lane Python call overhead.  Also
    measures the wire saving of delta-encoding consecutive MASKS
    payloads against shipping full rows.
    """
    vocab = vocab or synthetic_vocab()
    table = build_mask_table(grammar, vocab, options)
    ops = beam_schedule(table, width, steps, seed=seed)
    masks_total = width * len(ops)

    beam = BeamMaskSession(table, width, path=path)

    def run_beam():
        beam.reset(width)
        for op in ops:
            if op[0] == "reset":
                beam.reset(width)
                beam.masks_packed()
            else:
                beam.advance_masks(op[1])

    lanes = [MaskSession(table) for _ in range(width)]

    def run_sessions():
        for lane in lanes:
            lane.reset()
        for op in ops:
            if op[0] == "reset":
                for lane in lanes:
                    lane.reset()
            else:
                for lane, tok in zip(lanes, op[1]):
                    lane.advance(tok)
            for lane in lanes:
                lane.mask()

    beam_s = _beam_rate(run_beam, reps=reps)
    sessions_s = _beam_rate(run_sessions, reps=reps)

    # Wire accounting: per step, per lane, a delta payload (3 bytes
    # per changed row byte + 3 bytes of frame overhead) vs the full
    # row — the MASKS frame picks whichever is smaller, full rows
    # counted once more as the resync/cold baseline.
    beam.reset(width)
    rb = table.row_bytes
    prev = list(beam.masks())
    delta_bytes = 0
    full_bytes = 0
    for op in ops:
        if op[0] == "reset":
            beam.reset(width)
        else:
            beam.advance(op[1])
        rows = beam.masks()
        for lane, row in enumerate(rows):
            full_bytes += rb
            patch = xor_patch(prev[lane], row)
            delta_bytes += min(len(patch) + 3, rb + 1)
        prev = rows

    return {
        "grammar": table.grammar_name,
        "vocab_size": len(vocab),
        "states": table.n_states,
        "width": width,
        "steps": len(ops),
        "path": beam.path,
        "beam_masks_per_s": masks_total / beam_s,
        "sessions_masks_per_s": masks_total / sessions_s,
        "speedup": sessions_s / beam_s if beam_s else 0.0,
        "beam_step_us": beam_s / len(ops) * 1e6,
        "sessions_step_us": sessions_s / len(ops) * 1e6,
        "wire_delta_bytes": delta_bytes,
        "wire_full_bytes": full_bytes,
        "wire_delta_ratio": (
            delta_bytes / full_bytes if full_bytes else 0.0
        ),
        "deltas": table.delta_stats(),
    }
