"""Masks/sec benchmark: precomputed path vs naive per-token simulation.

Both paths answer the same query — the full packed validity row for
the decode's current state — over the same seeded random walk through
valid tokens.  The precomputed path is a row copy plus the
context-dependent remainder; the naive baseline re-walks every
vocabulary token's bytes at every step (what a masking layer without
ahead-of-time precompute has to do).  The ≥10× ratio between them is
the CI acceptance gate and lands in ``BENCH_throughput.json``.
"""

from __future__ import annotations

import random
import time

from .masks import MaskSession, MaskTable, build_mask_table
from .vocab import Vocabulary, synthetic_vocab

__all__ = ["run_mask_bench", "random_walk_states"]


def random_walk_states(
    table: MaskTable, steps: int, seed: int = 2006
) -> list[int]:
    """A seeded decode trajectory: from state 0, repeatedly pick a
    uniformly random valid token and advance (reset on dead ends), and
    return the state visited at each step."""
    rng = random.Random(seed)
    session = MaskSession(table)
    states = []
    for _ in range(steps):
        states.append(session.state)
        row = session.mask()
        valid = [
            i for i in range(len(table.vocab)) if row[i >> 3] >> (i & 7) & 1
        ]
        if not valid:
            session.reset()
            continue
        session.advance(rng.choice(valid))
    return states


def _rate(query, states, reps: int = 3) -> float:
    """Best-of-``reps`` masks/sec for ``query(state)`` over a fixed
    trajectory (one untimed warmup pass first)."""
    for state in states:
        query(state)
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        for state in states:
            query(state)
        best = min(best, time.perf_counter() - start)
    return len(states) / best


def run_mask_bench(
    grammar,
    options=None,
    vocab: Vocabulary | None = None,
    *,
    steps: int = 400,
    naive_steps: int = 40,
    seed: int = 2006,
    reps: int = 3,
    ci_max_len=None,
    ci_budget=None,
) -> dict:
    """Measure the precomputed and naive masks/sec on one grammar.

    The naive baseline runs over a prefix of the same trajectory
    (``naive_steps``) because it is orders of magnitude slower; both
    rates are per-mask, so the ratio is fair.
    """
    vocab = vocab or synthetic_vocab()
    kwargs = {}
    if ci_max_len is not None:
        kwargs["ci_max_len"] = ci_max_len
    if ci_budget is not None:
        kwargs["ci_budget"] = ci_budget
    table = build_mask_table(grammar, vocab, options, **kwargs)

    states = random_walk_states(table, steps, seed=seed)
    session = MaskSession(table)

    def precomputed(state: int):
        session.state = state
        return session.mask()

    masks_per_s = _rate(precomputed, states, reps=reps)
    naive_per_s = _rate(table.naive_row, states[:naive_steps], reps=1)

    counters = dict(session.counters)
    served = counters["masks_served"] or 1
    return {
        "grammar": table.grammar_name,
        "vocab_size": len(vocab),
        "vocab_hash": vocab.vocab_hash[:16],
        "states": table.n_states,
        "ci": table.ci_count,
        "cd": len(table.cd_ids),
        "ci_fraction": table.ci_count / len(vocab),
        "build_ms": table.build_ms,
        "steps": len(states),
        "masks_per_s": masks_per_s,
        "naive_masks_per_s": naive_per_s,
        "speedup": masks_per_s / naive_per_s if naive_per_s else 0.0,
        "ci_tokens_per_mask": counters["ci_tokens"] / served,
        "cd_checks_per_mask": counters["cd_checks"] / served,
    }
