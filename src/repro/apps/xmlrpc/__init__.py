"""XML-RPC content-based routing (the paper's §4 implementation).

"As messages pass through the system, the CFG parser tagger asserts a
signal associated with a service when that service is found in a
message. This signal is then used to control a switch which routes
the message to the appropriate destination." (Fig. 12)
"""

from repro.apps.xmlrpc.messages import (
    Base64Value,
    DateTimeValue,
    DoubleValue,
    I4Value,
    IntValue,
    MethodCall,
    StringValue,
    StructValue,
    ArrayValue,
)
from repro.apps.xmlrpc.services import ServiceTable, BANK_SHOPPING_TABLE
from repro.apps.xmlrpc.workload import WorkloadGenerator
from repro.apps.xmlrpc.router import ContentBasedRouter, NaiveRouter, RoutedMessage

__all__ = [
    "ArrayValue",
    "BANK_SHOPPING_TABLE",
    "Base64Value",
    "ContentBasedRouter",
    "DateTimeValue",
    "DoubleValue",
    "I4Value",
    "IntValue",
    "MethodCall",
    "NaiveRouter",
    "RoutedMessage",
    "ServiceTable",
    "StringValue",
    "StructValue",
    "WorkloadGenerator",
]
