"""XML-RPC message model and serializer.

Messages serialize to exactly the wire format of the paper's Fig. 14
grammar — notably *without* ``<value>`` wrapper tags (Fig. 14 inlines
``value`` into ``param``) and with ``<data>`` holding at most one
value (Fig. 14's ``data`` rule is a single optional value). Lexical
restrictions of the grammar are enforced at construction: STRING
payloads are alphanumeric, method names are alphanumeric, base64
payloads use the ``[+/A-Za-z0-9]`` alphabet.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Union

from repro.errors import BackendError

_ALNUM = re.compile(r"^[a-zA-Z0-9]+$")
_BASE64 = re.compile(r"^[+/A-Za-z0-9]+$")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise BackendError(message)


@dataclass(frozen=True)
class IntValue:
    """``<int>`` — decimal integer with optional sign."""

    value: int

    def serialize(self) -> str:
        return f"<int>{self.value}</int>"


@dataclass(frozen=True)
class I4Value:
    """``<i4>`` — 32-bit integer."""

    value: int

    def __post_init__(self) -> None:
        _require(-(2**31) <= self.value < 2**31, "i4 out of 32-bit range")

    def serialize(self) -> str:
        return f"<i4>{self.value}</i4>"


@dataclass(frozen=True)
class StringValue:
    """``<string>`` — alphanumeric per the Fig. 14 STRING token."""

    value: str

    def __post_init__(self) -> None:
        _require(
            bool(_ALNUM.match(self.value)),
            f"STRING must be alphanumeric, got {self.value!r}",
        )

    def serialize(self) -> str:
        return f"<string>{self.value}</string>"


@dataclass(frozen=True)
class DoubleValue:
    """``<double>`` — signed decimal with a fractional part."""

    value: float

    def serialize(self) -> str:
        text = f"{self.value:.6f}".rstrip("0")
        if text.endswith("."):
            text += "0"
        return f"<double>{text}</double>"


@dataclass(frozen=True)
class DateTimeValue:
    """``<dateTime.iso8601>`` — YYYYMMDDTHH:MM:SS."""

    year: int
    month: int
    day: int
    hour: int
    minute: int
    second: int

    def __post_init__(self) -> None:
        _require(1000 <= self.year <= 9999, "year must be four digits")
        _require(1 <= self.month <= 12, "bad month")
        _require(1 <= self.day <= 31, "bad day")
        _require(0 <= self.hour <= 23, "bad hour")
        _require(0 <= self.minute <= 59, "bad minute")
        _require(0 <= self.second <= 59, "bad second")

    def serialize(self) -> str:
        return (
            f"<dateTime.iso8601>{self.year:04d}{self.month:02d}"
            f"{self.day:02d}T{self.hour:02d}:{self.minute:02d}:"
            f"{self.second:02d}</dateTime.iso8601>"
        )


@dataclass(frozen=True)
class Base64Value:
    """``<base64>`` — payload over the Fig. 14 BASE64 alphabet."""

    value: str

    def __post_init__(self) -> None:
        _require(
            bool(_BASE64.match(self.value)),
            f"BASE64 must match [+/A-Za-z0-9]+, got {self.value!r}",
        )

    def serialize(self) -> str:
        return f"<base64>{self.value}</base64>"


@dataclass(frozen=True)
class StructValue:
    """``<struct>`` — one or more named members."""

    members: tuple[tuple[str, "Value"], ...]

    def __post_init__(self) -> None:
        _require(len(self.members) >= 1, "struct needs at least one member")
        for name, _value in self.members:
            _require(
                bool(_ALNUM.match(name)),
                f"member name must be alphanumeric, got {name!r}",
            )

    def serialize(self) -> str:
        parts = ["<struct>"]
        for name, value in self.members:
            parts.append(
                f"<member><name>{name}</name>{value.serialize()}</member>"
            )
        parts.append("</struct>")
        return "".join(parts)


@dataclass(frozen=True)
class ArrayValue:
    """``<array>`` — Fig. 14 allows at most one value in ``<data>``."""

    item: Union["Value", None] = None

    def serialize(self) -> str:
        if self.item is None:
            return "<array></array>"
        return f"<array><data>{self.item.serialize()}</data></array>"


Value = Union[
    IntValue,
    I4Value,
    StringValue,
    DoubleValue,
    DateTimeValue,
    Base64Value,
    StructValue,
    ArrayValue,
]


@dataclass(frozen=True)
class MethodCall:
    """A complete XML-RPC method call."""

    method: str
    params: tuple[Value, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        _require(
            bool(_ALNUM.match(self.method)),
            f"method name must be alphanumeric, got {self.method!r}",
        )

    def serialize(self) -> str:
        parts = [f"<methodCall><methodName>{self.method}</methodName><params>"]
        for value in self.params:
            parts.append(f"<param>{value.serialize()}</param>")
        parts.append("</params></methodCall>")
        return "".join(parts)

    def encode(self) -> bytes:
        return self.serialize().encode("ascii")
