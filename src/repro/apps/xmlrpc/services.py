"""Service tables for content-based routing (Fig. 12).

The paper's example routes XML-RPC messages for ``deposit``,
``withdraw`` and ``acct info`` to a bank server and ``buy``, ``sell``,
``price`` to a shopping server. (Our service names are alphanumeric —
``acctinfo`` — because the Fig. 14 STRING token excludes spaces.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BackendError


@dataclass
class ServiceTable:
    """Maps service (method) names to output port numbers."""

    routes: dict[str, int] = field(default_factory=dict)
    port_names: dict[int, str] = field(default_factory=dict)
    default_port: int = -1

    def add(self, service: str, port: int) -> None:
        if service in self.routes:
            raise BackendError(f"service {service!r} already routed")
        self.routes[service] = port

    def port_of(self, service: str) -> int:
        return self.routes.get(service, self.default_port)

    def name_of(self, port: int) -> str:
        return self.port_names.get(port, f"port{port}")

    @property
    def services(self) -> list[str]:
        return list(self.routes)


#: Fig. 12's bank/shopping table: port 0 = bank, port 1 = shopping,
#: port -1 = default (unknown service).
BANK_SHOPPING_TABLE = ServiceTable(
    routes={
        "deposit": 0,
        "withdraw": 0,
        "acctinfo": 0,
        "buy": 1,
        "sell": 1,
        "price": 1,
    },
    port_names={0: "bank-server", 1: "shopping-server", -1: "default"},
)
