"""Synthetic XML-RPC workload generation.

The paper evaluated on streaming network data we do not have; this
generator synthesizes valid-per-DTD XML-RPC message streams with a
configurable service mix (see DESIGN.md §2 for the substitution
rationale). The *adversarial* mode plants service names inside string
and base64 payloads — the exact pattern that makes naive content
matching misroute and that the paper's context-aware design fixes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.apps.xmlrpc.messages import (
    ArrayValue,
    Base64Value,
    DateTimeValue,
    DoubleValue,
    I4Value,
    IntValue,
    MethodCall,
    StringValue,
    StructValue,
    Value,
)
from repro.apps.xmlrpc.services import BANK_SHOPPING_TABLE, ServiceTable

_WORDS = (
    "alpha", "bravo", "delta", "gamma", "omega", "zulu",
    "ledger", "invoice", "receipt", "cart", "quote", "batch",
)


@dataclass
class WorkloadGenerator:
    """Seeded generator of XML-RPC message streams.

    ``adversarial_rate`` is the fraction of messages that carry a
    *different* service's name inside a payload value (a decoy that
    only context-free matching falls for).
    """

    seed: int = 2006
    table: ServiceTable = None  # type: ignore[assignment]
    adversarial_rate: float = 0.0
    max_params: int = 4
    max_depth: int = 2

    def __post_init__(self) -> None:
        if self.table is None:
            self.table = BANK_SHOPPING_TABLE
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------
    def message(self) -> tuple[MethodCall, int, bool]:
        """One message: (call, true port, has decoy payload)."""
        rng = self._rng
        service = rng.choice(self.table.services)
        decoy = rng.random() < self.adversarial_rate
        params: list[Value] = [
            self._value(self.max_depth) for _ in range(rng.randint(0, self.max_params))
        ]
        if decoy:
            other = rng.choice(
                [s for s in self.table.services if self.table.port_of(s) != self.table.port_of(service)]
            )
            # Plant the other service's name in a payload string.
            params.insert(
                rng.randint(0, len(params)),
                StringValue(other),
            )
        call = MethodCall(method=service, params=tuple(params))
        return call, self.table.port_of(service), decoy

    def _value(self, depth: int) -> Value:
        rng = self._rng
        choices = ["i4", "int", "string", "double", "datetime", "base64"]
        if depth > 0:
            choices += ["struct", "array"]
        kind = rng.choice(choices)
        if kind == "i4":
            return I4Value(rng.randint(-(2**31), 2**31 - 1))
        if kind == "int":
            return IntValue(rng.randint(-(10**6), 10**6))
        if kind == "string":
            return StringValue(
                rng.choice(_WORDS) + str(rng.randint(0, 999))
            )
        if kind == "double":
            return DoubleValue(round(rng.uniform(-1000, 1000), 4))
        if kind == "datetime":
            return DateTimeValue(
                year=rng.randint(1996, 2006),
                month=rng.randint(1, 12),
                day=rng.randint(1, 28),
                hour=rng.randint(0, 23),
                minute=rng.randint(0, 59),
                second=rng.randint(0, 59),
            )
        if kind == "base64":
            alphabet = "ABCDEFabcdef0123456789+/"
            return Base64Value(
                "".join(rng.choice(alphabet) for _ in range(rng.randint(4, 16)))
            )
        if kind == "struct":
            members = tuple(
                (rng.choice(_WORDS), self._value(depth - 1))
                for _ in range(rng.randint(1, 3))
            )
            return StructValue(members)
        return ArrayValue(
            self._value(depth - 1) if rng.random() < 0.7 else None
        )

    # ------------------------------------------------------------------
    def stream(
        self, n_messages: int, separator: bytes = b"\n"
    ) -> tuple[bytes, list[tuple[MethodCall, int, bool]]]:
        """A byte stream of ``n_messages`` plus per-message ground truth."""
        annotated = [self.message() for _ in range(n_messages)]
        payload = separator.join(call.encode() for call, _p, _d in annotated)
        return payload, annotated
