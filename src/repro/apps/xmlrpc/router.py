"""Content-based XML-RPC message router (the paper's Fig. 12).

:class:`ContentBasedRouter` consumes the tagged-token stream: a STRING
token tagged with the *methodName* context carries the requested
service, and the accepting ``</methodCall>`` detection marks the
message boundary at which the switch commits the route.

:class:`RouterSession` is the streaming variant: the wire hands the
switch packets, not whole streams, so the session feeds arbitrary
chunks through the compiled tagger's incremental scan and emits each
message the moment its closing tag is detected — buffering only the
bytes that can still belong to an undecided message.

:class:`NaiveRouter` is the context-free baseline: it string-matches
service names anywhere in the payload, as a deep-packet-inspection
engine would, and drives the switch with every match signal — so a
service name planted inside a parameter value re-steers the switch
(the false positive the paper's introduction motivates).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.xmlrpc.services import BANK_SHOPPING_TABLE, ServiceTable
from repro.core.api import StreamSession
from repro.core.compiled import CompiledTagger
from repro.core.scanplan import DetectEvent
from repro.core.tagger import BehavioralTagger, GateLevelTagger
from repro.errors import BackendError
from repro.grammar.analysis import Occurrence
from repro.grammar.cfg import Grammar
from repro.grammar.examples import xmlrpc
from repro.software.naive import NaiveScanner


@dataclass(frozen=True)
class RoutedMessage:
    """One message with its routing decision."""

    start: int
    end: int
    port: int
    service: str | None
    payload: bytes

    def __str__(self) -> str:
        return f"[{self.start}:{self.end}] -> port {self.port} ({self.service})"


class ContentBasedRouter:
    """Routes a message stream using grammatical context (Fig. 12).

    Example
    -------
    >>> router = ContentBasedRouter()
    >>> msgs = router.route(b"<methodCall><methodName>buy</methodName>"
    ...                     b"<params></params></methodCall>")
    >>> msgs[0].port
    1
    """

    def __init__(
        self,
        grammar: Grammar | None = None,
        table: ServiceTable | None = None,
        tagger: BehavioralTagger | GateLevelTagger | None = None,
        method_element: str = "methodName",
    ) -> None:
        self.grammar = grammar if grammar is not None else xmlrpc()
        self.table = table if table is not None else BANK_SHOPPING_TABLE
        self.method_element = method_element
        self.tagger = tagger if tagger is not None else BehavioralTagger(self.grammar)

        #: Occurrences whose detection carries the service name: any
        #: terminal inside the methodName element's production body.
        self.method_occurrences: set[Occurrence] = set()
        self.accepting: set[Occurrence] = set(self._accepting_of(self.tagger))
        for production in self.grammar.productions:
            if production.lhs.name != method_element:
                continue
            for position, symbol in enumerate(production.rhs):
                from repro.grammar.symbols import Terminal

                if isinstance(symbol, Terminal) and not self.grammar.lexspec.get(
                    symbol.name
                ).is_literal:
                    self.method_occurrences.add(
                        Occurrence(production.index, position, symbol)
                    )
        if not self.method_occurrences:
            raise BackendError(
                f"grammar {self.grammar.name!r} has no data token inside "
                f"element {method_element!r}"
            )

    @staticmethod
    def _accepting_of(tagger) -> set[Occurrence]:
        if isinstance(tagger, BehavioralTagger):
            return set(tagger.accepting)
        return set(tagger.circuit.scanner.graph.accepting)

    # ------------------------------------------------------------------
    def route(self, data: bytes) -> list[RoutedMessage]:
        """Split and route every message in the stream."""
        messages: list[RoutedMessage] = []
        message_start: int | None = None
        service: str | None = None
        for token in self.tagger.tag(data):
            if message_start is None:
                message_start = token.start
            if token.occurrence in self.method_occurrences:
                service = token.text()
            if token.occurrence in self.accepting:
                messages.append(
                    RoutedMessage(
                        start=message_start,
                        end=token.end,
                        port=(
                            self.table.port_of(service)
                            if service is not None
                            else self.table.default_port
                        ),
                        service=service,
                        payload=data[message_start : token.end],
                    )
                )
                message_start = None
                service = None
        return messages

    def route_to_ports(self, data: bytes) -> dict[int, list[RoutedMessage]]:
        """Messages grouped per output port (the Fig. 12 switch view)."""
        ports: dict[int, list[RoutedMessage]] = {}
        for message in self.route(data):
            ports.setdefault(message.port, []).append(message)
        return ports

    def stream(self) -> "RouterSession":
        """A fresh incremental routing session (one per flow)."""
        return RouterSession(self)

    def shard(self, n_workers: int = 2, **service_options):
        """A sharded multi-process scan service over this router's
        grammar and table (see :class:`repro.service.ScanService`).

        Flows submitted to the returned service are hash-sharded to
        ``n_workers`` OS processes, each running independent
        :class:`RouterSession` state per flow; per-flow results are
        byte-for-byte what :meth:`route` produces on the concatenated
        stream.
        """
        from repro.service import RouterSpec, ScanService

        spec = RouterSpec(
            grammar=self.grammar,
            table=self.table,
            method_element=self.method_element,
        )
        return ScanService(spec, n_workers=n_workers, **service_options)


class RouterSession(StreamSession):
    """Incremental routing over a chunked byte stream.

    Chunk boundaries are arbitrary (packet payloads, read() returns);
    :meth:`feed` returns the messages completed inside each chunk, with
    absolute stream positions, and :meth:`finish` flushes the tail.
    The session produces exactly the messages
    :meth:`ContentBasedRouter.route` would on the concatenated stream,
    while holding only the bytes that can still belong to an undecided
    message (in-flight token candidates plus the open message's
    payload).

    Example
    -------
    >>> session = ContentBasedRouter().stream()
    >>> session.feed(b"<methodCall><methodName>buy</methodName>")
    []
    >>> session.feed(b"<params></params></methodCall> ")
    [RoutedMessage(start=0, end=70, port=1, service='buy', payload=...)]
    """

    def __init__(self, router: ContentBasedRouter) -> None:
        self.router = router
        tagger = router.tagger
        compiled = (
            tagger
            if isinstance(tagger, CompiledTagger)
            else getattr(tagger, "compiled", None)
        )
        if compiled is None:
            raise BackendError(
                "streaming routing needs the compiled tagger engine; "
                f"{type(tagger).__name__} cannot scan incrementally"
            )
        self._stream = compiled.stream()
        self._buffer = bytearray()
        self._base = 0  # absolute stream position of _buffer[0]
        self._message_start: int | None = None
        self._service: str | None = None

    # ------------------------------------------------------------------
    def feed(self, chunk: bytes) -> list[RoutedMessage]:
        """Consume one chunk; return the messages it completed."""
        self._check_open()
        self._buffer += chunk
        messages = self._apply(self._stream.feed_scan(chunk))
        self._prune()
        return messages

    @property
    def scan_session(self):
        """The underlying compiled scan session (the cross-flow batch
        stepper advances these in lockstep, then hands each flow's
        completed results back through :meth:`feed_prepared`)."""
        return self._stream

    def feed_prepared(
        self, chunk: bytes, results: "list[tuple[DetectEvent, int]]"
    ) -> list[RoutedMessage]:
        """:meth:`feed`, minus the scan: consume ``chunk`` whose scan
        ``results`` were already produced against :attr:`scan_session`
        (by a batch step)."""
        self._check_open()
        self._buffer += chunk
        messages = self._apply(results)
        self._prune()
        return messages

    def finish(self) -> list[RoutedMessage]:
        """End the stream; return messages completed by end-of-data."""
        self._check_open()
        messages = self._flush_snapshot()
        self._stream.close()
        self._finished = True
        return messages

    def peek_finish(self) -> list[RoutedMessage]:
        """Messages finishing now would add, without ending the stream.

        End-of-data is evaluated on a snapshot of the scan state, so
        feeding can continue afterwards — the mid-stream inspection
        point per-flow back-ends need.
        """
        return self._flush_snapshot()

    def _flush_snapshot(self) -> list[RoutedMessage]:
        """The one end-of-data flush path (:meth:`finish` commits it,
        :meth:`peek_finish` only observes it): run the per-token state
        machine over a snapshot flush and roll the session's message
        state back, leaving feeding possible."""
        saved = (self._message_start, self._service)
        messages = self._apply(self._stream.finish_scan_snapshot())
        self._message_start, self._service = saved
        return messages

    # ------------------------------------------------------------------
    def _apply(
        self, results: list[tuple[DetectEvent, int]]
    ) -> list[RoutedMessage]:
        """The same per-token state machine as :meth:`route`, driven by
        (event, earliest-start) pairs against the retained buffer."""
        router = self.router
        base = self._base
        buffer = self._buffer
        messages: list[RoutedMessage] = []
        for event, start in results:
            if self._message_start is None:
                self._message_start = start
            occurrence = event.occurrence
            if occurrence in router.method_occurrences:
                lexeme = bytes(buffer[start - base : event.end - base])
                self._service = lexeme.decode("utf-8", errors="replace")
            if occurrence in router.accepting:
                service = self._service
                message_start = self._message_start
                messages.append(
                    RoutedMessage(
                        start=message_start,
                        end=event.end,
                        port=(
                            router.table.port_of(service)
                            if service is not None
                            else router.table.default_port
                        ),
                        service=service,
                        payload=bytes(
                            buffer[message_start - base : event.end - base]
                        ),
                    )
                )
                self._message_start = None
                self._service = None
        return messages

    def _prune(self) -> None:
        """Drop buffered bytes no future message can reference: before
        both the scanner's earliest in-flight match start and the open
        message's start."""
        keep = self._stream.low_watermark()
        if self._message_start is not None and self._message_start < keep:
            keep = self._message_start
        drop = keep - self._base
        if drop > 0:
            del self._buffer[:drop]
            self._base = keep


class NaiveRouter:
    """Context-free baseline: string-match service names anywhere.

    The switch follows every match signal, so the *last* hit in a
    message decides its port — exactly how a naive hardware matcher
    wired to the Fig. 12 switch would behave. ``policy="first"`` is
    the software-style alternative; both misroute on planted names.
    """

    def __init__(
        self,
        table: ServiceTable | None = None,
        policy: str = "last",
        boundary: bytes = b"</methodCall>",
    ) -> None:
        if policy not in ("first", "last"):
            raise BackendError(f"unknown policy {policy!r}")
        self.table = table if table is not None else BANK_SHOPPING_TABLE
        self.policy = policy
        self.boundary = boundary
        self._needles = [s.encode("ascii") for s in self.table.services]

    # ------------------------------------------------------------------
    def route(self, data: bytes) -> list[RoutedMessage]:
        messages: list[RoutedMessage] = []
        position = 0
        while True:
            boundary_at = data.find(self.boundary, position)
            if boundary_at < 0:
                break
            end = boundary_at + len(self.boundary)
            payload = data[position:end]
            hits = NaiveScanner.find_strings(payload, self._needles)
            if hits:
                chosen = hits[-1] if self.policy == "last" else hits[0]
                service: str | None = chosen.name
                port = self.table.port_of(chosen.name)
            else:
                service, port = None, self.table.default_port
            messages.append(
                RoutedMessage(
                    start=position,
                    end=end,
                    port=port,
                    service=service,
                    payload=payload,
                )
            )
            position = end
            while position < len(data) and data[position] in b" \t\r\n":
                position += 1
        return messages
