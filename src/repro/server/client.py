"""Asyncio client library for the scan server's framed protocol.

:class:`ScanClient` owns one TCP connection, performs the versioned
HELLO handshake, and multiplexes flows over it:

.. code-block:: python

    async with ScanClient(host, port) as client:
        flow = await client.open_flow()
        await flow.send(b"<methodCall>...")
        messages = await flow.finish()          # final merged results

Connection semantics:

* **connect/retry** — :meth:`connect` retries with exponential
  backoff (``connect_retries`` attempts, ``connect_timeout`` per
  attempt), so clients can start before the server finishes binding;
* **timeouts** — :meth:`ClientFlow.finish` waits at most
  ``request_timeout`` for the flow's final RESULT;
* **frame limits** — DATA is split to fit the *server's* advertised
  ``max_frame`` from its HELLO, and frames received are bounded by the
  client's own ``max_frame``;
* **failure** — an ERROR frame addressed to a flow fails that flow's
  pending :meth:`~ClientFlow.finish` with
  :class:`~repro.server.protocol.ServerFault`; a connection-level
  ERROR or an unexpected close fails every pending flow.
"""

from __future__ import annotations

import asyncio
import contextlib
import random

from repro.errors import ReproError
from repro.server import protocol
from repro.server.protocol import (
    CONNECTION_FLOW,
    DEFAULT_MAX_FRAME,
    ErrorCode,
    FrameType,
    PROTOCOL_VERSION,
    ProtocolError,
    ServerFault,
)

__all__ = [
    "BeamFlow",
    "ClientFlow",
    "ConnectFailed",
    "MaskFlow",
    "ScanClient",
]

#: DATA overhead inside a frame body: type byte + u32 flow id.
_DATA_OVERHEAD = 5


class ConnectFailed(ReproError):
    """Every connection attempt failed (after retries)."""


class ClientFlow:
    """One open flow on a client connection.

    Partial RESULT frames (the server streams results as chunks
    complete messages) accumulate in :attr:`partial`; :meth:`finish`
    returns the complete, ordered result list for the flow.
    """

    #: Scan and mask flows journal enough history to be re-replayed
    #: onto a fresh backend; beam flows (delta + rollback state) don't.
    replayable = True

    def __init__(self, client: "ScanClient", flow_id: int) -> None:
        self.client = client
        self.flow_id = flow_id
        self.partial: list = []
        #: Replayable history (DATA chunks) when the client journals.
        self.journal: list[bytes] | None = (
            [] if client.journal else None
        )
        self._done: asyncio.Future = (
            asyncio.get_running_loop().create_future()
        )

    # ------------------------------------------------------------------
    async def send(self, chunk: bytes) -> None:
        """Stream one chunk of flow bytes (split to the server's frame
        limit; awaits transport drain, so server backpressure lands
        here as pacing)."""
        if self.journal is not None:
            self.journal.append(chunk)
        limit = max(1, self.client.server_max_frame - _DATA_OVERHEAD)
        for start in range(0, len(chunk), limit) or (0,):
            piece = chunk[start : start + limit]
            await self.client._send(
                protocol.encode_data(self.flow_id, piece)
            )

    async def replay_onto(self, client: "ScanClient") -> "ClientFlow":
        """Re-create this flow on ``client`` by replaying the journaled
        DATA history; the replacement flow is byte-equivalent because
        scanning is deterministic in the bytes fed so far."""
        if self.journal is None:
            raise ServerFault(
                self.flow_id,
                ErrorCode.FAILOVER,
                "flow has no journal to replay",
            )
        flow = await client.open_flow()
        for chunk in self.journal:
            await flow.send(chunk)
        return flow

    async def finish(self, timeout: float | None = None) -> list:
        """End the flow; wait for (and return) its complete results."""
        await self.client._send(
            protocol.encode_finish_flow(self.flow_id)
        )
        if timeout is None:
            timeout = self.client.request_timeout
        try:
            final = await asyncio.wait_for(
                asyncio.shield(self._done), timeout=timeout
            )
        except asyncio.TimeoutError:
            self.client._flows.pop(self.flow_id, None)
            raise TimeoutError(
                f"flow {self.flow_id}: no final RESULT within "
                f"{timeout:g}s"
            ) from None
        return final

    # ------------------------------------------------------------------
    def _deliver(self, final: bool, items: list) -> None:
        self.partial.extend(items)
        if final and not self._done.done():
            self._done.set_result(list(self.partial))

    def _fail(self, exc: Exception) -> None:
        if not self._done.done():
            self._done.set_exception(exc)


class MaskFlow(ClientFlow):
    """One open *mask* (constrained-decoding) flow.

    Where a scan flow streams DATA and collects RESULTs, a mask flow
    is strictly request/response: every OPEN_MASK or ADVANCE sent is
    answered by exactly one MASK frame carrying the new automaton
    state and the packed valid-token bitmask.  :attr:`state` and
    :attr:`mask` track the most recent reply.
    """

    def __init__(self, client: "ScanClient", flow_id: int) -> None:
        super().__init__(client, flow_id)
        #: Automaton state from the most recent MASK reply.
        self.state: int = 0
        #: Packed bitmask bytes from the most recent MASK reply
        #: (LSB-first: bit ``i`` of the row = token ``i`` valid).
        self.mask: bytes = b""
        #: The vocabulary this flow was opened for (set by
        #: :meth:`ScanClient.open_mask_flow`; needed for replay).
        self.vocab_hash: bytes | str = b""
        #: Acked ADVANCE token ids when the client journals (an id is
        #: recorded only once its MASK reply lands, so the journal
        #: never contains an op the backend may not have applied).
        self.acked: list[int] | None = [] if client.journal else None
        self._inflight_tokens: list[int] = []
        self._pending_masks: list[asyncio.Future] = []

    async def advance(
        self, token_id: int, timeout: float | None = None
    ) -> tuple[int, bytes]:
        """Feed one token id; return ``(new_state, packed_mask)``."""
        fut = asyncio.get_running_loop().create_future()
        self._pending_masks.append(fut)
        if self.acked is not None:
            self._inflight_tokens.append(token_id)
        await self.client._send(
            protocol.encode_advance(self.flow_id, token_id)
        )
        if timeout is None:
            timeout = self.client.request_timeout
        try:
            state, row = await asyncio.wait_for(
                asyncio.shield(fut), timeout=timeout
            )
        except asyncio.TimeoutError:
            raise TimeoutError(
                f"flow {self.flow_id}: no MASK reply within "
                f"{timeout:g}s"
            ) from None
        return state, row

    async def close(self, timeout: float | None = None) -> None:
        """End the mask flow (server drops the session)."""
        await self.finish(timeout=timeout)

    async def replay_onto(self, client: "ScanClient") -> "MaskFlow":
        """Re-create this flow on ``client`` by re-opening the vocab
        and replaying the acked ADVANCE history; mask tables are pure
        functions of (grammar, vocab, token history), so the replayed
        replies are bitwise what the original backend already sent."""
        if self.acked is None:
            raise ServerFault(
                self.flow_id,
                ErrorCode.FAILOVER,
                "mask flow has no journal to replay",
            )
        flow = await client.open_mask_flow(self.vocab_hash)
        for token_id in self.acked:
            await flow.advance(token_id)
        return flow

    # ------------------------------------------------------------------
    def _deliver_mask(self, state: int, row: bytes) -> None:
        self.state = state
        self.mask = row
        if self.acked is not None and self._inflight_tokens:
            self.acked.append(self._inflight_tokens.pop(0))
        if self._pending_masks:
            fut = self._pending_masks.pop(0)
            if not fut.done():
                fut.set_result((state, row))

    def _fail(self, exc: Exception) -> None:
        super()._fail(exc)
        _mark_retrieved(self._done)
        for fut in self._pending_masks:
            if not fut.done():
                fut.set_exception(exc)
        self._pending_masks.clear()


class BeamFlow(ClientFlow):
    """One open *beam* flow: a whole decode beam behind one round
    trip per step.

    Every request (:meth:`advance`, :meth:`fork`, :meth:`rollback`)
    is answered by exactly one MASKS frame carrying all lanes' states
    and masks; delta-encoded lanes are patched against the rows from
    the previous reply, so :attr:`rows` always holds every lane's
    full packed mask. A ``BAD_TOKEN`` server error fails only the
    request that caused it — the beam did not move (the engine is
    atomic) and the flow stays open.

    Beam flows are **not replayable** across backends: fork/rollback
    history plus per-lane delta chains make the wire replies depend on
    the whole session, so a failover surfaces a typed ``FAILOVER``
    error instead of silently re-deriving state.
    """

    replayable = False

    def __init__(self, client: "ScanClient", flow_id: int) -> None:
        super().__init__(client, flow_id)
        #: Per-lane automaton states from the most recent MASKS reply.
        self.states: tuple[int, ...] = ()
        #: Per-lane packed mask rows (full, after delta patching).
        self.rows: list[bytes] = []
        #: Wire accounting over this flow's MASKS replies.
        self.lanes_full = 0
        self.lanes_delta = 0
        self.payload_bytes = 0
        self._pending_masks: list[asyncio.Future] = []

    @property
    def width(self) -> int:
        return len(self.states)

    async def _request(
        self, frame_bytes: bytes, timeout: float | None
    ) -> tuple[tuple[int, ...], list[bytes]]:
        fut = asyncio.get_running_loop().create_future()
        self._pending_masks.append(fut)
        await self.client._send(frame_bytes)
        if timeout is None:
            timeout = self.client.request_timeout
        try:
            return await asyncio.wait_for(
                asyncio.shield(fut), timeout=timeout
            )
        except asyncio.TimeoutError:
            raise TimeoutError(
                f"flow {self.flow_id}: no MASKS reply within "
                f"{timeout:g}s"
            ) from None

    async def advance(
        self, token_ids, timeout: float | None = None
    ) -> tuple[tuple[int, ...], list[bytes]]:
        """Feed one token id per lane; return ``(states, rows)``."""
        return await self._request(
            protocol.encode_batch_advance(
                self.flow_id, protocol.BeamOp.ADVANCE, list(token_ids)
            ),
            timeout,
        )

    async def fork(
        self, lane: int, timeout: float | None = None
    ) -> tuple[tuple[int, ...], list[bytes]]:
        """Duplicate ``lane``; the beam grows by one lane."""
        return await self._request(
            protocol.encode_batch_advance(
                self.flow_id, protocol.BeamOp.FORK, lane
            ),
            timeout,
        )

    async def rollback(
        self, k: int = 1, timeout: float | None = None
    ) -> tuple[tuple[int, ...], list[bytes]]:
        """Undo the last ``k`` advances/forks beam-wide."""
        return await self._request(
            protocol.encode_batch_advance(
                self.flow_id, protocol.BeamOp.ROLLBACK, k
            ),
            timeout,
        )

    async def close(self, timeout: float | None = None) -> None:
        """End the beam flow (server drops the session)."""
        await self.finish(timeout=timeout)

    # ------------------------------------------------------------------
    def _deliver_masks(self, row_bytes: int, lanes: list) -> None:
        from repro.apps.structgen.beam import apply_xor_patch

        states = []
        rows = []
        for lane, (state, kind, body) in enumerate(lanes):
            if kind == 0:
                row = body
                self.lanes_full += 1
            else:
                row = apply_xor_patch(self.rows[lane], body)
                self.lanes_delta += 1
            self.payload_bytes += len(body)
            states.append(state)
            rows.append(row)
        self.states = tuple(states)
        self.rows = rows
        if self._pending_masks:
            fut = self._pending_masks.pop(0)
            if not fut.done():
                fut.set_result((self.states, list(rows)))

    def _fail_request(self, exc: Exception) -> None:
        """Fail only the oldest pending request (a BAD_TOKEN reply:
        the beam did not move, the flow stays usable)."""
        if self._pending_masks:
            fut = self._pending_masks.pop(0)
            if not fut.done():
                fut.set_exception(exc)

    def _fail(self, exc: Exception) -> None:
        super()._fail(exc)
        _mark_retrieved(self._done)
        for fut in self._pending_masks:
            if not fut.done():
                fut.set_exception(exc)
        self._pending_masks.clear()


def _mark_retrieved(fut: asyncio.Future) -> None:
    """Mask/beam callers await per-op futures, not ``_done`` — after a
    failure nobody may ever touch ``_done``, so mark its exception
    retrieved to keep 'exception was never retrieved' out of the logs
    (retrieval does not clear it; a later ``finish()`` still raises)."""
    if fut.done() and not fut.cancelled():
        with contextlib.suppress(Exception):
            fut.exception()


class ScanClient:
    """One framed-protocol connection multiplexing many flows."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 9431,
        *,
        connect_timeout: float = 5.0,
        connect_retries: int = 5,
        retry_backoff: float = 0.05,
        max_backoff: float = 2.0,
        request_timeout: float = 30.0,
        max_frame: int = DEFAULT_MAX_FRAME,
        journal: bool = False,
    ) -> None:
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.connect_retries = connect_retries
        self.retry_backoff = retry_backoff
        self.max_backoff = max_backoff
        self.request_timeout = request_timeout
        self.max_frame = max_frame
        #: When set, flows record their replayable history (scan DATA
        #: chunks, mask ADVANCE token ids) so a routing tier can replay
        #: them onto a replacement backend after a failover.
        self.journal = journal
        #: The server's advertised frame limit (from its HELLO).
        self.server_max_frame = DEFAULT_MAX_FRAME
        #: Registry refs the server advertised in its HELLO (empty for
        #: servers without a grammar registry or predating the field).
        self.server_grammars: tuple[str, ...] = ()

        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None
        self._flows: dict[int, ClientFlow] = {}
        #: Raw frame taps: flow id -> async callable. A tap receives
        #: every reply frame addressed to its flow *undecoded* (or
        #: ``None`` when the connection dies), bypassing the flow
        #: objects entirely — the hook a relay/proxy tier uses to
        #: forward beam traffic without re-encoding delta chains.
        self._raw_taps: dict = {}
        self._flow_seq = 0
        self._goodbye = asyncio.Event()
        self._conn_error: Exception | None = None
        self._write_lock = asyncio.Lock()

    # ------------------------------------------------------------------
    # connection lifecycle
    # ------------------------------------------------------------------
    async def connect(self) -> "ScanClient":
        """Dial with retry/backoff, then handshake. Raises
        :class:`ConnectFailed` once the retry budget is spent."""
        last: Exception | None = None
        backoff = self.retry_backoff
        for _attempt in range(max(1, self.connect_retries)):
            try:
                self._reader, self._writer = await asyncio.wait_for(
                    asyncio.open_connection(self.host, self.port),
                    timeout=self.connect_timeout,
                )
                await self._handshake()
                self._reader_task = asyncio.ensure_future(
                    self._read_loop()
                )
                return self
            except (OSError, asyncio.TimeoutError, ProtocolError) as exc:
                last = exc
                if self._writer is not None:
                    with contextlib.suppress(Exception):
                        self._writer.close()
                    self._reader = self._writer = None
                await asyncio.sleep(self._next_backoff(backoff))
                backoff = min(backoff * 2, self.max_backoff)
        raise ConnectFailed(
            f"could not connect to {self.host}:{self.port} after "
            f"{self.connect_retries} attempts: {last}"
        )

    def _next_backoff(self, backoff: float) -> float:
        """Cap the doubled backoff and spread it ±25 % so a fleet of
        clients retrying against a flapping backend desynchronizes
        instead of stampeding in lockstep."""
        capped = min(backoff, self.max_backoff)
        return capped * (0.75 + 0.5 * random.random())

    async def _handshake(self) -> None:
        self._writer.write(
            protocol.encode_hello(PROTOCOL_VERSION, self.max_frame)
        )
        await self._writer.drain()
        from repro.server.server import _read_frame

        frame = await asyncio.wait_for(
            _read_frame(self._reader, self.max_frame),
            timeout=self.connect_timeout,
        )
        if frame is None:
            raise ProtocolError("server closed during handshake")
        if frame.type == FrameType.ERROR:
            flow, code, message = protocol.decode_error(frame)
            raise ServerFault(flow, code, message)
        if frame.type != FrameType.HELLO:
            raise ProtocolError(f"expected HELLO, got {frame.name}")
        version, server_max = protocol.decode_hello(frame)
        if version != PROTOCOL_VERSION:
            raise ProtocolError(
                f"server speaks protocol v{version}, "
                f"client v{PROTOCOL_VERSION}",
                code=ErrorCode.VERSION_MISMATCH,
            )
        self.server_max_frame = server_max
        self.server_grammars = protocol.decode_hello_grammars(frame)

    async def close(self) -> None:
        """Polite GOODBYE (waits briefly for the server's), then close."""
        if self._writer is None:
            return
        with contextlib.suppress(Exception):
            await self._send(protocol.encode_goodbye())
            await asyncio.wait_for(self._goodbye.wait(), timeout=2.0)
        if self._reader_task is not None:
            self._reader_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._reader_task
        with contextlib.suppress(Exception):
            self._writer.close()
            await self._writer.wait_closed()
        self._writer = None
        self._fail_pending(ConnectionResetError("client closed"))

    async def __aenter__(self) -> "ScanClient":
        return await self.connect()

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        await self.close()
        return False

    @property
    def connected(self) -> bool:
        return self._writer is not None and self._conn_error is None

    # ------------------------------------------------------------------
    # flow API
    # ------------------------------------------------------------------
    async def open_flow(self) -> ClientFlow:
        """Open a fresh flow (connection-scoped id chosen here)."""
        self._flow_seq += 1
        flow = ClientFlow(self, self._flow_seq)
        self._flows[flow.flow_id] = flow
        await self._send(protocol.encode_open_flow(flow.flow_id))
        return flow

    async def open_mask_flow(
        self,
        vocab_hash: "bytes | str",
        timeout: float | None = None,
    ) -> MaskFlow:
        """Open a constrained-decoding flow for ``vocab_hash``.

        Waits for the server's initial MASK (state 0's bitmask), so a
        returned flow already has :attr:`MaskFlow.mask` populated.
        Raises :class:`~repro.server.protocol.ServerFault` with
        ``UNKNOWN_VOCAB`` when the server has no mask table for the
        vocabulary.
        """
        self._flow_seq += 1
        flow = MaskFlow(self, self._flow_seq)
        flow.vocab_hash = vocab_hash
        self._flows[flow.flow_id] = flow
        fut = asyncio.get_running_loop().create_future()
        flow._pending_masks.append(fut)
        await self._send(
            protocol.encode_open_mask(flow.flow_id, vocab_hash)
        )
        if timeout is None:
            timeout = self.request_timeout
        try:
            await asyncio.wait_for(asyncio.shield(fut), timeout=timeout)
        except asyncio.TimeoutError:
            self._flows.pop(flow.flow_id, None)
            raise TimeoutError(
                f"flow {flow.flow_id}: no initial MASK within "
                f"{timeout:g}s"
            ) from None
        return flow

    async def open_beam_flow(
        self,
        vocab_hash: "bytes | str",
        width: int,
        timeout: float | None = None,
    ) -> BeamFlow:
        """Open a beam flow of ``width`` lanes for ``vocab_hash``.

        Waits for the server's initial MASKS frame, so the returned
        flow already has every lane's state (0) and packed mask in
        :attr:`BeamFlow.states` / :attr:`BeamFlow.rows`.
        """
        self._flow_seq += 1
        flow = BeamFlow(self, self._flow_seq)
        self._flows[flow.flow_id] = flow
        fut = asyncio.get_running_loop().create_future()
        flow._pending_masks.append(fut)
        await self._send(
            protocol.encode_open_beam(
                flow.flow_id, width, vocab_hash
            )
        )
        if timeout is None:
            timeout = self.request_timeout
        try:
            await asyncio.wait_for(asyncio.shield(fut), timeout=timeout)
        except asyncio.TimeoutError:
            self._flows.pop(flow.flow_id, None)
            raise TimeoutError(
                f"flow {flow.flow_id}: no initial MASKS within "
                f"{timeout:g}s"
            ) from None
        return flow

    # ------------------------------------------------------------------
    # raw flow plumbing (for relay tiers)
    # ------------------------------------------------------------------
    def allocate_flow_id(self) -> int:
        """Reserve a fresh connection-scoped flow id without creating
        a flow object — for callers that speak raw frames."""
        self._flow_seq += 1
        return self._flow_seq

    def set_raw_tap(self, flow_id: int, handler) -> None:
        """Route reply frames for ``flow_id`` to ``handler(frame)``
        (an async callable) instead of the flow machinery; the handler
        is called with ``None`` once if the connection fails or says
        GOODBYE while the tap is installed."""
        self._raw_taps[flow_id] = handler

    def clear_raw_tap(self, flow_id: int) -> None:
        self._raw_taps.pop(flow_id, None)

    async def send_raw(self, frame_bytes: bytes) -> None:
        """Write one pre-encoded frame (raw-tap counterpart of the
        flow-level send methods)."""
        await self._send(frame_bytes)

    async def scan_stream(
        self, data: bytes, chunk_size: int = 4096
    ) -> list:
        """Convenience: one whole byte stream through one flow."""
        flow = await self.open_flow()
        for start in range(0, len(data), chunk_size):
            await flow.send(data[start : start + chunk_size])
        return await flow.finish()

    # ------------------------------------------------------------------
    async def _send(self, frame_bytes: bytes) -> None:
        if self._writer is None:
            raise ConnectionResetError("client not connected")
        if self._conn_error is not None:
            raise self._conn_error
        async with self._write_lock:
            self._writer.write(frame_bytes)
            await self._writer.drain()

    async def _read_loop(self) -> None:
        from repro.server.server import _read_frame

        try:
            while True:
                frame = await _read_frame(self._reader, self.max_frame)
                if frame is None:
                    raise ConnectionResetError(
                        "server closed the connection"
                    )
                if self._raw_taps and frame.type in (
                    FrameType.RESULT,
                    FrameType.MASK,
                    FrameType.MASKS,
                    FrameType.ERROR,
                ):
                    # Every reply frame leads with a u32 flow id.
                    tapped = int.from_bytes(frame.payload[:4], "big")
                    tap = self._raw_taps.get(tapped)
                    if tap is not None:
                        await tap(frame)
                        continue
                if frame.type == FrameType.RESULT:
                    flow_id, final, items = protocol.decode_result(frame)
                    flow = self._flows.get(flow_id)
                    if flow is not None:
                        flow._deliver(final, items)
                        if final:
                            del self._flows[flow_id]
                elif frame.type == FrameType.MASK:
                    flow_id, state, row = protocol.decode_mask(frame)
                    flow = self._flows.get(flow_id)
                    if isinstance(flow, MaskFlow):
                        flow._deliver_mask(state, row)
                elif frame.type == FrameType.MASKS:
                    flow_id, row_bytes, lanes = protocol.decode_masks(
                        frame
                    )
                    flow = self._flows.get(flow_id)
                    if isinstance(flow, BeamFlow):
                        flow._deliver_masks(row_bytes, lanes)
                elif frame.type == FrameType.ERROR:
                    flow_id, code, message = protocol.decode_error(frame)
                    fault = ServerFault(flow_id, code, message)
                    if flow_id == CONNECTION_FLOW:
                        raise fault
                    flow = self._flows.get(flow_id)
                    if (
                        isinstance(flow, BeamFlow)
                        and code == ErrorCode.BAD_TOKEN
                    ):
                        # The beam is atomic: the rejected op moved
                        # nothing server-side, so only the request
                        # fails and the flow stays open.
                        flow._fail_request(fault)
                    elif flow is not None:
                        del self._flows[flow_id]
                        flow._fail(fault)
                elif frame.type == FrameType.GOODBYE:
                    # Flows still pending after a GOODBYE can never
                    # complete: fail them rather than letting their
                    # finish() sit out its full timeout. The GOODBYE
                    # also ends the connection's useful life, so later
                    # sends fail fast instead of timing out (pools
                    # key reconnects off :attr:`connected`).
                    if self._conn_error is None:
                        self._conn_error = ConnectionResetError(
                            "server said GOODBYE"
                        )
                    self._fail_pending(
                        ConnectionResetError(
                            "server said GOODBYE with flows pending"
                        )
                    )
                    self._goodbye.set()
                    return
                else:
                    raise ProtocolError(
                        f"unexpected {frame.name} frame from server"
                    )
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._conn_error = exc
            self._fail_pending(exc)
            self._goodbye.set()

    def _fail_pending(self, exc: Exception) -> None:
        for flow in list(self._flows.values()):
            flow._fail(exc)
        self._flows.clear()
        for tap in list(self._raw_taps.values()):
            # Notify taps off-loop: _fail_pending is synchronous and
            # may run from the dying read loop itself.
            asyncio.ensure_future(_notify_tap_dead(tap))
        self._raw_taps.clear()


async def _notify_tap_dead(tap) -> None:
    with contextlib.suppress(Exception):
        await tap(None)
