"""The asyncio serving edge: framed TCP front-end for the scan engines.

This is the reproduction's answer to the paper's deployment picture
(Figs. 1, 12-14): the tagger as a *network device*. A
:class:`ScanServer` listens on TCP, speaks the
:mod:`repro.server.protocol` framing, and feeds each connection's
multiplexed flows through per-flow streaming sessions — either
in-process (``workers=0``: the connection handler drives a
:class:`~repro.core.api.StreamSession` directly) or through a shared
sharded :class:`~repro.service.ScanService` pool (``workers=N``).

Robustness model
----------------
* **Idle timeout** — a connection that sends nothing for
  ``idle_timeout`` seconds is answered with ``ERROR(IDLE_TIMEOUT)``
  and closed; per-flow state is discarded.
* **Frame-size limit** — a declared frame length above ``max_frame``
  is rejected before the body is read (``ERROR(FRAME_TOO_LARGE)``,
  close), so a hostile length prefix cannot balloon memory.
* **Backpressure, write side** — every RESULT is written under
  ``await drain()`` against a bounded transport buffer
  (``write_high_water``): a consumer that stops reading suspends the
  connection's handler, which therefore stops *reading* too, and the
  stall propagates to the producer as TCP flow control. The server
  never buffers results for a slow client beyond one transport buffer.
* **Backpressure, scan side** — with a service pool the server
  submits with ``backpressure="raise"``; :class:`QueueFull` pauses
  the connection's read loop (counted in
  ``server.backpressure.waits``) until the shard has room, instead of
  buffering chunks. A full queue is thus visible to the client as the
  socket filling up — exactly a hardware FIFO deasserting *ready*.
* **Graceful drain** — :meth:`stop` (and SIGTERM in the CLI) stops
  accepting connections, rejects *new* flows with ``ERROR(DRAINING)``,
  but lets every already-open flow stream to completion (its DATA and
  FINISH_FLOW are still honored and its final RESULT delivered), up to
  the drain timeout; then says GOODBYE and closes, discarding flows
  that never finished.
* **Hot swap** — with a grammar registry attached, ``POST
  /swap?grammar=name@version`` on the admin listener loads the new
  artifact and installs it as a fresh *generation*: new OPEN_FLOWs
  bind to it immediately, while flows already open keep streaming on
  the generation (plan, tables, worker pool) they started on — the
  same drain discipline as :meth:`stop`, applied per grammar version.
  A generation with no remaining flows is retired (its worker pool
  closed). Per-tenant traffic is accounted under
  ``tenant.<ref>.*`` counters, and optional per-ref quotas bound the
  open flows a grammar version may hold (``ERROR(OVERLOADED)``).

* **Mask flows** — constrained-decoding sessions
  (:mod:`repro.apps.structgen`) ride the same framed connections:
  OPEN_MASK binds a flow to a precomputed mask table (explicit
  ``mask_tables=`` or lazily loaded from the registry for the served
  grammar, cold-start timed), each ADVANCE is answered with the MASK
  row for the resulting state. Mask sessions always run in-process on
  the event loop — a mask query is a row copy plus a few
  context-dependent checks, far below the pool's dispatch cost.

Observability: counters/gauges/histograms land in one
:class:`~repro.service.metrics.MetricsRegistry` (shared with the
service pool when there is one), exposed as JSON via :meth:`stats`
and as Prometheus plaintext on the admin listener (``GET /metrics``,
plus ``/healthz`` and ``/stats``).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time
import urllib.parse
from typing import Any

from repro.server import protocol
from repro.server.protocol import (
    CONNECTION_FLOW,
    DEFAULT_MAX_FRAME,
    ErrorCode,
    Frame,
    FrameType,
    PROTOCOL_VERSION,
    ProtocolError,
)
from repro.service.errors import QueueFull
from repro.service.metrics import MetricsRegistry

__all__ = ["ScanServer"]

#: Mask-table cold-start histogram bounds (milliseconds): registry
#: loads are tens of ms, in-process rebuilds hundreds to thousands.
MASK_COLDSTART_BOUNDS_MS = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
    200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0,
)


async def _read_frame(
    reader: asyncio.StreamReader, max_frame: int
) -> Frame | None:
    """Read one frame; None on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(4)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection cut mid-header") from exc
    length = int.from_bytes(header, "big")
    if length > max_frame:
        raise ProtocolError(
            f"frame of {length} bytes exceeds limit {max_frame}",
            code=ErrorCode.FRAME_TOO_LARGE,
        )
    if length < 1:
        raise ProtocolError("frame with empty body")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection cut mid-frame") from exc
    return Frame(body[0], body[1:])


class _Flow:
    """Per-flow server state: the scan session (in-process mode) or
    the service flow key (pool mode), the grammar generation the flow
    is pinned to, plus timing for latency stats."""

    __slots__ = (
        "flow_id", "key", "session", "gen", "opened_at", "finishing",
        "mask", "beam", "beam_rows",
    )

    def __init__(self, flow_id: int, key: str, session, gen) -> None:
        self.flow_id = flow_id
        self.key = key
        self.session = session
        self.gen = gen
        self.opened_at = time.monotonic()
        self.finishing = False
        #: The MaskSession when this is a constrained-decoding flow.
        self.mask = None
        #: The BeamMaskSession when this is a beam flow.
        self.beam = None
        #: Per lane, the row most recently sent in a MASKS frame —
        #: the base the next frame's delta encoding patches against.
        self.beam_rows: list[bytes] = []


class _Generation:
    """One served grammar version: its spec plus either an in-process
    backend or a dedicated worker pool. Flows are pinned to the
    generation they opened under, which is what lets a hot swap leave
    in-flight flows scanning on the plan they started with."""

    __slots__ = ("gen_id", "ref", "spec", "backend", "service")

    def __init__(self, gen_id: int, ref: str, spec) -> None:
        self.gen_id = gen_id
        #: Registry ref served by this generation (``"name@version"``),
        #: or the synthetic ``"default"`` for a spec-only server.
        self.ref = ref
        self.spec = spec
        self.backend = None
        self.service = None


class _Connection:
    """One accepted connection: handshake, frame loop, flow registry."""

    def __init__(self, server: "ScanServer", reader, writer, conn_id: int):
        self.server = server
        self.reader = reader
        self.writer = writer
        self.conn_id = conn_id
        self.flows: dict[int, _Flow] = {}
        self.peer_max_frame = DEFAULT_MAX_FRAME
        self.draining = False
        self.closed = False
        self._write_lock = asyncio.Lock()

    # ------------------------------------------------------------------
    async def send(self, frame_bytes: bytes) -> None:
        """Write one encoded frame under backpressure (bounded buffer +
        drain: a slow reader suspends us here, never grows memory)."""
        if self.closed:
            return
        async with self._write_lock:
            if self.closed:
                return
            try:
                self.writer.write(frame_bytes)
                metrics = self.server.metrics
                metrics.counter("server.tx.frames").inc()
                metrics.counter("server.tx.bytes").inc(len(frame_bytes))
                await self.writer.drain()
            except (ConnectionError, RuntimeError, OSError):
                self.closed = True

    async def send_error(self, flow_id: int, code: int, message: str):
        self.server.metrics.counter("server.errors.sent").inc()
        await self.send(protocol.encode_error(flow_id, code, message))

    async def close(self) -> None:
        self.closed = True
        with contextlib.suppress(Exception):
            self.writer.close()
            await self.writer.wait_closed()

    # ------------------------------------------------------------------
    def flow_key(self, flow_id: int) -> str:
        """Service-pool flow identity: connection-scoped ids must not
        collide across connections sharing the pool."""
        return f"conn{self.conn_id}/flow{flow_id}"


class ScanServer:
    """Asyncio TCP server feeding flows through the scan engines.

    Parameters
    ----------
    spec:
        A picklable worker spec (:class:`~repro.service.RouterSpec` /
        :class:`~repro.service.TaggerSpec`); defaults to the XML-RPC
        content router. ``spec.build()`` provides in-process sessions,
        and the same spec is shipped to pool workers.
    workers:
        0 (default) scans in-process on the event loop; N >= 1 starts a
        sharded :class:`~repro.service.ScanService` with N processes.
    registry:
        A :class:`~repro.service.registry.Registry` (or store root
        path) enabling the admin hot-swap endpoint and the HELLO
        grammar advertisement.
    grammar:
        Initial registry ref (``"name@version"``) to serve; requires
        ``registry``. The spec's grammar field is replaced by the ref.
    quotas:
        Optional ``{ref: max_open_flows}`` per-tenant limits; a flow
        opened past its grammar's quota is refused with
        ``ERROR(OVERLOADED)``.
    mask_tables:
        Optional iterable of :class:`~repro.apps.structgen.MaskTable`
        served to OPEN_MASK flows, keyed by vocabulary hash. With a
        registry attached, tables not listed here are lazily loaded
        from the store for the served grammar (cold-start timed into
        ``structgen.coldstart_ms``); an unknown hash is refused with
        ``ERROR(UNKNOWN_VOCAB)``.
    """

    def __init__(
        self,
        spec: Any = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 0,
        idle_timeout: float = 30.0,
        max_frame: int = DEFAULT_MAX_FRAME,
        queue_depth: int = 64,
        admin_port: int | None = None,
        metrics: MetricsRegistry | None = None,
        write_high_water: int = 1 << 16,
        registry: Any = None,
        grammar: str | None = None,
        quotas: dict[str, int] | None = None,
        mask_tables: Any = None,
    ) -> None:
        if spec is None:
            from repro.service import RouterSpec

            spec = RouterSpec()
        self._registry = None
        if registry is not None:
            from repro.service.registry import Registry

            self._registry = (
                registry
                if isinstance(registry, Registry)
                else Registry(registry)
            )
        ref = getattr(spec, "registry_ref", None) or "default"
        if grammar is not None:
            if self._registry is None:
                raise ValueError(
                    "grammar= (a registry ref) requires registry="
                )
            artifact = self._registry.load(grammar)
            spec = self._spec_for_artifact(spec, artifact)
            ref = artifact.ref or grammar
        self.spec = spec
        self.host = host
        self.port = port
        self.idle_timeout = idle_timeout
        self.max_frame = max_frame
        self.queue_depth = queue_depth
        self.admin_port = admin_port
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.write_high_water = write_high_water
        self.workers = workers
        self.quotas = dict(quotas) if quotas else {}
        #: vocab_hash -> MaskTable handed in explicitly (served as-is,
        #: independent of the current grammar generation).
        self._mask_tables: dict[str, Any] = {}
        if isinstance(mask_tables, dict):
            mask_tables = mask_tables.values()
        for table in mask_tables or ():
            self._mask_tables[table.vocab_hash] = table
        #: (grammar ref, vocab_hash) -> MaskTable lazily loaded from
        #: the registry (cold start paid once per pair).
        self._mask_loaded: dict[tuple[str, str], Any] = {}
        #: (ref, vocab_hash) pairs that already failed a registry
        #: lookup — refused without re-probing the store every
        #: OPEN_MASK (cleared on hot swap).
        self._mask_misses: set[tuple[str, str]] = set()
        self._gen_seq = 0
        self._generations: dict[int, _Generation] = {}
        self._started_pools = False
        self._current = self._new_generation(spec, ref)

        self._server: asyncio.base_events.Server | None = None
        self._admin_server: asyncio.base_events.Server | None = None
        self._connections: dict[int, _Connection] = {}
        self._conn_seq = 0
        #: service flow key -> (connection, flow_id): flows whose
        #: FINISH_FLOW is in the pool awaiting its final results.
        self._pending: dict[str, tuple[_Connection, int]] = {}
        self._poll_task: asyncio.Task | None = None
        self._draining = False
        self._stopped = asyncio.Event()
        #: last frame arrival: drain waits for rx quiescence, so
        #: frames already on the wire when stop() is called still
        #: reach their flows before connections close.
        self._last_rx = time.monotonic()
        #: Mask/beam ops (OPEN_MASK/ADVANCE/OPEN_BEAM/BATCH_ADVANCE)
        #: received but whose reply write has not completed — counted
        #: so a graceful drain cannot cut a reply mid-op.
        self._ops_inflight = 0

    # ------------------------------------------------------------------
    # grammar generations
    # ------------------------------------------------------------------
    @property
    def service(self):
        """The current generation's worker pool (None in-process)."""
        return self._current.service

    @property
    def _backend(self):
        """The current generation's in-process backend (None w/ pool)."""
        return self._current.backend

    def _new_generation(self, spec: Any, ref: str) -> _Generation:
        self._gen_seq += 1
        gen = _Generation(self._gen_seq, ref, spec)
        if self.workers:
            from repro.service import ScanService

            gen.service = ScanService(
                spec,
                n_workers=self.workers,
                queue_depth=self.queue_depth,
                backpressure="raise",
                metrics=self.metrics,
            )
            if self._started_pools:
                gen.service.start()
        else:
            gen.backend = spec.build()
        self._generations[gen.gen_id] = gen
        return gen

    def _spec_for_artifact(self, spec: Any, artifact) -> Any:
        """The spec rebased onto a registry artifact's ref (workers
        re-load the same artifact from the same store)."""
        import dataclasses

        try:
            return dataclasses.replace(
                spec,
                grammar=None,
                registry_ref=artifact.ref,
                registry_root=str(self._registry.root),
            )
        except TypeError:
            raise ValueError(
                f"spec {type(spec).__name__} does not carry registry "
                f"references; use RouterSpec or TaggerSpec"
            ) from None

    def swap_grammar(self, ref: str) -> dict:
        """Hot-swap: serve ``ref`` for new flows, drain old ones.

        Loads the artifact from the registry (warming this process's
        caches), installs a fresh generation — with its own worker
        pool when ``workers > 0`` — and points new OPEN_FLOWs at it.
        Flows already open keep their original generation until they
        finish; a fully drained generation is then retired. Returns a
        summary dict (also the admin endpoint's response body).
        """
        if self._registry is None:
            raise ValueError(
                "hot swap needs a grammar registry (registry=...)"
            )
        artifact = self._registry.load(ref)
        pinned = artifact.ref or ref
        spec = self._spec_for_artifact(self.spec, artifact)
        previous = self._current
        # Reuse a still-live generation already serving this exact ref
        # (swap back to the old version mid-drain without doubling
        # pools).
        for gen in self._generations.values():
            if gen.ref == pinned:
                self._current = gen
                break
        else:
            self._current = self._new_generation(spec, pinned)
        self.metrics.counter("server.swaps").inc()
        self._mask_misses.clear()  # masks may exist for the new ref
        self._retire_idle()
        return {
            "grammar": pinned,
            "generation": self._current.gen_id,
            "previous": previous.ref,
            "draining": sum(
                1
                for conn in self._connections.values()
                for flow in conn.flows.values()
                if flow.gen is not self._current
            ),
        }

    def _retire_idle(self) -> None:
        """Drop generations no open flow references anymore."""
        if len(self._generations) == 1:
            return
        live = {self._current.gen_id}
        for conn in self._connections.values():
            for flow in conn.flows.values():
                live.add(flow.gen.gen_id)
        for gen_id in [g for g in self._generations if g not in live]:
            gen = self._generations.pop(gen_id)
            if gen.service is not None:
                gen.service.close(drain=False)
            gen.backend = None
            self.metrics.counter("server.swaps.retired").inc()

    def _tenant_open(self, ref: str) -> int:
        return sum(
            1
            for conn in self._connections.values()
            for flow in conn.flows.values()
            if flow.gen.ref == ref
        )

    def grammar_refs(self) -> tuple[str, ...]:
        """Refs advertised in the server HELLO: the currently served
        grammar first, then everything loadable from the registry."""
        refs = []
        if self._current.ref != "default":
            refs.append(self._current.ref)
        if self._registry is not None:
            for ref in self._registry.refs():
                if ref not in refs:
                    refs.append(ref)
        return tuple(refs[:32])

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "ScanServer":
        """Bind the data (and optional admin) listeners and, with a
        pool, spawn the workers and the result poll task."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        if self.workers:
            self._started_pools = True
            for gen in self._generations.values():
                if gen.service is not None:
                    gen.service.start()
            self._poll_task = asyncio.ensure_future(self._poll_service())
        if self.admin_port is not None:
            self._admin_server = await asyncio.start_server(
                self._handle_admin, self.host, self.admin_port
            )
        return self

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolves port 0 to the real one."""
        sockets = self._server.sockets if self._server else ()
        if not sockets:
            raise RuntimeError("server not started")
        return sockets[0].getsockname()[:2]

    @property
    def admin_address(self) -> tuple[str, int]:
        sockets = (
            self._admin_server.sockets if self._admin_server else ()
        )
        if not sockets:
            raise RuntimeError("admin listener not started")
        return sockets[0].getsockname()[:2]

    async def serve_forever(self) -> None:
        """Run until :meth:`stop` is called (from a signal handler,
        another task, or a test)."""
        await self._stopped.wait()

    async def __aenter__(self) -> "ScanServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        await self.stop(drain=exc_type is None)
        return False

    def _work_in_flight(self) -> bool:
        """Open scan flows (still streaming), pool flows awaiting
        their final RESULT, or mask/beam ops whose reply is not yet
        fully written. Idle mask/beam flows are request-response and
        have no tail to flush, so they never hold the drain open —
        but an ADVANCE/BATCH_ADVANCE already received gets its one
        reply out before GOODBYE (``_ops_inflight``)."""
        return (
            bool(self._pending)
            or self._ops_inflight > 0
            or any(
                flow.mask is None and flow.beam is None
                for conn in self._connections.values()
                for flow in conn.flows.values()
            )
        )

    async def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Graceful shutdown: stop accepting, let in-flight flows
        complete (their final RESULT frames are delivered), close
        connections.

        With ``drain=False`` (or on drain timeout) connections are cut
        without flushing.
        """
        if self._stopped.is_set():
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
        if self._admin_server is not None:
            self._admin_server.close()
        if drain:
            # Quiescence, not just emptiness: frames already in flight
            # (written but not yet read off the socket) would make an
            # instant "no open flows" check a lie.
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                await asyncio.sleep(0.005)
                if self._work_in_flight():
                    continue
                if time.monotonic() - self._last_rx >= 0.05:
                    break
        if self._poll_task is not None:
            self._poll_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._poll_task
        for conn in list(self._connections.values()):
            if drain:
                for flow in list(conn.flows.values()):
                    if not flow.finishing:
                        await conn.send_error(
                            flow.flow_id,
                            ErrorCode.DRAINING,
                            "server draining; flow discarded",
                        )
                await conn.send(protocol.encode_goodbye())
            await conn.close()
        for gen in self._generations.values():
            if gen.service is not None:
                gen.service.close(drain=drain)
        if self._server is not None:
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        self._stopped.set()

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-safe snapshot of the shared metrics registry plus
        live connection/flow gauges."""
        self.metrics.gauge("server.connections.open").set(
            len(self._connections)
        )
        self.metrics.gauge("server.flows.open").set(
            sum(len(c.flows) for c in self._connections.values())
        )
        self.metrics.gauge("server.flows.pending_results").set(
            len(self._pending)
        )
        generations = [
            {
                "generation": gen.gen_id,
                "grammar": gen.ref,
                "current": gen is self._current,
                "open_flows": self._tenant_open(gen.ref),
            }
            for gen in self._generations.values()
        ]
        tables = list(self._mask_tables.values()) + list(
            self._mask_loaded.values()
        )
        memo = {
            "hits": sum(t.lowering.memo_hits for t in tables),
            "misses": sum(t.lowering.memo_misses for t in tables),
            "capped": sum(t.lowering.memo_capped for t in tables),
        }
        self.metrics.counter("structgen.memo_hits").value = memo["hits"]
        self.metrics.counter("structgen.memo_misses").value = memo[
            "misses"
        ]
        self.metrics.counter("structgen.memo_capped").value = memo[
            "capped"
        ]
        deltified = [
            t.delta_stats() for t in tables if t.has_deltas
        ]
        self.metrics.gauge("structgen.delta_rows").set(
            sum(d["rows_deltified"] for d in deltified)
        )
        structgen = {
            "tables": [t.describe() for t in tables],
            "memo": memo,
            "sessions_open": sum(
                1
                for conn in self._connections.values()
                for flow in conn.flows.values()
                if flow.mask is not None
            ),
            "beams_open": sum(
                1
                for conn in self._connections.values()
                for flow in conn.flows.values()
                if flow.beam is not None
            ),
        }
        if self.service is not None:
            snapshot = self.service.stats()
            snapshot["generations"] = generations
            snapshot["structgen"] = structgen
            return snapshot
        # In-process mode: report every engine's capability flags
        # (pool mode reports them through the service's stats), plus
        # the wide-loop skip-efficiency counters when live.
        from repro.core.capabilities import engine_capabilities

        engine = engine_capabilities(
            getattr(self.spec, "engine", "compiled")
        )
        tagger = self._vector_tagger()
        if tagger is not None:
            engine["vector_active"] = tagger.vector_active
            engine["native_active"] = getattr(
                tagger, "native_active", False
            )
            scanned = tagger.bytes_scanned
            skipped = tagger.bytes_skipped
            self.metrics.counter("vector.bytes_scanned").value = scanned
            self.metrics.counter("vector.bytes_skipped").value = skipped
            if scanned:
                from repro.service.service import SKIP_RATIO_BOUNDS

                self.metrics.histogram(
                    "vector.skip_ratio", bounds=SKIP_RATIO_BOUNDS
                ).observe(skipped / scanned)
        snapshot = self.metrics.snapshot()
        snapshot["engine"] = engine
        snapshot["generations"] = generations
        snapshot["structgen"] = structgen
        return snapshot

    def _vector_tagger(self):
        """The in-process backend's vector tagger, if that is what the
        spec built (None on the compiled/interpreted paths)."""
        from repro.core.vectorscan import VectorTagger

        backend = self._backend
        tagger = getattr(backend, "tagger", None)
        if tagger is None:
            router = getattr(backend, "router", None)
            tagger = getattr(
                getattr(router, "tagger", None), "compiled", None
            )
        return tagger if isinstance(tagger, VectorTagger) else None

    # ------------------------------------------------------------------
    # data-plane connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        self._conn_seq += 1
        conn = _Connection(self, reader, writer, self._conn_seq)
        writer.transport.set_write_buffer_limits(
            high=self.write_high_water
        )
        self._connections[conn.conn_id] = conn
        self.metrics.counter("server.connections.opened").inc()
        try:
            if await self._handshake(conn):
                await self._frame_loop(conn)
        except (ConnectionError, OSError):
            pass
        except ProtocolError as exc:
            await conn.send_error(CONNECTION_FLOW, exc.code, str(exc))
            self.metrics.counter("server.errors.protocol").inc()
        finally:
            await self._teardown(conn)

    async def _handshake(self, conn: _Connection) -> bool:
        frame = await self._read_with_idle(conn)
        if frame is None:
            return False
        if frame.type != FrameType.HELLO:
            raise ProtocolError(
                f"expected HELLO, got {frame.name}",
                code=ErrorCode.BAD_FRAME,
            )
        version, peer_max = protocol.decode_hello(frame)
        if version != PROTOCOL_VERSION:
            await conn.send_error(
                CONNECTION_FLOW,
                ErrorCode.VERSION_MISMATCH,
                f"server speaks v{PROTOCOL_VERSION}, client sent "
                f"v{version}",
            )
            return False
        conn.peer_max_frame = peer_max
        await conn.send(
            protocol.encode_hello(
                PROTOCOL_VERSION, self.max_frame, self.grammar_refs()
            )
        )
        return True

    async def _read_with_idle(self, conn: _Connection) -> Frame | None:
        """One frame, or None on EOF; idle connections are reaped."""
        try:
            frame = await asyncio.wait_for(
                _read_frame(conn.reader, self.max_frame),
                timeout=self.idle_timeout,
            )
        except asyncio.TimeoutError:
            self.metrics.counter("server.timeouts.idle").inc()
            await conn.send_error(
                CONNECTION_FLOW,
                ErrorCode.IDLE_TIMEOUT,
                f"no frame for {self.idle_timeout:g}s",
            )
            return None
        if frame is not None:
            self._last_rx = time.monotonic()
            self.metrics.counter("server.rx.frames").inc()
            self.metrics.counter("server.rx.bytes").inc(
                len(frame.payload) + 5
            )
        return frame

    async def _frame_loop(self, conn: _Connection) -> None:
        while not conn.closed:
            frame = await self._read_with_idle(conn)
            if frame is None:
                return
            if frame.type == FrameType.GOODBYE:
                await self._client_goodbye(conn)
                return
            if frame.type == FrameType.OPEN_FLOW:
                await self._open_flow(conn, frame)
            elif frame.type == FrameType.DATA:
                await self._data(conn, frame)
            elif frame.type == FrameType.FINISH_FLOW:
                await self._finish_flow(conn, frame)
            elif frame.type == FrameType.OPEN_MASK:
                await self._open_mask(conn, frame)
            elif frame.type == FrameType.ADVANCE:
                await self._advance(conn, frame)
            elif frame.type == FrameType.OPEN_BEAM:
                await self._open_beam(conn, frame)
            elif frame.type == FrameType.BATCH_ADVANCE:
                await self._batch_advance(conn, frame)
            else:
                raise ProtocolError(
                    f"unexpected {frame.name} frame from client"
                )

    # ------------------------------------------------------------------
    async def _open_flow(self, conn: _Connection, frame: Frame) -> None:
        flow_id = protocol.decode_open_flow(frame)
        if self._draining:
            await conn.send_error(
                flow_id, ErrorCode.DRAINING, "server draining"
            )
            return
        if flow_id in conn.flows or flow_id == CONNECTION_FLOW:
            await conn.send_error(
                flow_id, ErrorCode.DUPLICATE_FLOW,
                f"flow {flow_id} already open",
            )
            return
        gen = self._current
        quota = self.quotas.get(gen.ref)
        if quota is not None and self._tenant_open(gen.ref) >= quota:
            self.metrics.counter(
                f"tenant.{gen.ref}.flows_refused"
            ).inc()
            await conn.send_error(
                flow_id, ErrorCode.OVERLOADED,
                f"grammar {gen.ref} at its quota of {quota} open flows",
            )
            return
        session = (
            gen.backend.new_session()
            if gen.backend is not None
            else None
        )
        conn.flows[flow_id] = _Flow(
            flow_id, conn.flow_key(flow_id), session, gen
        )
        self.metrics.counter("server.flows.opened").inc()
        self.metrics.counter(f"tenant.{gen.ref}.flows_opened").inc()

    async def _data(self, conn: _Connection, frame: Frame) -> None:
        flow_id, chunk = protocol.decode_data(frame)
        flow = conn.flows.get(flow_id)
        if flow is None or flow.finishing:
            await conn.send_error(
                flow_id, ErrorCode.UNKNOWN_FLOW,
                f"DATA for unopened flow {flow_id}",
            )
            return
        if flow.mask is not None or flow.beam is not None:
            del conn.flows[flow_id]
            await conn.send_error(
                flow_id, ErrorCode.BAD_FRAME,
                f"DATA on mask flow {flow_id} "
                "(use ADVANCE/BATCH_ADVANCE)",
            )
            return
        # While draining, flows opened before the drain began may
        # still stream to completion; only OPEN_FLOW is refused.
        self.metrics.counter("server.flows.bytes").inc(len(chunk))
        self.metrics.counter(f"tenant.{flow.gen.ref}.bytes").inc(
            len(chunk)
        )
        if flow.gen.service is not None:
            await self._paced(flow.gen.service.submit, flow.key, chunk)
            return
        started = time.perf_counter()
        try:
            results = flow.session.feed(chunk)
        except Exception as exc:  # scan fault: report, drop the flow
            self.metrics.counter("server.errors.scan").inc()
            del conn.flows[flow_id]
            await conn.send_error(flow_id, ErrorCode.INTERNAL, str(exc))
            return
        self.metrics.histogram("latency.scan_s").observe(
            time.perf_counter() - started
        )
        if results:
            await conn.send(
                protocol.encode_result(flow_id, False, results)
            )

    async def _finish_flow(self, conn: _Connection, frame: Frame) -> None:
        flow_id = protocol.decode_finish_flow(frame)
        flow = conn.flows.get(flow_id)
        if flow is None or flow.finishing:
            await conn.send_error(
                flow_id, ErrorCode.UNKNOWN_FLOW,
                f"FINISH_FLOW for unopened flow {flow_id}",
            )
            return
        if flow.mask is not None or flow.beam is not None:
            # Mask and beam flows have no tail: acknowledge with an
            # empty final RESULT (same close discipline as scan flows).
            del conn.flows[flow_id]
            self.metrics.counter(
                "structgen.beams_closed"
                if flow.beam is not None
                else "structgen.sessions_closed"
            ).inc()
            self.metrics.histogram("latency.flow_s").observe(
                time.monotonic() - flow.opened_at
            )
            self._retire_idle()
            await conn.send(protocol.encode_result(flow_id, True, []))
            return
        if flow.gen.service is not None:
            flow.finishing = True
            self._pending[flow.key] = (conn, flow_id)
            await self._paced(flow.gen.service.finish_flow, flow.key)
            return
        try:
            tail = flow.session.finish()
        except Exception as exc:
            self.metrics.counter("server.errors.scan").inc()
            del conn.flows[flow_id]
            await conn.send_error(flow_id, ErrorCode.INTERNAL, str(exc))
            return
        self._observe_flow_done(flow)
        del conn.flows[flow_id]
        self._retire_idle()
        await conn.send(protocol.encode_result(flow_id, True, tail))

    def _observe_flow_done(self, flow: _Flow) -> None:
        self.metrics.counter("server.flows.finished").inc()
        self.metrics.counter(
            f"tenant.{flow.gen.ref}.flows_finished"
        ).inc()
        self.metrics.histogram("latency.flow_s").observe(
            time.monotonic() - flow.opened_at
        )

    # ------------------------------------------------------------------
    # constrained-decoding (mask) flows
    # ------------------------------------------------------------------
    def _find_mask_table(self, vocab_hash: str):
        """The mask table for a vocabulary hash: explicit tables
        first, then a lazy registry load against the served grammar
        (cold start observed in ``structgen.coldstart_ms``)."""
        table = self._mask_tables.get(vocab_hash)
        if table is not None:
            return table
        ref = self._current.ref
        if self._registry is None or ref == "default":
            return None
        cache_key = (ref, vocab_hash)
        table = self._mask_loaded.get(cache_key)
        if table is not None:
            return table
        if cache_key in self._mask_misses:
            return None
        started = time.perf_counter()
        try:
            table = self._registry.load_masks(ref, vocab_hash)
        except Exception:
            self._mask_misses.add(cache_key)
            return None
        self.metrics.histogram(
            "structgen.coldstart_ms", bounds=MASK_COLDSTART_BOUNDS_MS
        ).observe((time.perf_counter() - started) * 1e3)
        self._mask_loaded[cache_key] = table
        return table

    async def _open_mask(self, conn: _Connection, frame: Frame) -> None:
        flow_id, vocab_hash = protocol.decode_open_mask(frame)
        if self._draining:
            await conn.send_error(
                flow_id, ErrorCode.DRAINING, "server draining"
            )
            return
        if flow_id in conn.flows or flow_id == CONNECTION_FLOW:
            await conn.send_error(
                flow_id, ErrorCode.DUPLICATE_FLOW,
                f"flow {flow_id} already open",
            )
            return
        table = self._find_mask_table(vocab_hash)
        if table is None:
            await conn.send_error(
                flow_id, ErrorCode.UNKNOWN_VOCAB,
                f"no mask tables for vocabulary {vocab_hash[:16]} "
                f"(grammar {self._current.ref}); run "
                "`repro structgen precompute`",
            )
            return
        from repro.apps.structgen.masks import MaskSession

        flow = _Flow(flow_id, conn.flow_key(flow_id), None, self._current)
        flow.mask = MaskSession(table, metrics=self.metrics)
        conn.flows[flow_id] = flow
        self.metrics.counter("structgen.sessions_opened").inc()
        self._ops_inflight += 1
        try:
            await conn.send(
                protocol.encode_mask(
                    flow_id, flow.mask.state, flow.mask.mask()
                )
            )
        finally:
            self._ops_inflight -= 1

    async def _advance(self, conn: _Connection, frame: Frame) -> None:
        flow_id, token_id = protocol.decode_advance(frame)
        flow = conn.flows.get(flow_id)
        if flow is None or flow.mask is None:
            await conn.send_error(
                flow_id, ErrorCode.UNKNOWN_FLOW,
                f"ADVANCE for unopened mask flow {flow_id}",
            )
            return
        from repro.apps.structgen.masks import MaskError

        started = time.perf_counter()
        self._ops_inflight += 1
        try:
            try:
                state = flow.mask.advance(token_id)
                row = flow.mask.mask()
            except MaskError as exc:
                del conn.flows[flow_id]
                await conn.send_error(
                    flow_id, ErrorCode.BAD_TOKEN, str(exc)
                )
                return
            except Exception as exc:
                self.metrics.counter("server.errors.scan").inc()
                del conn.flows[flow_id]
                await conn.send_error(
                    flow_id, ErrorCode.INTERNAL, str(exc)
                )
                return
            self.metrics.histogram("latency.mask_s").observe(
                time.perf_counter() - started
            )
            await conn.send(protocol.encode_mask(flow_id, state, row))
        finally:
            self._ops_inflight -= 1

    # ------------------------------------------------------------------
    # beam flows (batched constrained decoding)
    # ------------------------------------------------------------------
    def _encode_beam_masks(self, flow: _Flow) -> bytes:
        """One MASKS frame for the beam's current masks, each lane
        delta-encoded against the row last sent for that lane index
        (full on new/changed-width lanes or when the patch would not
        be smaller — the resync escape)."""
        from repro.apps.structgen.beam import xor_patch

        beam = flow.beam
        table = beam.table
        rb = table.row_bytes
        packed = beam.masks_packed()
        states = beam.states
        prev_rows = flow.beam_rows
        lanes = []
        next_rows = []
        delta_lanes = 0
        for lane, state in enumerate(states):
            row = packed[lane * rb : (lane + 1) * rb]
            if lane < len(prev_rows):
                patch = xor_patch(prev_rows[lane], row)
                # 3 bytes of lane overhead either way; the delta body
                # adds a u16 count, so it wins only when strictly
                # smaller than the full row.
                if len(patch) + 2 < rb:
                    lanes.append((state, 1, patch))
                    next_rows.append(row)
                    delta_lanes += 1
                    continue
            lanes.append((state, 0, row))
            next_rows.append(row)
        flow.beam_rows = next_rows
        self.metrics.counter("structgen.beam_lanes_full").inc(
            len(lanes) - delta_lanes
        )
        self.metrics.counter("structgen.beam_lanes_delta").inc(
            delta_lanes
        )
        return protocol.encode_masks(flow.flow_id, rb, lanes)

    async def _open_beam(self, conn: _Connection, frame: Frame) -> None:
        flow_id, width, vocab_hash = protocol.decode_open_beam(frame)
        if self._draining:
            await conn.send_error(
                flow_id, ErrorCode.DRAINING, "server draining"
            )
            return
        if flow_id in conn.flows or flow_id == CONNECTION_FLOW:
            await conn.send_error(
                flow_id, ErrorCode.DUPLICATE_FLOW,
                f"flow {flow_id} already open",
            )
            return
        table = self._find_mask_table(vocab_hash)
        if table is None:
            await conn.send_error(
                flow_id, ErrorCode.UNKNOWN_VOCAB,
                f"no mask tables for vocabulary {vocab_hash[:16]} "
                f"(grammar {self._current.ref}); run "
                "`repro structgen precompute`",
            )
            return
        from repro.apps.structgen.beam import BeamMaskSession

        flow = _Flow(flow_id, conn.flow_key(flow_id), None, self._current)
        flow.beam = BeamMaskSession(table, width, metrics=self.metrics)
        conn.flows[flow_id] = flow
        self.metrics.counter("structgen.beams_opened").inc()
        self._ops_inflight += 1
        try:
            await conn.send(self._encode_beam_masks(flow))
        finally:
            self._ops_inflight -= 1

    async def _batch_advance(
        self, conn: _Connection, frame: Frame
    ) -> None:
        flow_id, op, arg = protocol.decode_batch_advance(frame)
        flow = conn.flows.get(flow_id)
        if flow is None or flow.beam is None:
            await conn.send_error(
                flow_id, ErrorCode.UNKNOWN_FLOW,
                f"BATCH_ADVANCE for unopened beam flow {flow_id}",
            )
            return
        from repro.apps.structgen.masks import MaskError
        from repro.server.protocol import BeamOp

        started = time.perf_counter()
        self._ops_inflight += 1
        try:
            try:
                if op == BeamOp.ADVANCE:
                    flow.beam.advance(arg)
                elif op == BeamOp.FORK:
                    flow.beam.fork(arg)
                else:
                    flow.beam.rollback(arg)
            except MaskError as exc:
                # The beam is atomic: the failed op moved nothing, so
                # the flow stays open on its previous states. Report
                # and let the client pick another token.
                await conn.send_error(
                    flow_id, ErrorCode.BAD_TOKEN, str(exc)
                )
                return
            except Exception as exc:
                self.metrics.counter("server.errors.scan").inc()
                del conn.flows[flow_id]
                await conn.send_error(
                    flow_id, ErrorCode.INTERNAL, str(exc)
                )
                return
            reply = self._encode_beam_masks(flow)
            self.metrics.histogram("latency.mask_s").observe(
                time.perf_counter() - started
            )
            await conn.send(reply)
        finally:
            self._ops_inflight -= 1

    async def _client_goodbye(self, conn: _Connection) -> None:
        """Client is done sending: flush its pending pool flows, then
        answer GOODBYE and close."""
        deadline = time.monotonic() + self.idle_timeout
        while (
            any(c is conn for c, _f in self._pending.values())
            and time.monotonic() < deadline
        ):
            await asyncio.sleep(0.002)
        await conn.send(protocol.encode_goodbye())
        await conn.close()

    async def _teardown(self, conn: _Connection) -> None:
        self._connections.pop(conn.conn_id, None)
        self.metrics.counter("server.connections.closed").inc()
        # Forget pool flows this connection can no longer receive.
        for key in [
            k for k, (c, _f) in self._pending.items() if c is conn
        ]:
            del self._pending[key]
        conn.flows.clear()
        self._retire_idle()
        await conn.close()

    # ------------------------------------------------------------------
    # service-pool plumbing
    # ------------------------------------------------------------------
    async def _paced(self, submit, *args) -> None:
        """Run one pool submission (``submit``/``finish_flow``); a full
        shard queue pauses this connection's read loop (we simply stop
        reading) until there is room — QueueFull is propagated as
        *pacing*, not buffering."""
        while True:
            try:
                submit(*args)
                return
            except QueueFull:
                self.metrics.counter("server.backpressure.waits").inc()
                await asyncio.sleep(0.002)

    async def _poll_service(self) -> None:
        """Deliver final RESULT frames as the pools acknowledge
        FINISH_FLOWs (each pool merges per-flow results in order).
        Every live generation's pool is polled: after a hot swap,
        draining generations still owe finals to their flows."""
        while True:
            delivered = False
            for gen in list(self._generations.values()):
                if gen.service is None:
                    continue
                for key in gen.service.poll():
                    items = gen.service.pop_flow(key)
                    target = self._pending.pop(key, None)
                    if target is None:  # connection went away
                        continue
                    conn, flow_id = target
                    flow = conn.flows.pop(flow_id, None)
                    if flow is not None:
                        self._observe_flow_done(flow)
                    delivered = True
                    await conn.send(
                        protocol.encode_result(flow_id, True, items)
                    )
            if delivered:
                self._retire_idle()
            await asyncio.sleep(0.001 if self._pending else 0.02)

    # ------------------------------------------------------------------
    # admin endpoint: minimal HTTP/1.0, plaintext
    # ------------------------------------------------------------------
    def _admin_swap(self, method: str, query: str) -> tuple[str, str]:
        """``POST /swap?grammar=name@version`` — hot-swap the served
        grammar. Wrong method is 405, missing param 400, a registry or
        load failure 409 (the server keeps serving what it was)."""
        if method != "POST":
            return "405 Method Not Allowed", "swap requires POST\n"
        refs = urllib.parse.parse_qs(query).get("grammar")
        if not refs or not refs[0]:
            return (
                "400 Bad Request",
                "missing query parameter: grammar=name@version\n",
            )
        try:
            info = self.swap_grammar(refs[0])
        except Exception as exc:
            return "409 Conflict", f"swap failed: {exc}\n"
        return "200 OK", json.dumps(info, sort_keys=True) + "\n"

    async def _handle_admin(self, reader, writer) -> None:
        try:
            request = await asyncio.wait_for(
                reader.readline(), timeout=self.idle_timeout
            )
            parts = request.decode("latin-1").split()
            method = parts[0].upper() if parts else "GET"
            target = parts[1] if len(parts) >= 2 else "/"
            path, _, query = target.partition("?")
            while True:  # drain headers
                line = await asyncio.wait_for(
                    reader.readline(), timeout=self.idle_timeout
                )
                if line in (b"\r\n", b"\n", b""):
                    break
            if path == "/metrics":
                self.stats()  # refresh gauges
                status, body = "200 OK", self.metrics.render_prometheus()
            elif path == "/healthz":
                status, body = "200 OK", "ok\n"
            elif path == "/stats":
                status, body = "200 OK", json.dumps(
                    self.stats(), indent=2, sort_keys=True
                ) + "\n"
            elif path == "/swap":
                status, body = self._admin_swap(method, query)
            else:
                status, body = "404 Not Found", f"no route {path}\n"
            payload = body.encode("utf-8")
            writer.write(
                (
                    f"HTTP/1.0 {status}\r\n"
                    "Content-Type: text/plain; version=0.0.4; "
                    "charset=utf-8\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
                + payload
            )
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()
