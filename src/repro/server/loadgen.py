"""Closed-loop load generator for the scan server.

Drives a running :class:`~repro.server.server.ScanServer` the way the
paper's traffic generators drove the FPX boards: a fixed population of
concurrent connections, each streaming seeded XML-RPC flows
chunk-by-chunk and waiting for the flow's final RESULT before starting
the next one (closed loop — offered load tracks service rate, so the
measurement is throughput at saturation, not queue growth).

Optionally verifies every flow's results byte-for-byte against the
single-process :meth:`ContentBasedRouter.route` ground truth, making
``repro client-bench --verify`` the network-level differential test.
"""

from __future__ import annotations

import asyncio
import random
import time

from repro.server.client import ScanClient
from repro.service.metrics import Histogram

__all__ = ["generate_flows", "run_load", "run_mask_load"]


def generate_flows(
    flows: int, messages: int, seed: int = 2006
) -> dict[str, bytes]:
    """Seeded multi-flow XML-RPC workload (same generator the service
    benchmarks use), ``messages`` split evenly across ``flows``."""
    from repro.apps.xmlrpc import WorkloadGenerator

    generator = WorkloadGenerator(seed=seed)
    per_flow = max(1, messages // flows)
    return {
        f"flow-{index}": generator.stream(per_flow)[0]
        for index in range(flows)
    }


async def run_load(
    host: str,
    port: int,
    *,
    flows: int = 8,
    messages: int = 200,
    chunk: int = 1024,
    concurrency: int = 4,
    seed: int = 2006,
    verify: bool = True,
    request_timeout: float = 60.0,
) -> dict:
    """Run the closed loop; return a JSON-safe report.

    ``concurrency`` client connections each pull flows from one shared
    queue; a flow is sent as ``chunk``-byte DATA frames and completes
    when its final RESULT arrives (that round trip is the recorded
    latency).
    """
    streams = generate_flows(flows, messages, seed)
    expected = None
    if verify:
        from repro.apps.xmlrpc import ContentBasedRouter

        router = ContentBasedRouter()
        expected = {
            name: router.route(data) for name, data in streams.items()
        }

    work: asyncio.Queue = asyncio.Queue()
    for name, data in streams.items():
        work.put_nowait((name, data))

    latency = Histogram("flow_roundtrip_s")
    mismatches: list[str] = []
    failures: list[str] = []

    async def worker() -> None:
        client = ScanClient(
            host, port, request_timeout=request_timeout
        )
        await client.connect()
        try:
            while True:
                try:
                    name, data = work.get_nowait()
                except asyncio.QueueEmpty:
                    return
                started = time.perf_counter()
                try:
                    got = await client.scan_stream(data, chunk_size=chunk)
                except Exception as exc:
                    failures.append(f"{name}: {exc}")
                    continue
                latency.observe(time.perf_counter() - started)
                if expected is not None and got != expected[name]:
                    mismatches.append(name)
        finally:
            await client.close()

    total_bytes = sum(len(d) for d in streams.values())
    wall_started = time.perf_counter()
    await asyncio.gather(
        *(worker() for _ in range(max(1, concurrency)))
    )
    wall = time.perf_counter() - wall_started

    report = {
        "flows": flows,
        "messages": max(1, messages // flows) * flows,
        "bytes": total_bytes,
        "chunk": chunk,
        "concurrency": concurrency,
        "seconds": wall,
        "mbps": total_bytes / wall / 1e6,
        "gbps": total_bytes * 8 / wall / 1e9,
        "latency": latency.summary(),
        "failures": failures,
        "verified": (not mismatches and not failures)
        if verify
        else None,
        "mismatched_flows": mismatches,
    }
    return report


def _set_bits(row: bytes) -> list[int]:
    """Token ids whose bits are set in a packed LSB-first mask row."""
    out: list[int] = []
    for byte_index, value in enumerate(row):
        while value:
            low = value & -value
            out.append(byte_index * 8 + low.bit_length() - 1)
            value ^= low
    return out


async def run_mask_load(
    host: str,
    port: int,
    table,
    *,
    sessions: int = 4,
    steps: int = 64,
    concurrency: int = 2,
    seed: int = 2006,
    request_timeout: float = 30.0,
) -> dict:
    """Drive mask flows against a live server and cross-check every
    reply byte-for-byte against an in-process
    :class:`~repro.apps.structgen.MaskSession` on the same ``table``.

    Each session opens one mask flow, then walks ``steps`` seeded
    valid tokens: at every step the remote ``(state, row)`` from the
    MASK frame must equal the local session's state and packed row
    (including the initial state-0 mask).  Any divergence is recorded
    in ``mismatches``; ``verified`` is True only when every advance on
    every session matched.
    """
    from repro.apps.structgen import MaskSession

    latency = Histogram("mask_roundtrip_s")
    mismatches: list[str] = []
    failures: list[str] = []
    advances = 0

    work: asyncio.Queue = asyncio.Queue()
    for index in range(max(1, sessions)):
        work.put_nowait(index)

    async def drive(client: ScanClient, index: int) -> None:
        nonlocal advances
        rng = random.Random(seed + index)
        local = MaskSession(table)
        flow = await client.open_mask_flow(table.vocab_hash)
        try:
            if flow.state != local.state or flow.mask != local.mask():
                mismatches.append(f"session-{index}: initial mask")
                return
            for step in range(steps):
                valid = _set_bits(local.mask())
                if not valid:
                    local.reset()
                    # No reset frame: reopen by closing this flow and
                    # starting a fresh one mid-session.
                    await flow.close()
                    flow = await client.open_mask_flow(
                        table.vocab_hash
                    )
                    if flow.mask != local.mask():
                        mismatches.append(
                            f"session-{index}: mask after reset"
                        )
                        return
                    continue
                token_id = rng.choice(valid)
                started = time.perf_counter()
                state, row = await flow.advance(token_id)
                latency.observe(time.perf_counter() - started)
                local_state = local.advance(token_id)
                advances += 1
                if state != local_state or row != local.mask():
                    mismatches.append(
                        f"session-{index}: step {step} "
                        f"token {token_id}"
                    )
                    return
        finally:
            try:
                await flow.close()
            except Exception:
                pass

    async def worker() -> None:
        client = ScanClient(
            host, port, request_timeout=request_timeout
        )
        await client.connect()
        try:
            while True:
                try:
                    index = work.get_nowait()
                except asyncio.QueueEmpty:
                    return
                try:
                    await drive(client, index)
                except Exception as exc:
                    failures.append(f"session-{index}: {exc}")
        finally:
            await client.close()

    wall_started = time.perf_counter()
    await asyncio.gather(
        *(worker() for _ in range(max(1, concurrency)))
    )
    wall = time.perf_counter() - wall_started

    return {
        "sessions": max(1, sessions),
        "steps": steps,
        "advances": advances,
        "seconds": wall,
        "masks_per_s": advances / wall if wall > 0 else 0.0,
        "latency": latency.summary(),
        "failures": failures,
        "mismatches": mismatches,
        "verified": not mismatches and not failures,
    }
