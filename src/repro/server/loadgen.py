"""Closed-loop load generator for the scan server.

Drives a running :class:`~repro.server.server.ScanServer` the way the
paper's traffic generators drove the FPX boards: a fixed population of
concurrent connections, each streaming seeded XML-RPC flows
chunk-by-chunk and waiting for the flow's final RESULT before starting
the next one (closed loop — offered load tracks service rate, so the
measurement is throughput at saturation, not queue growth).

Optionally verifies every flow's results byte-for-byte against the
single-process :meth:`ContentBasedRouter.route` ground truth, making
``repro client-bench --verify`` the network-level differential test.
"""

from __future__ import annotations

import asyncio
import random
import time

from repro.server.client import ScanClient
from repro.service.metrics import Histogram

__all__ = [
    "generate_flows",
    "run_beam_load",
    "run_load",
    "run_mask_load",
]


def generate_flows(
    flows: int, messages: int, seed: int = 2006
) -> dict[str, bytes]:
    """Seeded multi-flow XML-RPC workload (same generator the service
    benchmarks use), ``messages`` split evenly across ``flows``."""
    from repro.apps.xmlrpc import WorkloadGenerator

    generator = WorkloadGenerator(seed=seed)
    per_flow = max(1, messages // flows)
    return {
        f"flow-{index}": generator.stream(per_flow)[0]
        for index in range(flows)
    }


async def run_load(
    host: str,
    port: int,
    *,
    flows: int = 8,
    messages: int = 200,
    chunk: int = 1024,
    concurrency: int = 4,
    seed: int = 2006,
    verify: bool = True,
    request_timeout: float = 60.0,
) -> dict:
    """Run the closed loop; return a JSON-safe report.

    ``concurrency`` client connections each pull flows from one shared
    queue; a flow is sent as ``chunk``-byte DATA frames and completes
    when its final RESULT arrives (that round trip is the recorded
    latency).
    """
    streams = generate_flows(flows, messages, seed)
    expected = None
    if verify:
        from repro.apps.xmlrpc import ContentBasedRouter

        router = ContentBasedRouter()
        expected = {
            name: router.route(data) for name, data in streams.items()
        }

    work: asyncio.Queue = asyncio.Queue()
    for name, data in streams.items():
        work.put_nowait((name, data))

    latency = Histogram("flow_roundtrip_s")
    mismatches: list[str] = []
    failures: list[str] = []

    async def worker() -> None:
        client = ScanClient(
            host, port, request_timeout=request_timeout
        )
        await client.connect()
        try:
            while True:
                try:
                    name, data = work.get_nowait()
                except asyncio.QueueEmpty:
                    return
                started = time.perf_counter()
                try:
                    got = await client.scan_stream(data, chunk_size=chunk)
                except Exception as exc:
                    failures.append(f"{name}: {exc}")
                    continue
                latency.observe(time.perf_counter() - started)
                if expected is not None and got != expected[name]:
                    mismatches.append(name)
        finally:
            await client.close()

    total_bytes = sum(len(d) for d in streams.values())
    wall_started = time.perf_counter()
    await asyncio.gather(
        *(worker() for _ in range(max(1, concurrency)))
    )
    wall = time.perf_counter() - wall_started

    report = {
        "flows": flows,
        "messages": max(1, messages // flows) * flows,
        "bytes": total_bytes,
        "chunk": chunk,
        "concurrency": concurrency,
        "seconds": wall,
        "mbps": total_bytes / wall / 1e6,
        "gbps": total_bytes * 8 / wall / 1e9,
        "latency": latency.summary(),
        "failures": failures,
        "verified": (not mismatches and not failures)
        if verify
        else None,
        "mismatched_flows": mismatches,
    }
    return report


def _set_bits(row: bytes) -> list[int]:
    """Token ids whose bits are set in a packed LSB-first mask row."""
    out: list[int] = []
    for byte_index, value in enumerate(row):
        while value:
            low = value & -value
            out.append(byte_index * 8 + low.bit_length() - 1)
            value ^= low
    return out


async def run_mask_load(
    host: str,
    port: int,
    table,
    *,
    sessions: int = 4,
    steps: int = 64,
    concurrency: int = 2,
    seed: int = 2006,
    request_timeout: float = 30.0,
    verify: bool = True,
) -> dict:
    """Drive mask flows against a live server and cross-check every
    reply byte-for-byte against an in-process
    :class:`~repro.apps.structgen.MaskSession` on the same ``table``.

    Each session opens one mask flow, then walks ``steps`` seeded
    valid tokens: at every step the remote ``(state, row)`` from the
    MASK frame must equal the local session's state and packed row
    (including the initial state-0 mask).  Any divergence is recorded
    in ``mismatches``; ``verified`` is True only when every advance on
    every session matched.  ``verify=False`` drops the mirrors and
    picks tokens straight from the remote rows — a pure-throughput
    mode for benchmarking, where driver-side mirror stepping would
    otherwise become the bottleneck (``verified`` reports ``None``).
    """
    from repro.apps.structgen import MaskSession

    latency = Histogram("mask_roundtrip_s")
    mismatches: list[str] = []
    failures: list[str] = []
    advances = 0

    work: asyncio.Queue = asyncio.Queue()
    for index in range(max(1, sessions)):
        work.put_nowait(index)

    async def drive(client: ScanClient, index: int) -> None:
        nonlocal advances
        rng = random.Random(seed + index)
        local = MaskSession(table) if verify else None
        flow = await client.open_mask_flow(table.vocab_hash)
        try:
            if local is not None and (
                flow.state != local.state or flow.mask != local.mask()
            ):
                mismatches.append(f"session-{index}: initial mask")
                return
            for step in range(steps):
                current = (
                    local.mask() if local is not None else flow.mask
                )
                valid = _set_bits(current)
                if not valid:
                    if local is not None:
                        local.reset()
                    # No reset frame: reopen by closing this flow and
                    # starting a fresh one mid-session.
                    await flow.close()
                    flow = await client.open_mask_flow(
                        table.vocab_hash
                    )
                    if local is not None and flow.mask != local.mask():
                        mismatches.append(
                            f"session-{index}: mask after reset"
                        )
                        return
                    continue
                token_id = rng.choice(valid)
                started = time.perf_counter()
                state, row = await flow.advance(token_id)
                latency.observe(time.perf_counter() - started)
                advances += 1
                if local is not None:
                    local_state = local.advance(token_id)
                    if state != local_state or row != local.mask():
                        mismatches.append(
                            f"session-{index}: step {step} "
                            f"token {token_id}"
                        )
                        return
        finally:
            try:
                await flow.close()
            except Exception:
                pass

    async def worker() -> None:
        client = ScanClient(
            host, port, request_timeout=request_timeout
        )
        await client.connect()
        try:
            while True:
                try:
                    index = work.get_nowait()
                except asyncio.QueueEmpty:
                    return
                try:
                    await drive(client, index)
                except Exception as exc:
                    failures.append(f"session-{index}: {exc}")
        finally:
            await client.close()

    wall_started = time.perf_counter()
    await asyncio.gather(
        *(worker() for _ in range(max(1, concurrency)))
    )
    wall = time.perf_counter() - wall_started

    return {
        "sessions": max(1, sessions),
        "steps": steps,
        "advances": advances,
        "seconds": wall,
        "masks_per_s": advances / wall if wall > 0 else 0.0,
        "latency": latency.summary(),
        "failures": failures,
        "mismatches": mismatches,
        "verified": (not mismatches and not failures)
        if verify
        else None,
    }


async def run_beam_load(
    host: str,
    port: int,
    table,
    *,
    beams: int = 2,
    width: int = 4,
    steps: int = 48,
    max_width: int = 12,
    concurrency: int = 2,
    seed: int = 2006,
    request_timeout: float = 30.0,
    verify: bool = True,
) -> dict:
    """Drive beam flows against a live server, with fork/rollback
    mixed into the schedule, and cross-check every MASKS reply
    byte-for-byte against ``width`` (growing/shrinking) independent
    in-process :class:`~repro.apps.structgen.MaskSession` mirrors.

    At every step the remote per-lane ``(state, row)`` pairs — after
    client-side delta patching — must equal the mirrors' states and
    packed rows exactly; the delta encoding is thus verified over the
    wire, not just in-process. The report carries the observed
    full/delta lane split and the wire payload ratio.

    ``verify=False`` drops the mirrors and steers from the remote
    rows alone (pure-throughput mode for benchmarking; ``verified``
    reports ``None``).
    """
    from repro.apps.structgen import MaskSession

    latency = Histogram("beam_roundtrip_s")
    mismatches: list[str] = []
    failures: list[str] = []
    ops_done = 0
    masks_served = 0
    lanes_full = 0
    lanes_delta = 0
    payload_bytes = 0
    full_row_bytes = 0

    work: asyncio.Queue = asyncio.Queue()
    for index in range(max(1, beams)):
        work.put_nowait(index)

    def settle(flow) -> None:
        """Fold one flow's wire accounting into the totals."""
        nonlocal lanes_full, lanes_delta, payload_bytes, full_row_bytes
        lanes_full += flow.lanes_full
        lanes_delta += flow.lanes_delta
        payload_bytes += flow.payload_bytes
        full_row_bytes += (
            flow.lanes_full + flow.lanes_delta
        ) * table.row_bytes
        flow.lanes_full = flow.lanes_delta = 0
        flow.payload_bytes = 0

    def check(flow, mirror, index: int, step, what: str) -> bool:
        want_states = tuple(m.state for m in mirror)
        if flow.states != want_states:
            mismatches.append(
                f"beam-{index}: {what} at step {step}: states "
                f"{flow.states} != {want_states}"
            )
            return False
        for lane, m in enumerate(mirror):
            if flow.rows[lane] != m.mask():
                mismatches.append(
                    f"beam-{index}: {what} at step {step}: "
                    f"lane {lane} row mismatch"
                )
                return False
        return True

    async def drive(client: ScanClient, index: int) -> None:
        nonlocal ops_done, masks_served
        nonlocal lanes_full, lanes_delta, payload_bytes, full_row_bytes
        rng = random.Random(seed + index)
        mirror = [MaskSession(table) for _ in range(width)]
        history: list[list[int]] = []
        flow = await client.open_beam_flow(table.vocab_hash, width)
        try:
            if not check(flow, mirror, index, "open", "initial MASKS"):
                return
            for step in range(steps):
                roll = rng.random()
                started = time.perf_counter()
                if roll < 0.10 and len(mirror) < max_width:
                    lane = rng.randrange(len(mirror))
                    history.append([m.state for m in mirror])
                    twin = MaskSession(table)
                    twin.state = mirror[lane].state
                    mirror.append(twin)
                    await flow.fork(lane)
                    what = f"fork({lane})"
                elif roll < 0.20 and history:
                    k = rng.randrange(
                        1, min(3, len(history)) + 1
                    )
                    for _ in range(k):
                        snapshot = history.pop()
                    del mirror[len(snapshot):]
                    while len(mirror) < len(snapshot):
                        mirror.append(MaskSession(table))
                    for m, s in zip(mirror, snapshot):
                        m.state = s
                    await flow.rollback(k)
                    what = f"rollback({k})"
                else:
                    ids = []
                    for m in mirror:
                        valid = _set_bits(m.mask())
                        if not valid:
                            ids = None
                            break
                        ids.append(rng.choice(valid))
                    if ids is None:
                        # Dead end: no beam-wide reset frame, so
                        # reopen (same discipline as mask flows).
                        await flow.close()
                        settle(flow)
                        mirror = [
                            MaskSession(table) for _ in range(width)
                        ]
                        history.clear()
                        flow = await client.open_beam_flow(
                            table.vocab_hash, width
                        )
                        if not check(
                            flow, mirror, index, step, "reopen"
                        ):
                            return
                        continue
                    history.append([m.state for m in mirror])
                    await flow.advance(ids)
                    for m, t in zip(mirror, ids):
                        m.advance(t)
                    what = "advance"
                latency.observe(time.perf_counter() - started)
                ops_done += 1
                masks_served += len(mirror)
                if not check(flow, mirror, index, step, what):
                    return
        finally:
            try:
                await flow.close()
            except Exception:
                pass
            settle(flow)

    async def drive_fast(client: ScanClient, index: int) -> None:
        """verify=False: steer from the remote rows, mirror nothing."""
        nonlocal ops_done, masks_served
        rng = random.Random(seed + index)
        depth = 0  # undoable ops since (re)open, for rollback bounds
        flow = await client.open_beam_flow(table.vocab_hash, width)
        try:
            for _step in range(steps):
                roll = rng.random()
                started = time.perf_counter()
                if roll < 0.10 and flow.width < max_width:
                    await flow.fork(rng.randrange(flow.width))
                    depth += 1
                elif roll < 0.20 and depth:
                    k = rng.randrange(1, min(3, depth) + 1)
                    await flow.rollback(k)
                    depth -= k
                else:
                    ids = []
                    for row in flow.rows:
                        valid = _set_bits(row)
                        if not valid:
                            ids = None
                            break
                        ids.append(rng.choice(valid))
                    if ids is None:
                        await flow.close()
                        settle(flow)
                        depth = 0
                        flow = await client.open_beam_flow(
                            table.vocab_hash, width
                        )
                        continue
                    await flow.advance(ids)
                    depth += 1
                latency.observe(time.perf_counter() - started)
                ops_done += 1
                masks_served += flow.width
        finally:
            try:
                await flow.close()
            except Exception:
                pass
            settle(flow)

    async def worker() -> None:
        client = ScanClient(
            host, port, request_timeout=request_timeout
        )
        await client.connect()
        try:
            while True:
                try:
                    index = work.get_nowait()
                except asyncio.QueueEmpty:
                    return
                try:
                    if verify:
                        await drive(client, index)
                    else:
                        await drive_fast(client, index)
                except Exception as exc:
                    failures.append(f"beam-{index}: {exc}")
        finally:
            await client.close()

    wall_started = time.perf_counter()
    await asyncio.gather(
        *(worker() for _ in range(max(1, concurrency)))
    )
    wall = time.perf_counter() - wall_started

    return {
        "beams": max(1, beams),
        "width": width,
        "steps": steps,
        "ops": ops_done,
        "masks": masks_served,
        "seconds": wall,
        "masks_per_s": masks_served / wall if wall > 0 else 0.0,
        "latency": latency.summary(),
        "lanes_full": lanes_full,
        "lanes_delta": lanes_delta,
        "wire_payload_bytes": payload_bytes,
        "wire_full_bytes": full_row_bytes,
        "wire_delta_ratio": (
            payload_bytes / full_row_bytes if full_row_bytes else 0.0
        ),
        "failures": failures,
        "mismatches": mismatches,
        "verified": (not mismatches and not failures)
        if verify
        else None,
    }
