"""Cluster tier: a consistent-hash proxy over N scan-server backends.

The paper's device scales by replicating the tagger across ports of
one reconfigurable fabric; the software reproduction scales the same
way one tier up — :class:`ScanProxy` speaks the framed wire protocol
(:mod:`repro.server.protocol`) on its front and fans flows out across
a fleet of :class:`~repro.server.server.ScanServer` backends.

Routing
-------
Every flow (scan, mask, or beam) is pinned to a backend chosen by
consistent hashing: the flow's key ``(connection, flow id)`` lands on
a :class:`HashRing` of virtual nodes (``ring_replicas`` per backend,
blake2b-placed), and the lookup walks the ring to the first *healthy*
backend. Adding or removing one backend therefore only remaps the
flows that hashed to it — the rest of the fleet keeps its affinity.

Failover contract
-----------------
Backends are dialed through pooled, *journaling*
:class:`~repro.server.client.ScanClient` connections. When a backend
dies mid-flow (connection cut, or a DRAINING goodbye):

* **scan flows** re-replay their journaled DATA history onto the next
  ring backend — scanning is deterministic in the bytes fed, and the
  proxy holds partial results back until FINISH, so the client sees
  byte-identical results, just later;
* **mask flows** re-open the vocabulary and replay only the *acked*
  ADVANCE ids (an id is journaled when its MASK reply lands), then
  re-issue the in-flight op — mask tables are pure functions of
  (grammar, vocab, history), so replies are bitwise stable;
* **beam flows** carry fork/rollback history and per-lane delta
  chains the proxy deliberately relays *undecoded* (frames are
  forwarded with only the flow id rewritten), so they cannot be
  replayed: the client gets a typed ``ERROR(FAILOVER)`` and must
  reopen.

Health & admin
--------------
A probe task polls each backend (admin ``/healthz`` when an admin
port is configured, a bare TCP dial otherwise) every
``health_interval`` seconds; failures eject the backend from routing
and drain its connection pool (which fails the pinned flows over),
recoveries readmit it. The proxy's own admin endpoint aggregates the
fleet: ``/healthz`` is ok while any backend is, ``/stats`` merges
backend registries under per-backend keys, and ``/metrics`` renders
one exposition with every backend's samples labeled
``backend="host:port"``.
"""

from __future__ import annotations

import asyncio
import bisect
import contextlib
import hashlib
import json
import time

from repro.errors import ReproError
from repro.server import protocol
from repro.server.client import ConnectFailed, ScanClient
from repro.server.protocol import (
    CONNECTION_FLOW,
    DEFAULT_MAX_FRAME,
    ErrorCode,
    Frame,
    FrameType,
    PROTOCOL_VERSION,
    ProtocolError,
    ServerFault,
)
from repro.service.metrics import MetricsRegistry, merge_expositions

__all__ = [
    "BackendSpec",
    "HashRing",
    "NoHealthyBackend",
    "ScanProxy",
    "parse_backend",
]

#: Failures that mean "the backend is gone", not "the request is bad".
#: asyncio.TimeoutError is TimeoutError on 3.11+, listed for clarity.
_BACKEND_FAULTS = (
    ConnectionError,
    OSError,
    TimeoutError,
    asyncio.TimeoutError,
    ConnectFailed,
)

#: ERROR codes that signal backend lifecycle, not client mistakes —
#: these trigger failover (or a typed FAILOVER for beam flows).
_LIFECYCLE_CODES = (ErrorCode.DRAINING, ErrorCode.IDLE_TIMEOUT)


class NoHealthyBackend(ReproError):
    """Every candidate backend is ejected or unreachable."""


class BackendSpec:
    """One backend address: data port plus optional admin port."""

    __slots__ = ("host", "port", "admin_port")

    def __init__(
        self, host: str, port: int, admin_port: int | None = None
    ) -> None:
        self.host = host
        self.port = int(port)
        self.admin_port = None if admin_port is None else int(admin_port)

    @property
    def name(self) -> str:
        return f"{self.host}:{self.port}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BackendSpec({self.name}, admin={self.admin_port})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, BackendSpec):
            return NotImplemented
        return (self.host, self.port, self.admin_port) == (
            other.host,
            other.port,
            other.admin_port,
        )

    def __hash__(self) -> int:
        return hash((self.host, self.port, self.admin_port))


def parse_backend(spec) -> BackendSpec:
    """``"host:port"``, ``"host:port:admin_port"``, a 2/3-tuple, or
    an existing :class:`BackendSpec`."""
    if isinstance(spec, BackendSpec):
        return spec
    if isinstance(spec, str):
        parts = spec.rsplit(":", 2)
        if len(parts) == 3 and parts[1].isdigit() and parts[2].isdigit():
            return BackendSpec(parts[0], int(parts[1]), int(parts[2]))
        host, _, port = spec.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"backend spec {spec!r} is not host:port[:admin_port]"
            )
        return BackendSpec(host, int(port))
    if isinstance(spec, (tuple, list)) and len(spec) in (2, 3):
        return BackendSpec(*spec)
    raise ValueError(f"unsupported backend spec {spec!r}")


# ----------------------------------------------------------------------
# consistent-hash ring
# ----------------------------------------------------------------------
def _ring_hash(data: str) -> int:
    return int.from_bytes(
        hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest(),
        "big",
    )


class HashRing:
    """Consistent hashing with virtual nodes.

    Each member is placed at ``replicas`` pseudo-random points on a
    64-bit ring; :meth:`preference` walks clockwise from a key's hash
    and yields members in first-encounter order, so a caller can skip
    unhealthy members and still get stable, minimal re-mapping."""

    def __init__(self, replicas: int = 64) -> None:
        self.replicas = replicas
        self._points: list[int] = []
        self._owners: dict[int, str] = {}
        self._members: set[str] = set()

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, name: str) -> bool:
        return name in self._members

    @property
    def members(self) -> tuple[str, ...]:
        return tuple(sorted(self._members))

    def add(self, name: str) -> None:
        if name in self._members:
            return
        self._members.add(name)
        for i in range(self.replicas):
            point = _ring_hash(f"{name}#{i}")
            # blake2b collisions across 64 bits are effectively
            # impossible; first owner keeps a contested point.
            if point not in self._owners:
                self._owners[point] = name
                bisect.insort(self._points, point)

    def remove(self, name: str) -> None:
        if name not in self._members:
            return
        self._members.discard(name)
        stale = [p for p, n in self._owners.items() if n == name]
        for point in stale:
            del self._owners[point]
        stale_set = set(stale)
        self._points = [p for p in self._points if p not in stale_set]

    def preference(self, key: str) -> list[str]:
        """Every member, ordered by ring walk from ``key``'s hash."""
        if not self._points:
            return []
        start = bisect.bisect(self._points, _ring_hash(key))
        seen: list[str] = []
        seen_set: set[str] = set()
        count = len(self._points)
        for i in range(count):
            owner = self._owners[self._points[(start + i) % count]]
            if owner not in seen_set:
                seen_set.add(owner)
                seen.append(owner)
                if len(seen) == len(self._members):
                    break
        return seen

    def lookup(self, key: str) -> str | None:
        order = self.preference(key)
        return order[0] if order else None


# ----------------------------------------------------------------------
# backend connection pooling
# ----------------------------------------------------------------------
class _Backend:
    """Live state for one backend: health plus a small pool of
    journaling client connections, shared by the flows pinned here."""

    def __init__(self, spec: BackendSpec, proxy: "ScanProxy") -> None:
        self.spec = spec
        self.proxy = proxy
        self.healthy = True
        self.last_error: str | None = None
        self.ejected_at: float | None = None
        self._pool: list[ScanClient | None] = [None] * proxy.pool_size
        self._next = 0
        self._lock = asyncio.Lock()

    @property
    def name(self) -> str:
        return self.spec.name

    async def acquire(self) -> ScanClient:
        """A connected pooled client (round-robin), dialing if the
        slot is empty or its connection has died."""
        async with self._lock:
            slot = self._next % len(self._pool)
            self._next += 1
            client = self._pool[slot]
            if client is not None and client.connected:
                return client
            client = ScanClient(
                self.spec.host,
                self.spec.port,
                journal=True,
                connect_timeout=self.proxy.probe_timeout,
                connect_retries=2,
                retry_backoff=0.05,
                request_timeout=self.proxy.request_timeout,
                max_frame=self.proxy.max_frame,
            )
            await client.connect()
            self._pool[slot] = client
            return client

    async def close_pool(self) -> None:
        clients, self._pool = self._pool, [None] * len(self._pool)
        for client in clients:
            if client is not None:
                with contextlib.suppress(Exception):
                    await client.close()

    def describe(self) -> dict:
        return {
            "host": self.spec.host,
            "port": self.spec.port,
            "admin_port": self.spec.admin_port,
            "healthy": self.healthy,
            "last_error": self.last_error,
            "pooled": sum(
                1
                for c in self._pool
                if c is not None and c.connected
            ),
        }


# ----------------------------------------------------------------------
# per-connection / per-flow proxy state
# ----------------------------------------------------------------------
_SCAN, _MASK, _BEAM = "scan", "mask", "beam"


class _ProxyFlow:
    __slots__ = (
        "flow_id", "kind", "key", "backend", "remote",
        "raw_client", "raw_fid", "queue", "task", "busy",
    )

    def __init__(self, flow_id: int, kind: str, key: str) -> None:
        self.flow_id = flow_id
        self.kind = kind
        self.key = key
        self.backend: _Backend | None = None
        self.remote = None              # lib flow (scan/mask)
        self.raw_client: ScanClient | None = None  # beam relay
        self.raw_fid = 0
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=64)
        self.task: asyncio.Task | None = None
        self.busy = False


class _ClientConn:
    """The proxy's view of one downstream client connection."""

    def __init__(self, proxy, reader, writer, conn_id: int) -> None:
        self.proxy = proxy
        self.reader = reader
        self.writer = writer
        self.conn_id = conn_id
        self.flows: dict[int, _ProxyFlow] = {}
        self.peer_max_frame = DEFAULT_MAX_FRAME
        self.closed = False
        self._write_lock = asyncio.Lock()

    async def send(self, frame_bytes: bytes) -> None:
        if self.closed:
            return
        async with self._write_lock:
            if self.closed:
                return
            self.writer.write(frame_bytes)
            self.proxy.metrics.counter("proxy.tx.frames").inc()
            self.proxy.metrics.counter("proxy.tx.bytes").inc(
                len(frame_bytes)
            )
            await self.writer.drain()

    async def send_error(
        self, flow_id: int, code: int, message: str
    ) -> None:
        await self.send(protocol.encode_error(flow_id, code, message))

    async def close(self) -> None:
        self.closed = True
        with contextlib.suppress(Exception):
            self.writer.close()
            await self.writer.wait_closed()


def _rewrite_flow_id(frame: Frame, flow_id: int) -> bytes:
    """Re-emit a frame with its leading u32 flow id replaced — the
    whole translation a beam relay needs, leaving delta chains and
    pickles untouched."""
    return protocol.encode_frame(
        frame.type, flow_id.to_bytes(4, "big") + frame.payload[4:]
    )


async def _http_get(
    host: str, port: int, path: str, timeout: float = 2.0
) -> tuple[int, str]:
    """Minimal HTTP/1.0 GET against an admin endpoint."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        writer.write(
            f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode(
                "latin-1"
            )
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(1 << 22), timeout)
    finally:
        with contextlib.suppress(Exception):
            writer.close()
            await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].split()
    status = int(status_line[1]) if len(status_line) >= 2 else 0
    return status, body.decode("utf-8", "replace")


# ----------------------------------------------------------------------
# the proxy
# ----------------------------------------------------------------------
class ScanProxy:
    """Front one framed-protocol listener with N scan-server backends.

    .. code-block:: python

        proxy = ScanProxy(["127.0.0.1:9431", "127.0.0.1:9432"], port=0)
        await proxy.start()
        ...
        await proxy.stop()

    Clients connect to :attr:`address` exactly as they would to a
    single :class:`~repro.server.server.ScanServer`; the proxy owns
    affinity, health, and failover (see the module docstring for the
    contract per flow kind).
    """

    def __init__(
        self,
        backends,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        admin_port: int | None = None,
        ring_replicas: int = 64,
        pool_size: int = 2,
        health_interval: float = 0.5,
        probe_timeout: float = 1.0,
        request_timeout: float = 30.0,
        idle_timeout: float = 30.0,
        max_frame: int = DEFAULT_MAX_FRAME,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        specs = [parse_backend(b) for b in backends]
        if not specs:
            raise ValueError("a proxy needs at least one backend")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate backends in {names}")
        self.host = host
        self.port = port
        self.admin_port = admin_port
        self.pool_size = max(1, pool_size)
        self.health_interval = health_interval
        self.probe_timeout = probe_timeout
        self.request_timeout = request_timeout
        self.idle_timeout = idle_timeout
        self.max_frame = max_frame
        self.metrics = metrics or MetricsRegistry()

        self.ring = HashRing(replicas=ring_replicas)
        self.backends: dict[str, _Backend] = {}
        for spec in specs:
            self.backends[spec.name] = _Backend(spec, self)
            self.ring.add(spec.name)

        self._grammars: tuple[str, ...] = ()
        self._server: asyncio.AbstractServer | None = None
        self._admin_server: asyncio.AbstractServer | None = None
        self._health_task: asyncio.Task | None = None
        self._connections: dict[int, _ClientConn] = {}
        self._conn_seq = 0
        self._draining = False
        self._stopped = asyncio.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "ScanProxy":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        if self.admin_port is not None:
            self._admin_server = await asyncio.start_server(
                self._handle_admin, self.host, self.admin_port
            )
        await self._collect_grammars()
        self._health_task = asyncio.ensure_future(self._health_loop())
        self._refresh_gauges()
        return self

    @property
    def address(self) -> tuple[str, int]:
        assert self._server is not None, "proxy not started"
        return self._server.sockets[0].getsockname()[:2]

    @property
    def admin_address(self) -> tuple[str, int]:
        assert self._admin_server is not None, "no admin listener"
        return self._admin_server.sockets[0].getsockname()[:2]

    async def serve_forever(self) -> None:
        await self._stopped.wait()

    async def __aenter__(self) -> "ScanProxy":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        await self.stop(drain=exc_type is None)
        return False

    async def stop(
        self, drain: bool = True, timeout: float = 30.0
    ) -> None:
        if self._stopped.is_set():
            return
        self._draining = True
        for server in (self._server, self._admin_server):
            if server is not None:
                server.close()
        if drain:
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                pending = any(
                    flow.busy or flow.queue.qsize()
                    for conn in self._connections.values()
                    for flow in conn.flows.values()
                )
                if not pending:
                    break
                await asyncio.sleep(0.01)
        if self._health_task is not None:
            self._health_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._health_task
        for conn in list(self._connections.values()):
            if drain:
                with contextlib.suppress(Exception):
                    await conn.send(protocol.encode_goodbye())
            await self._teardown(conn)
        for backend in self.backends.values():
            await backend.close_pool()
        if self._server is not None:
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        self._stopped.set()

    async def _collect_grammars(self) -> None:
        """Union of the grammar refs the backends advertise, for this
        proxy's own HELLO. Unreachable backends are skipped (the
        health loop will sort them out)."""
        seen: list[str] = []
        for backend in self.backends.values():
            try:
                client = await backend.acquire()
            except _BACKEND_FAULTS:
                continue
            for ref in client.server_grammars:
                if ref not in seen:
                    seen.append(ref)
        self._grammars = tuple(seen)

    # ------------------------------------------------------------------
    # routing & failover
    # ------------------------------------------------------------------
    def _pick_backend(
        self, key: str, exclude: set | frozenset = frozenset()
    ) -> _Backend | None:
        for name in self.ring.preference(key):
            backend = self.backends[name]
            if name not in exclude and backend.healthy:
                return backend
        return None

    def _note_backend_error(self, backend: _Backend, exc) -> None:
        backend.last_error = str(exc) or exc.__class__.__name__
        if backend.healthy:
            backend.healthy = False
            backend.ejected_at = time.monotonic()
            self.metrics.counter("proxy.backend.ejected").inc()
            self._refresh_gauges()
            # Drain the pool so every flow pinned here fails over
            # promptly instead of waiting out request timeouts.
            asyncio.ensure_future(backend.close_pool())

    def _readmit(self, backend: _Backend) -> None:
        if not backend.healthy:
            backend.healthy = True
            backend.last_error = None
            backend.ejected_at = None
            self.metrics.counter("proxy.backend.readmitted").inc()
            self._refresh_gauges()

    def _refresh_gauges(self) -> None:
        self.metrics.gauge("proxy.backends.total").set(
            len(self.backends)
        )
        self.metrics.gauge("proxy.backends.healthy").set(
            sum(1 for b in self.backends.values() if b.healthy)
        )

    async def _open_on_ring(self, flow: _ProxyFlow, opener):
        """Open a remote flow on the first working ring candidate.

        ``opener(client)`` performs the protocol open; backend faults
        rotate to the next candidate, request-level ServerFaults
        (UNKNOWN_VOCAB, ...) propagate to the caller."""
        excluded: set[str] = set()
        last: Exception | None = None
        while True:
            backend = self._pick_backend(flow.key, excluded)
            if backend is None:
                raise NoHealthyBackend(
                    f"no healthy backend for flow {flow.key}"
                    + (f" (last: {last})" if last else "")
                )
            try:
                client = await backend.acquire()
                remote = await opener(client)
            except _BACKEND_FAULTS as exc:
                last = exc
                excluded.add(backend.name)
                self._note_backend_error(backend, exc)
                continue
            flow.backend = backend
            return client, remote

    async def _replayable_op(self, flow: _ProxyFlow, op):
        """Run ``op(remote)``; on backend loss, replay the journaled
        flow onto the next ring candidate and re-run the op there.

        The journal holds only *acked* history, so an op the dead
        backend may or may not have applied is simply re-issued — the
        engines are deterministic, replies are bitwise stable."""
        excluded: set[str] = set()
        while True:
            try:
                return await op(flow.remote)
            except _BACKEND_FAULTS as exc:
                fault: Exception = exc
            except ServerFault as exc:
                if exc.code not in _LIFECYCLE_CODES:
                    raise
                fault = exc
            await self._failover(flow, fault, excluded)

    async def _failover(
        self, flow: _ProxyFlow, fault: Exception, excluded: set
    ) -> None:
        """Move ``flow`` onto a new backend (mutates flow in place);
        raises ``ServerFault(FAILOVER)`` when nothing is left."""
        assert flow.backend is not None
        excluded.add(flow.backend.name)
        self._note_backend_error(flow.backend, fault)
        _silence_flow(flow.remote)
        while True:
            backend = self._pick_backend(flow.key, excluded)
            if backend is None:
                self.metrics.counter("proxy.failover.exhausted").inc()
                raise ServerFault(
                    flow.flow_id,
                    ErrorCode.FAILOVER,
                    "no healthy backend left to replay flow onto "
                    f"(last: {fault})",
                )
            try:
                client = await backend.acquire()
                flow.remote = await flow.remote.replay_onto(client)
            except _BACKEND_FAULTS as exc:
                excluded.add(backend.name)
                self._note_backend_error(backend, exc)
                continue
            flow.backend = backend
            self.metrics.counter("proxy.failovers").inc()
            return

    # ------------------------------------------------------------------
    # health probing
    # ------------------------------------------------------------------
    async def _health_loop(self) -> None:
        while True:
            for backend in self.backends.values():
                try:
                    ok = await self._probe(backend)
                except asyncio.CancelledError:
                    raise
                except Exception:
                    ok = False
                if ok:
                    self._readmit(backend)
                elif backend.healthy:
                    self._note_backend_error(
                        backend, "health probe failed"
                    )
            self._refresh_gauges()
            await asyncio.sleep(self.health_interval)

    async def _probe(self, backend: _Backend) -> bool:
        spec = backend.spec
        if spec.admin_port is not None:
            try:
                status, _body = await _http_get(
                    spec.host,
                    spec.admin_port,
                    "/healthz",
                    timeout=self.probe_timeout,
                )
                return status == 200
            except _BACKEND_FAULTS:
                return False
        try:
            _, writer = await asyncio.wait_for(
                asyncio.open_connection(spec.host, spec.port),
                self.probe_timeout,
            )
        except _BACKEND_FAULTS:
            return False
        with contextlib.suppress(Exception):
            writer.close()
            await writer.wait_closed()
        return True

    # ------------------------------------------------------------------
    # client-facing data plane
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        from repro.server.server import _read_frame  # shared framing

        self._conn_seq += 1
        conn = _ClientConn(self, reader, writer, self._conn_seq)
        self._connections[conn.conn_id] = conn
        self.metrics.counter("proxy.connections.opened").inc()
        try:
            if await self._handshake(conn, _read_frame):
                await self._frame_loop(conn, _read_frame)
        except (ConnectionError, OSError):
            pass
        except ProtocolError as exc:
            with contextlib.suppress(Exception):
                await conn.send_error(
                    CONNECTION_FLOW, exc.code, str(exc)
                )
            self.metrics.counter("proxy.errors.protocol").inc()
        finally:
            await self._teardown(conn)

    async def _read_with_idle(self, conn: _ClientConn, read_frame):
        try:
            frame = await asyncio.wait_for(
                read_frame(conn.reader, self.max_frame),
                timeout=self.idle_timeout,
            )
        except asyncio.TimeoutError:
            self.metrics.counter("proxy.timeouts.idle").inc()
            await conn.send_error(
                CONNECTION_FLOW,
                ErrorCode.IDLE_TIMEOUT,
                f"no frame for {self.idle_timeout:g}s",
            )
            return None
        if frame is not None:
            self.metrics.counter("proxy.rx.frames").inc()
            self.metrics.counter("proxy.rx.bytes").inc(
                len(frame.payload) + 5
            )
        return frame

    async def _handshake(self, conn, read_frame) -> bool:
        frame = await self._read_with_idle(conn, read_frame)
        if frame is None:
            return False
        if frame.type != FrameType.HELLO:
            raise ProtocolError(
                f"expected HELLO, got {frame.name}",
                code=ErrorCode.BAD_FRAME,
            )
        version, peer_max = protocol.decode_hello(frame)
        if version != PROTOCOL_VERSION:
            await conn.send_error(
                CONNECTION_FLOW,
                ErrorCode.VERSION_MISMATCH,
                f"proxy speaks v{PROTOCOL_VERSION}, client sent "
                f"v{version}",
            )
            return False
        conn.peer_max_frame = peer_max
        await conn.send(
            protocol.encode_hello(
                PROTOCOL_VERSION, self.max_frame, self._grammars
            )
        )
        return True

    async def _frame_loop(self, conn: _ClientConn, read_frame) -> None:
        opens = {
            FrameType.OPEN_FLOW: _SCAN,
            FrameType.OPEN_MASK: _MASK,
            FrameType.OPEN_BEAM: _BEAM,
        }
        ops = {
            FrameType.DATA,
            FrameType.ADVANCE,
            FrameType.BATCH_ADVANCE,
            FrameType.FINISH_FLOW,
        }
        while True:
            frame = await self._read_with_idle(conn, read_frame)
            if frame is None:
                return
            if frame.type in opens:
                flow_id = int.from_bytes(frame.payload[:4], "big")
                if flow_id in conn.flows:
                    # Mirror the single-server contract: the colliding
                    # open kills the existing flow.
                    self._flow_closed(conn, conn.flows[flow_id])
                    await conn.send_error(
                        flow_id,
                        ErrorCode.DUPLICATE_FLOW,
                        f"flow {flow_id} already open",
                    )
                    continue
                if self._draining:
                    await conn.send_error(
                        flow_id,
                        ErrorCode.DRAINING,
                        "proxy draining; flow refused",
                    )
                    continue
                kind = opens[frame.type]
                flow = _ProxyFlow(
                    flow_id, kind, f"{conn.conn_id}:{flow_id}"
                )
                conn.flows[flow_id] = flow
                self.metrics.counter(f"proxy.flows.{kind}").inc()
                flow.task = asyncio.ensure_future(
                    self._flow_worker(conn, flow)
                )
                await flow.queue.put(("open", frame))
            elif frame.type in ops:
                flow_id = int.from_bytes(frame.payload[:4], "big")
                flow = conn.flows.get(flow_id)
                if flow is None:
                    await conn.send_error(
                        flow_id,
                        ErrorCode.UNKNOWN_FLOW,
                        f"no open flow {flow_id}",
                    )
                    continue
                await flow.queue.put(("op", frame))
            elif frame.type == FrameType.GOODBYE:
                await self._client_goodbye(conn)
                return
            else:
                raise ProtocolError(
                    f"unexpected {frame.name} frame",
                    code=ErrorCode.BAD_FRAME,
                )

    async def _client_goodbye(self, conn: _ClientConn) -> None:
        deadline = time.monotonic() + self.idle_timeout
        while time.monotonic() < deadline and any(
            flow.busy or flow.queue.qsize()
            for flow in conn.flows.values()
        ):
            await asyncio.sleep(0.005)
        await conn.send(protocol.encode_goodbye())

    async def _teardown(self, conn: _ClientConn) -> None:
        self._connections.pop(conn.conn_id, None)
        current = asyncio.current_task()
        for flow in list(conn.flows.values()):
            if flow.task is not None and flow.task is not current:
                flow.task.cancel()
            self._abandon_remote(flow)
        conn.flows.clear()
        await conn.close()

    def _flow_closed(self, conn: _ClientConn, flow: _ProxyFlow) -> None:
        """Forget a flow; cancel its worker unless we *are* it."""
        conn.flows.pop(flow.flow_id, None)
        if flow.task is not None and flow.task is not asyncio.current_task():
            flow.task.cancel()

    def _abandon_remote(self, flow: _ProxyFlow) -> None:
        """Release backend-side state for a flow dying un-finished."""
        if flow.raw_client is not None:
            flow.raw_client.clear_raw_tap(flow.raw_fid)
            asyncio.ensure_future(
                _finish_raw(flow.raw_client, flow.raw_fid)
            )
            flow.raw_client = None
        elif flow.remote is not None:
            _silence_flow(flow.remote)
            asyncio.ensure_future(_finish_remote(flow.remote))
            flow.remote = None

    # ------------------------------------------------------------------
    # flow workers
    # ------------------------------------------------------------------
    async def _flow_worker(
        self, conn: _ClientConn, flow: _ProxyFlow
    ) -> None:
        try:
            while True:
                kind, frame = await flow.queue.get()
                flow.busy = True
                try:
                    done = await self._execute(conn, flow, kind, frame)
                finally:
                    flow.busy = False
                if done:
                    return
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError):
            # The *client* connection is gone; teardown cleans up.
            conn.flows.pop(flow.flow_id, None)
        except ServerFault as fault:
            with contextlib.suppress(Exception):
                await conn.send_error(
                    flow.flow_id, fault.code, fault.detail
                )
            self._flow_closed(conn, flow)
            self._abandon_remote(flow)
        except NoHealthyBackend as exc:
            with contextlib.suppress(Exception):
                await conn.send_error(
                    flow.flow_id, ErrorCode.FAILOVER, str(exc)
                )
            self._flow_closed(conn, flow)
        except Exception as exc:  # noqa: BLE001 - fault barrier
            with contextlib.suppress(Exception):
                await conn.send_error(
                    flow.flow_id,
                    ErrorCode.INTERNAL,
                    f"proxy error: {exc}",
                )
            self._flow_closed(conn, flow)
            self._abandon_remote(flow)

    async def _execute(
        self, conn: _ClientConn, flow: _ProxyFlow, kind: str, frame
    ) -> bool:
        """One queued op; True ends the flow (and its worker)."""
        if flow.kind == _BEAM:
            return await self._execute_beam(conn, flow, kind, frame)
        if kind == "open":
            if flow.kind == _SCAN:
                _, flow.remote = await self._open_on_ring(
                    flow, lambda c: c.open_flow()
                )
            else:
                _fid, vocab_hash = protocol.decode_open_mask(frame)
                _, flow.remote = await self._open_on_ring(
                    flow, lambda c: c.open_mask_flow(vocab_hash)
                )
                await conn.send(
                    protocol.encode_mask(
                        flow.flow_id,
                        flow.remote.state,
                        flow.remote.mask,
                    )
                )
            return False
        if frame.type == FrameType.DATA and flow.kind == _SCAN:
            _fid, chunk = protocol.decode_data(frame)
            await self._replayable_op(
                flow, lambda r: r.send(chunk)
            )
            return False
        if frame.type == FrameType.ADVANCE and flow.kind == _MASK:
            _fid, token_id = protocol.decode_advance(frame)
            started = time.perf_counter()
            state, row = await self._replayable_op(
                flow, lambda r: r.advance(token_id)
            )
            self.metrics.histogram("proxy.latency.op_s").observe(
                time.perf_counter() - started
            )
            await conn.send(
                protocol.encode_mask(flow.flow_id, state, row)
            )
            return False
        if frame.type == FrameType.FINISH_FLOW:
            if flow.kind == _SCAN:
                items = await self._replayable_op(
                    flow, lambda r: r.finish()
                )
                flow.remote = None
                await self._send_result_batches(conn, flow, items)
            else:
                await self._replayable_op(flow, lambda r: r.finish())
                flow.remote = None
                await conn.send(
                    protocol.encode_result(flow.flow_id, True, [])
                )
            conn.flows.pop(flow.flow_id, None)
            return True
        raise ServerFault(
            flow.flow_id,
            ErrorCode.BAD_FRAME,
            f"{frame.name} not valid on a {flow.kind} flow",
        )

    async def _send_result_batches(
        self, conn: _ClientConn, flow: _ProxyFlow, items: list
    ) -> None:
        """The buffered scan results, re-framed within the client's
        advertised frame limit (buffering until FINISH is what makes
        scan failover invisible — no partial RESULT can have escaped
        for a prefix the replacement backend re-scans)."""
        batch = max(1, len(items))
        start = 0
        while True:
            chunk = items[start : start + batch]
            final = start + batch >= len(items)
            encoded = protocol.encode_result(
                flow.flow_id, final, chunk
            )
            if len(encoded) > conn.peer_max_frame and batch > 1:
                batch = max(1, batch // 2)
                continue
            await conn.send(encoded)
            if final:
                return
            start += batch

    # -- beam relay ----------------------------------------------------
    async def _execute_beam(
        self, conn: _ClientConn, flow: _ProxyFlow, kind: str, frame
    ) -> bool:
        """Beam frames relay *undecoded* (flow id rewritten) to one
        backend for the flow's whole life; replies flow back through a
        raw tap the same way. On backend loss the client receives the
        typed FAILOVER error — see the module docstring for why beam
        flows are non-replayable by contract."""
        if kind == "open":
            backend = self._pick_backend(flow.key)
            last: Exception | None = None
            excluded: set[str] = set()
            while backend is not None:
                try:
                    client = await backend.acquire()
                    break
                except _BACKEND_FAULTS as exc:
                    last = exc
                    excluded.add(backend.name)
                    self._note_backend_error(backend, exc)
                    backend = self._pick_backend(flow.key, excluded)
            else:
                client = None
            if backend is None or client is None:
                raise NoHealthyBackend(
                    f"no healthy backend for flow {flow.key}"
                    + (f" (last: {last})" if last else "")
                )
            flow.backend = backend
            flow.raw_client = client
            flow.raw_fid = client.allocate_flow_id()
            client.set_raw_tap(
                flow.raw_fid, self._make_beam_tap(conn, flow)
            )
        if flow.raw_client is None:
            # Tap already tore the flow down (backend died between
            # queued ops); everything left is a no-op.
            return True
        try:
            await flow.raw_client.send_raw(
                _rewrite_flow_id(frame, flow.raw_fid)
            )
        except _BACKEND_FAULTS as exc:
            if flow.backend is not None:
                self._note_backend_error(flow.backend, exc)
            await self._beam_failover(conn, flow, str(exc))
            return True
        # Replies (MASKS / final RESULT / ERROR) arrive via the tap;
        # FINISH ends the *worker* once the final RESULT has passed
        # through, which the tap signals by clearing raw_client.
        return False

    def _make_beam_tap(self, conn: _ClientConn, flow: _ProxyFlow):
        async def tap(frame) -> None:
            if frame is None:  # backend connection died
                await self._beam_failover(
                    conn, flow, "backend connection lost"
                )
                return
            if frame.type == FrameType.ERROR:
                code = int.from_bytes(frame.payload[4:6], "big")
                if code in _LIFECYCLE_CODES:
                    await self._beam_failover(
                        conn,
                        flow,
                        frame.payload[6:].decode("utf-8", "replace"),
                    )
                    return
                await conn.send(
                    _rewrite_flow_id(frame, flow.flow_id)
                )
                if code != ErrorCode.BAD_TOKEN:
                    # Flow-fatal (UNKNOWN_VOCAB, ...): mirror the
                    # backend dropping it.
                    self._detach_beam(flow)
                    self._flow_closed(conn, flow)
                return
            await conn.send(_rewrite_flow_id(frame, flow.flow_id))
            if frame.type == FrameType.RESULT and frame.payload[4]:
                # Final RESULT: the close handshake completed.
                self._detach_beam(flow)
                self._flow_closed(conn, flow)

        return tap

    def _detach_beam(self, flow: _ProxyFlow) -> None:
        if flow.raw_client is not None:
            flow.raw_client.clear_raw_tap(flow.raw_fid)
            flow.raw_client = None

    async def _beam_failover(
        self, conn: _ClientConn, flow: _ProxyFlow, detail: str
    ) -> None:
        self._detach_beam(flow)
        if flow.flow_id not in conn.flows:
            return
        self.metrics.counter("proxy.failover.beam_refused").inc()
        backend = flow.backend.name if flow.backend else "?"
        with contextlib.suppress(Exception):
            await conn.send_error(
                flow.flow_id,
                ErrorCode.FAILOVER,
                f"backend {backend} lost ({detail}); beam flows are "
                "not replayable — reopen to continue",
            )
        self._flow_closed(conn, flow)

    # ------------------------------------------------------------------
    # stats & admin aggregation
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        self._refresh_gauges()
        snapshot = self.metrics.snapshot()
        snapshot["backends"] = {
            name: backend.describe()
            for name, backend in sorted(self.backends.items())
        }
        snapshot["ring"] = {
            "members": list(self.ring.members),
            "replicas": self.ring.replicas,
        }
        snapshot["connections_open"] = len(self._connections)
        snapshot["flows_open"] = sum(
            len(c.flows) for c in self._connections.values()
        )
        snapshot["grammars"] = list(self._grammars)
        return snapshot

    async def _fetch_backend_admin(
        self, backend: _Backend, path: str
    ) -> tuple[int, str] | None:
        spec = backend.spec
        if spec.admin_port is None:
            return None
        try:
            return await _http_get(
                spec.host,
                spec.admin_port,
                path,
                timeout=self.probe_timeout,
            )
        except _BACKEND_FAULTS:
            return None

    async def _aggregate_stats(self) -> str:
        merged = self.stats()
        fetched = await asyncio.gather(
            *(
                self._fetch_backend_admin(b, "/stats")
                for b in self.backends.values()
            )
        )
        for backend, reply in zip(self.backends.values(), fetched):
            entry = merged["backends"][backend.name]
            if reply is None:
                entry["stats"] = None
            else:
                status, body = reply
                try:
                    entry["stats"] = (
                        json.loads(body) if status == 200 else None
                    )
                except ValueError:
                    entry["stats"] = None
        return json.dumps(merged, indent=2, sort_keys=True) + "\n"

    async def _aggregate_metrics(self) -> str:
        self.stats()  # refresh own gauges
        parts: list[tuple[dict, str]] = [
            ({}, self.metrics.render_prometheus())
        ]
        fetched = await asyncio.gather(
            *(
                self._fetch_backend_admin(b, "/metrics")
                for b in self.backends.values()
            )
        )
        for backend, reply in zip(self.backends.values(), fetched):
            if reply is not None and reply[0] == 200:
                parts.append(({"backend": backend.name}, reply[1]))
        return merge_expositions(parts)

    async def _handle_admin(self, reader, writer) -> None:
        try:
            request = await asyncio.wait_for(
                reader.readline(), timeout=self.idle_timeout
            )
            parts = request.decode("latin-1").split()
            target = parts[1] if len(parts) >= 2 else "/"
            path, _, _query = target.partition("?")
            while True:  # drain headers
                line = await asyncio.wait_for(
                    reader.readline(), timeout=self.idle_timeout
                )
                if line in (b"\r\n", b"\n", b""):
                    break
            if path == "/metrics":
                status, body = "200 OK", await self._aggregate_metrics()
            elif path == "/healthz":
                if any(b.healthy for b in self.backends.values()):
                    status, body = "200 OK", "ok\n"
                else:
                    status, body = (
                        "503 Service Unavailable",
                        "no healthy backends\n",
                    )
            elif path == "/stats":
                status, body = "200 OK", await self._aggregate_stats()
            else:
                status, body = "404 Not Found", f"no route {path}\n"
            payload = body.encode("utf-8")
            writer.write(
                (
                    f"HTTP/1.0 {status}\r\n"
                    "Content-Type: text/plain; version=0.0.4; "
                    "charset=utf-8\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
                + payload
            )
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()


# ----------------------------------------------------------------------
# abandoned-flow hygiene
# ----------------------------------------------------------------------
def _silence_flow(remote) -> None:
    """Consume a dead lib flow's pending exception so the event loop
    doesn't log 'exception was never retrieved' for futures nobody
    will await after a failover or teardown."""
    fut = getattr(remote, "_done", None)
    if fut is not None and fut.done() and not fut.cancelled():
        with contextlib.suppress(Exception):
            fut.exception()
    for fut in getattr(remote, "_pending_masks", ()):
        if fut.done() and not fut.cancelled():
            with contextlib.suppress(Exception):
                fut.exception()


async def _finish_remote(remote) -> None:
    with contextlib.suppress(Exception):
        await remote.finish(timeout=2.0)
    _silence_flow(remote)


async def _finish_raw(client: ScanClient, raw_fid: int) -> None:
    with contextlib.suppress(Exception):
        await client.send_raw(protocol.encode_finish_flow(raw_fid))
