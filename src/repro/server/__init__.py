"""The network serving edge: framed TCP front-end for the scan engines.

The paper's tagger is a line-rate *network device* — bytes arrive on a
wire, are tagged in-stream, and leave with routing decisions attached
(Figs. 1, 12-14). This package is that wire interface for the software
reproduction:

* :mod:`repro.server.protocol` — the versioned, length-prefixed frame
  format (HELLO / OPEN_FLOW / DATA / FINISH_FLOW / RESULT / ERROR /
  GOODBYE) and its sans-IO encoder/decoder;
* :mod:`repro.server.server` — :class:`ScanServer`: the asyncio TCP
  server multiplexing per-connection flows into streaming scan
  sessions, in-process or through a sharded
  :class:`~repro.service.ScanService` pool, with idle timeouts,
  frame-size limits, read-pausing backpressure, graceful drain, and a
  plaintext admin/metrics endpoint;
* :mod:`repro.server.client` — :class:`ScanClient`: the asyncio
  client library (connect/retry/timeout, flow multiplexing, mask
  flows for constrained decoding);
* :mod:`repro.server.cluster` — :class:`ScanProxy`: the cluster
  tier — a consistent-hash proxy pinning flows to N backends with
  health probes, journal-replay failover for scan/mask flows, and an
  aggregated admin endpoint;
* :mod:`repro.server.loadgen` — the closed-loop load generators
  behind ``repro client-bench``, ``repro structgen bench --remote``,
  and ``repro cluster-bench``.
"""

from repro.server.client import (
    BeamFlow,
    ClientFlow,
    ConnectFailed,
    MaskFlow,
    ScanClient,
)
from repro.server.cluster import (
    BackendSpec,
    HashRing,
    NoHealthyBackend,
    ScanProxy,
    parse_backend,
)
from repro.server.loadgen import (
    generate_flows,
    run_beam_load,
    run_load,
    run_mask_load,
)
from repro.server.protocol import (
    CONNECTION_FLOW,
    DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
    ErrorCode,
    Frame,
    FrameDecoder,
    FrameType,
    ProtocolError,
    ServerFault,
)
from repro.server.server import ScanServer

__all__ = [
    "BackendSpec",
    "BeamFlow",
    "CONNECTION_FLOW",
    "ClientFlow",
    "ConnectFailed",
    "DEFAULT_MAX_FRAME",
    "ErrorCode",
    "Frame",
    "FrameDecoder",
    "FrameType",
    "HashRing",
    "MaskFlow",
    "NoHealthyBackend",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ScanClient",
    "ScanProxy",
    "ScanServer",
    "ServerFault",
    "generate_flows",
    "parse_backend",
    "run_beam_load",
    "run_load",
    "run_mask_load",
]
