"""The network serving edge: framed TCP front-end for the scan engines.

The paper's tagger is a line-rate *network device* — bytes arrive on a
wire, are tagged in-stream, and leave with routing decisions attached
(Figs. 1, 12-14). This package is that wire interface for the software
reproduction:

* :mod:`repro.server.protocol` — the versioned, length-prefixed frame
  format (HELLO / OPEN_FLOW / DATA / FINISH_FLOW / RESULT / ERROR /
  GOODBYE) and its sans-IO encoder/decoder;
* :mod:`repro.server.server` — :class:`ScanServer`: the asyncio TCP
  server multiplexing per-connection flows into streaming scan
  sessions, in-process or through a sharded
  :class:`~repro.service.ScanService` pool, with idle timeouts,
  frame-size limits, read-pausing backpressure, graceful drain, and a
  plaintext admin/metrics endpoint;
* :mod:`repro.server.client` — :class:`ScanClient`: the asyncio
  client library (connect/retry/timeout, flow multiplexing, mask
  flows for constrained decoding);
* :mod:`repro.server.loadgen` — the closed-loop load generators
  behind ``repro client-bench`` and ``repro structgen bench
  --remote``.
"""

from repro.server.client import (
    ClientFlow,
    ConnectFailed,
    MaskFlow,
    ScanClient,
)
from repro.server.loadgen import generate_flows, run_load, run_mask_load
from repro.server.protocol import (
    CONNECTION_FLOW,
    DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
    ErrorCode,
    Frame,
    FrameDecoder,
    FrameType,
    ProtocolError,
    ServerFault,
)
from repro.server.server import ScanServer

__all__ = [
    "CONNECTION_FLOW",
    "ClientFlow",
    "ConnectFailed",
    "DEFAULT_MAX_FRAME",
    "ErrorCode",
    "Frame",
    "FrameDecoder",
    "FrameType",
    "MaskFlow",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ScanClient",
    "ScanServer",
    "ServerFault",
    "generate_flows",
    "run_load",
    "run_mask_load",
]
