"""The framed wire protocol spoken between scan clients and servers.

The paper's device sits on a wire: bytes arrive framed (AAL5/IP in the
FPX papers), are tagged in-stream, and leave with routing decisions
attached. This module is that wire for the software reproduction — a
minimal, versioned, length-prefixed framing over TCP, sans-IO so the
same encoder/decoder drives the asyncio server, the client library,
and plain in-memory tests.

Framing
-------
Every frame is ``u32 length (big endian) | u8 type | payload`` where
``length`` counts the type byte plus the payload. A receiver enforces
its ``max_frame`` limit *before* reading the body, so an oversized
length can never make it buffer unboundedly.

Frame types::

    HELLO        !HI   version, max_frame     (both directions, first)
    OPEN_FLOW    !I    flow_id
    DATA         !I    flow_id + raw bytes
    FINISH_FLOW  !I    flow_id
    RESULT       !IB   flow_id, final + payload (pickled result list)
    ERROR        !IH   flow_id, code + utf-8 message
    GOODBYE      (empty)
    OPEN_MASK    !I    flow_id + 32-byte vocab sha256 (raw digest)
    ADVANCE      !II   flow_id, token_id
    MASK         !II   flow_id, state + packed validity row
    OPEN_BEAM    !IH   flow_id, width + 32-byte vocab sha256
    BATCH_ADVANCE !IB  flow_id, op + op payload (see below)
    MASKS        !IHH  flow_id, n_lanes, row_bytes + per-lane records

The mask and beam frames carry constrained-decoding flows (additive
in protocol version 1 — a server that predates them answers
``BAD_FRAME``): the client opens a mask flow against a vocabulary it
has precomputed masks for (``repro structgen precompute``), the
server replies with a MASK frame for the start state, and each
ADVANCE (one emitted token id) is answered by the MASK for the
resulting state. Mask rows are raw packed bits (token id ``i`` is bit
``i``, LSB-first per byte) — no pickle in either direction on mask
flows.

Beam flows batch a whole decode beam into one round trip per step:
OPEN_BEAM binds ``width`` lanes (all at the start state) to a mask
table and is answered by a MASKS frame; each BATCH_ADVANCE mutates
every lane at once and is answered by one MASKS frame. The op byte
selects the mutation::

    op 0  ADVANCE   width × u32 token ids (one per lane, in order)
    op 1  FORK      !I lane — duplicate that lane (width grows by 1)
    op 2  ROLLBACK  !I k — undo the last k advances/forks beam-wide

A MASKS frame carries one record per lane: ``!IB state, kind`` then a
kind-dependent body. Kind 0 (full) is the ``row_bytes`` packed row;
kind 1 (delta) is ``!H count`` then ``count`` 3-byte XOR patch
entries (``!HB`` byte offset, XOR value) against the *previous MASKS
row the server sent for that lane index* — new lanes (opens, forks,
width growth on rollback) are always sent full, and the server falls
back to full whenever the patch would not be smaller (the resync
escape, also the recovery path for any client that discards rows).

Connections are multiplexed: ``flow_id`` is a connection-scoped u32
chosen by the client; ``CONNECTION_FLOW`` (``0xFFFFFFFF``) in an ERROR
frame addresses the connection itself rather than one flow.

The handshake is one HELLO each way. The client speaks first and
announces its protocol version and the largest frame *it* will accept;
the server answers with its own, and each side must keep every frame
it sends within the other's advertised limit. A version mismatch is
answered with ``ERROR(VERSION_MISMATCH)`` and a close.

RESULT payloads are pickled lists of whatever the scan backend emits
(``RoutedMessage`` for router specs, ``DetectEvent`` for tagger
specs). Only the *client* unpickles, and only bytes sent by the server
it chose to connect to — the server never unpickles client data, so an
untrusted client cannot inject objects.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass
from typing import Any

from repro.errors import ReproError

__all__ = [
    "BeamOp",
    "CONNECTION_FLOW",
    "DEFAULT_MAX_FRAME",
    "ErrorCode",
    "MAX_BEAM_WIDTH",
    "Frame",
    "FrameDecoder",
    "FrameType",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServerFault",
    "decode_advance",
    "decode_batch_advance",
    "decode_data",
    "decode_error",
    "decode_finish_flow",
    "decode_hello",
    "decode_hello_grammars",
    "decode_mask",
    "decode_masks",
    "decode_open_beam",
    "decode_open_flow",
    "decode_open_mask",
    "decode_result",
    "encode_advance",
    "encode_batch_advance",
    "encode_data",
    "encode_error",
    "encode_finish_flow",
    "encode_frame",
    "encode_goodbye",
    "encode_hello",
    "encode_mask",
    "encode_masks",
    "encode_open_beam",
    "encode_open_flow",
    "encode_open_mask",
    "encode_result",
]

#: Protocol version spoken by this build (bumped on incompatible change).
PROTOCOL_VERSION = 1

#: Default largest accepted frame (type byte + payload), 1 MiB.
DEFAULT_MAX_FRAME = 1 << 20

#: ``flow_id`` addressing the connection itself in ERROR frames.
CONNECTION_FLOW = 0xFFFFFFFF

_HEADER = struct.Struct("!I")
_HELLO = struct.Struct("!HI")
_FLOW = struct.Struct("!I")
_RESULT_HEAD = struct.Struct("!IB")
_ERROR_HEAD = struct.Struct("!IH")
_MASK_HEAD = struct.Struct("!II")
_BEAM_OPEN_HEAD = struct.Struct("!IH")
_BATCH_HEAD = struct.Struct("!IB")
_MASKS_HEAD = struct.Struct("!IHH")
_LANE_HEAD = struct.Struct("!IB")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")

#: Raw sha256 digest length carried by OPEN_MASK.
_VOCAB_HASH_LEN = 32

#: Largest beam width OPEN_BEAM accepts (the field is u16; the cap
#: keeps a hostile open from allocating thousands of lanes).
MAX_BEAM_WIDTH = 1024


class FrameType:
    """Wire frame type codes (u8)."""

    HELLO = 0x01
    OPEN_FLOW = 0x02
    DATA = 0x03
    FINISH_FLOW = 0x04
    RESULT = 0x05
    ERROR = 0x06
    GOODBYE = 0x07
    OPEN_MASK = 0x08
    ADVANCE = 0x09
    MASK = 0x0A
    OPEN_BEAM = 0x0B
    BATCH_ADVANCE = 0x0C
    MASKS = 0x0D

    NAMES = {
        HELLO: "HELLO",
        OPEN_FLOW: "OPEN_FLOW",
        DATA: "DATA",
        FINISH_FLOW: "FINISH_FLOW",
        RESULT: "RESULT",
        ERROR: "ERROR",
        GOODBYE: "GOODBYE",
        OPEN_MASK: "OPEN_MASK",
        ADVANCE: "ADVANCE",
        MASK: "MASK",
        OPEN_BEAM: "OPEN_BEAM",
        BATCH_ADVANCE: "BATCH_ADVANCE",
        MASKS: "MASKS",
    }


class BeamOp:
    """Op codes carried by BATCH_ADVANCE frames."""

    ADVANCE = 0
    FORK = 1
    ROLLBACK = 2

    NAMES = {ADVANCE: "ADVANCE", FORK: "FORK", ROLLBACK: "ROLLBACK"}


class ErrorCode:
    """Codes carried by ERROR frames."""

    BAD_FRAME = 1
    VERSION_MISMATCH = 2
    FRAME_TOO_LARGE = 3
    UNKNOWN_FLOW = 4
    DUPLICATE_FLOW = 5
    IDLE_TIMEOUT = 6
    DRAINING = 7
    OVERLOADED = 8
    INTERNAL = 9
    UNKNOWN_VOCAB = 10
    BAD_TOKEN = 11
    #: A routing tier lost the flow's backend and could not (or by
    #: contract will not) replay it onto another — beam flows, or
    #: replay exhaustion. The flow is dead; reopen to continue.
    FAILOVER = 12

    NAMES = {
        BAD_FRAME: "BAD_FRAME",
        VERSION_MISMATCH: "VERSION_MISMATCH",
        FRAME_TOO_LARGE: "FRAME_TOO_LARGE",
        UNKNOWN_FLOW: "UNKNOWN_FLOW",
        DUPLICATE_FLOW: "DUPLICATE_FLOW",
        IDLE_TIMEOUT: "IDLE_TIMEOUT",
        DRAINING: "DRAINING",
        OVERLOADED: "OVERLOADED",
        INTERNAL: "INTERNAL",
        UNKNOWN_VOCAB: "UNKNOWN_VOCAB",
        BAD_TOKEN: "BAD_TOKEN",
        FAILOVER: "FAILOVER",
    }


class ProtocolError(ReproError):
    """A malformed, oversized, or out-of-contract frame."""

    def __init__(self, message: str, code: int = ErrorCode.BAD_FRAME) -> None:
        super().__init__(message)
        self.code = code


class ServerFault(ReproError):
    """The peer reported an ERROR frame."""

    def __init__(self, flow: int, code: int, message: str) -> None:
        name = ErrorCode.NAMES.get(code, str(code))
        super().__init__(f"server error [{name}] on flow {flow}: {message}")
        self.flow = flow
        self.code = code
        self.detail = message


@dataclass(frozen=True)
class Frame:
    """One decoded wire frame: type code plus raw payload."""

    type: int
    payload: bytes

    @property
    def name(self) -> str:
        return FrameType.NAMES.get(self.type, f"0x{self.type:02x}")


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def encode_frame(ftype: int, payload: bytes = b"") -> bytes:
    """``length | type | payload`` — the one frame shape on the wire."""
    return _HEADER.pack(1 + len(payload)) + bytes([ftype]) + payload


def encode_hello(
    version: int = PROTOCOL_VERSION,
    max_frame: int = DEFAULT_MAX_FRAME,
    grammars: tuple[str, ...] | list[str] = (),
) -> bytes:
    """``grammars`` (optional, server→client) advertises the registry
    refs this server can serve, appended after the fixed fields as a
    comma-separated UTF-8 list. Decoding uses ``unpack_from``, so
    peers that predate the field simply ignore the extra bytes — the
    handshake stays version-compatible both ways."""
    payload = _HELLO.pack(version, max_frame)
    if grammars:
        payload += ",".join(grammars).encode("utf-8")
    return encode_frame(FrameType.HELLO, payload)


def encode_open_flow(flow_id: int) -> bytes:
    return encode_frame(FrameType.OPEN_FLOW, _FLOW.pack(flow_id))


def encode_data(flow_id: int, chunk: bytes) -> bytes:
    return encode_frame(FrameType.DATA, _FLOW.pack(flow_id) + chunk)


def encode_finish_flow(flow_id: int) -> bytes:
    return encode_frame(FrameType.FINISH_FLOW, _FLOW.pack(flow_id))


def encode_result(flow_id: int, final: bool, items: list) -> bytes:
    blob = pickle.dumps(items, protocol=pickle.HIGHEST_PROTOCOL)
    return encode_frame(
        FrameType.RESULT, _RESULT_HEAD.pack(flow_id, 1 if final else 0) + blob
    )


def encode_error(flow_id: int, code: int, message: str) -> bytes:
    return encode_frame(
        FrameType.ERROR,
        _ERROR_HEAD.pack(flow_id, code) + message.encode("utf-8"),
    )


def encode_goodbye() -> bytes:
    return encode_frame(FrameType.GOODBYE)


def encode_open_mask(flow_id: int, vocab_hash: str | bytes) -> bytes:
    """Open a constrained-decoding flow against a vocabulary,
    identified by its sha256 (hex string or 32 raw bytes)."""
    digest = (
        bytes.fromhex(vocab_hash)
        if isinstance(vocab_hash, str)
        else bytes(vocab_hash)
    )
    if len(digest) != _VOCAB_HASH_LEN:
        raise ProtocolError(
            f"vocab hash must be {_VOCAB_HASH_LEN} bytes, "
            f"got {len(digest)}"
        )
    return encode_frame(FrameType.OPEN_MASK, _FLOW.pack(flow_id) + digest)


def encode_advance(flow_id: int, token_id: int) -> bytes:
    return encode_frame(
        FrameType.ADVANCE, _MASK_HEAD.pack(flow_id, token_id)
    )


def encode_mask(flow_id: int, state: int, row: bytes) -> bytes:
    """A packed validity row for ``state`` (bit *i*, LSB-first per
    byte, is token *i*). Raw bits — no pickle on mask flows."""
    return encode_frame(
        FrameType.MASK, _MASK_HEAD.pack(flow_id, state) + row
    )


def encode_open_beam(
    flow_id: int, width: int, vocab_hash: str | bytes
) -> bytes:
    """Open a beam flow of ``width`` lanes against a vocabulary."""
    if not 1 <= width <= MAX_BEAM_WIDTH:
        raise ProtocolError(
            f"beam width {width} outside [1, {MAX_BEAM_WIDTH}]"
        )
    digest = (
        bytes.fromhex(vocab_hash)
        if isinstance(vocab_hash, str)
        else bytes(vocab_hash)
    )
    if len(digest) != _VOCAB_HASH_LEN:
        raise ProtocolError(
            f"vocab hash must be {_VOCAB_HASH_LEN} bytes, "
            f"got {len(digest)}"
        )
    return encode_frame(
        FrameType.OPEN_BEAM,
        _BEAM_OPEN_HEAD.pack(flow_id, width) + digest,
    )


def encode_batch_advance(flow_id: int, op: int, arg) -> bytes:
    """One beam mutation: op ``BeamOp.ADVANCE`` takes the per-lane
    token id list, ``FORK`` the lane index, ``ROLLBACK`` the step
    count."""
    head = _BATCH_HEAD.pack(flow_id, op)
    if op == BeamOp.ADVANCE:
        if not arg:
            raise ProtocolError("ADVANCE carries no token ids")
        body = struct.pack(f"!{len(arg)}I", *arg)
    elif op in (BeamOp.FORK, BeamOp.ROLLBACK):
        body = _U32.pack(arg)
    else:
        raise ProtocolError(f"unknown beam op {op}")
    return encode_frame(FrameType.BATCH_ADVANCE, head + body)


def encode_masks(flow_id: int, row_bytes: int, lanes: list) -> bytes:
    """The whole beam's masks in one frame. ``lanes`` is a list of
    ``(state, kind, body)``: kind 0 bodies are full ``row_bytes``
    rows, kind 1 bodies are raw XOR patch entries (length a multiple
    of 3) against the lane's previously sent row."""
    parts = [_MASKS_HEAD.pack(flow_id, len(lanes), row_bytes)]
    for state, kind, body in lanes:
        parts.append(_LANE_HEAD.pack(state, kind))
        if kind == 0:
            if len(body) != row_bytes:
                raise ProtocolError(
                    f"full lane body of {len(body)} bytes, "
                    f"row_bytes {row_bytes}"
                )
            parts.append(body)
        elif kind == 1:
            if len(body) % 3:
                raise ProtocolError(
                    f"delta lane body of {len(body)} bytes is not a "
                    "whole number of 3-byte entries"
                )
            parts.append(_U16.pack(len(body) // 3))
            parts.append(body)
        else:
            raise ProtocolError(f"unknown MASKS lane kind {kind}")
    return encode_frame(FrameType.MASKS, b"".join(parts))


# ----------------------------------------------------------------------
# payload decoding (each raises ProtocolError on a short/garbled body)
# ----------------------------------------------------------------------
def _unpack(spec: struct.Struct, frame: Frame) -> tuple:
    if len(frame.payload) < spec.size:
        raise ProtocolError(
            f"{frame.name} frame payload too short "
            f"({len(frame.payload)} < {spec.size} bytes)"
        )
    return spec.unpack_from(frame.payload)


def decode_hello(frame: Frame) -> tuple[int, int]:
    """-> (version, max_frame)."""
    return _unpack(_HELLO, frame)  # type: ignore[return-value]


def decode_hello_grammars(frame: Frame) -> tuple[str, ...]:
    """The grammar refs advertised after the fixed HELLO fields
    (empty for peers that do not send the field)."""
    extra = frame.payload[_HELLO.size :]
    if not extra:
        return ()
    text = extra.decode("utf-8", "replace")
    return tuple(ref for ref in text.split(",") if ref)


def decode_open_flow(frame: Frame) -> int:
    return _unpack(_FLOW, frame)[0]


def decode_data(frame: Frame) -> tuple[int, bytes]:
    (flow_id,) = _unpack(_FLOW, frame)
    return flow_id, frame.payload[_FLOW.size :]


def decode_finish_flow(frame: Frame) -> int:
    return _unpack(_FLOW, frame)[0]


def decode_result(frame: Frame) -> tuple[int, bool, list]:
    """-> (flow_id, final, items). Unpickles: server->client only."""
    flow_id, final = _unpack(_RESULT_HEAD, frame)
    try:
        items = pickle.loads(frame.payload[_RESULT_HEAD.size :])
    except Exception as exc:
        raise ProtocolError(f"undecodable RESULT payload: {exc}") from exc
    return flow_id, bool(final), items


def decode_open_mask(frame: Frame) -> tuple[int, str]:
    """-> (flow_id, vocab_hash hex)."""
    (flow_id,) = _unpack(_FLOW, frame)
    digest = frame.payload[_FLOW.size :]
    if len(digest) != _VOCAB_HASH_LEN:
        raise ProtocolError(
            f"OPEN_MASK carries {len(digest)} hash bytes, "
            f"expected {_VOCAB_HASH_LEN}"
        )
    return flow_id, digest.hex()


def decode_advance(frame: Frame) -> tuple[int, int]:
    """-> (flow_id, token_id)."""
    return _unpack(_MASK_HEAD, frame)  # type: ignore[return-value]


def decode_mask(frame: Frame) -> tuple[int, int, bytes]:
    """-> (flow_id, state, packed row)."""
    flow_id, state = _unpack(_MASK_HEAD, frame)
    return flow_id, state, frame.payload[_MASK_HEAD.size :]


def decode_open_beam(frame: Frame) -> tuple[int, int, str]:
    """-> (flow_id, width, vocab_hash hex)."""
    flow_id, width = _unpack(_BEAM_OPEN_HEAD, frame)
    if not 1 <= width <= MAX_BEAM_WIDTH:
        raise ProtocolError(
            f"OPEN_BEAM width {width} outside [1, {MAX_BEAM_WIDTH}]"
        )
    digest = frame.payload[_BEAM_OPEN_HEAD.size :]
    if len(digest) != _VOCAB_HASH_LEN:
        raise ProtocolError(
            f"OPEN_BEAM carries {len(digest)} hash bytes, "
            f"expected {_VOCAB_HASH_LEN}"
        )
    return flow_id, width, digest.hex()


def decode_batch_advance(frame: Frame) -> tuple[int, int, Any]:
    """-> (flow_id, op, arg): the token id tuple for ADVANCE, the
    lane index for FORK, the step count for ROLLBACK."""
    flow_id, op = _unpack(_BATCH_HEAD, frame)
    body = frame.payload[_BATCH_HEAD.size :]
    if op == BeamOp.ADVANCE:
        if len(body) % 4 or not body:
            raise ProtocolError(
                f"BATCH_ADVANCE op ADVANCE body of {len(body)} bytes "
                "is not a non-empty multiple of 4"
            )
        return flow_id, op, struct.unpack(f"!{len(body) // 4}I", body)
    if op in (BeamOp.FORK, BeamOp.ROLLBACK):
        if len(body) != _U32.size:
            raise ProtocolError(
                f"BATCH_ADVANCE op {BeamOp.NAMES[op]} body of "
                f"{len(body)} bytes, expected {_U32.size}"
            )
        return flow_id, op, _U32.unpack(body)[0]
    raise ProtocolError(f"unknown BATCH_ADVANCE op {op}")


def decode_masks(frame: Frame) -> tuple[int, int, list]:
    """-> (flow_id, row_bytes, [(state, kind, body), ...])."""
    flow_id, n_lanes, row_bytes = _unpack(_MASKS_HEAD, frame)
    payload = frame.payload
    pos = _MASKS_HEAD.size
    lanes = []
    for _ in range(n_lanes):
        if len(payload) < pos + _LANE_HEAD.size:
            raise ProtocolError("MASKS frame truncated in lane header")
        state, kind = _LANE_HEAD.unpack_from(payload, pos)
        pos += _LANE_HEAD.size
        if kind == 0:
            body = payload[pos : pos + row_bytes]
            if len(body) != row_bytes:
                raise ProtocolError("MASKS frame truncated in full row")
            pos += row_bytes
        elif kind == 1:
            if len(payload) < pos + _U16.size:
                raise ProtocolError(
                    "MASKS frame truncated in delta count"
                )
            (count,) = _U16.unpack_from(payload, pos)
            pos += _U16.size
            body = payload[pos : pos + 3 * count]
            if len(body) != 3 * count:
                raise ProtocolError("MASKS frame truncated in delta")
            pos += 3 * count
        else:
            raise ProtocolError(f"unknown MASKS lane kind {kind}")
        lanes.append((state, kind, body))
    if pos != len(payload):
        raise ProtocolError(
            f"MASKS frame has {len(payload) - pos} trailing bytes"
        )
    return flow_id, row_bytes, lanes


def decode_error(frame: Frame) -> tuple[int, int, str]:
    """-> (flow_id, code, message)."""
    flow_id, code = _unpack(_ERROR_HEAD, frame)
    message = frame.payload[_ERROR_HEAD.size :].decode("utf-8", "replace")
    return flow_id, code, message


# ----------------------------------------------------------------------
class FrameDecoder:
    """Incremental sans-IO frame parser with a hard size limit.

    Feed arbitrary byte slices (socket reads, test vectors); complete
    frames come back in arrival order. A declared length above
    ``max_frame`` raises :class:`ProtocolError` *immediately* — before
    any of the body arrives — so a hostile length prefix cannot make
    the receiver buffer an unbounded body.
    """

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[Frame]:
        self._buffer += data
        frames: list[Frame] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return frames
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > self.max_frame:
                raise ProtocolError(
                    f"frame of {length} bytes exceeds limit "
                    f"{self.max_frame}",
                    code=ErrorCode.FRAME_TOO_LARGE,
                )
            if length < 1:
                raise ProtocolError("frame with empty body")
            if len(self._buffer) < _HEADER.size + length:
                return frames
            body = bytes(
                self._buffer[_HEADER.size : _HEADER.size + length]
            )
            del self._buffer[: _HEADER.size + length]
            frames.append(Frame(body[0], body[1:]))

    def pending(self) -> int:
        """Bytes buffered awaiting the rest of a frame."""
        return len(self._buffer)
