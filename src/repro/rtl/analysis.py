"""Structural analysis of netlists.

The paper's performance argument rests on two structural properties of
the generated hardware: the design is pipelined down to *one level of
logic between registers* (§3.4), and the critical path of large
grammars is the *routing fanout of decoded character bits* (§4.3).
This module measures both directly from a netlist: combinational logic
levels per register stage, per-net fanout, and the driver composition
of the highest-fanout nets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rtl.netlist import Gate, Netlist, Register, collect_fanout


def logic_levels(netlist: Netlist) -> dict[int, int]:
    """Combinational depth (in gates) of every net, keyed by net uid.

    Primary inputs, constants and register Q pins are level 0; a gate's
    output is one more than its deepest input.
    """
    levels: dict[int, int] = {}
    for net in netlist.nets:
        if not isinstance(net.driver, Gate):
            levels[net.uid] = 0
    for gate in netlist.levelize():
        levels[gate.output.uid] = 1 + max(
            (levels[n.uid] for n in gate.inputs), default=0
        )
    return levels


def max_logic_depth(netlist: Netlist) -> int:
    """Deepest combinational path between registers/ports, in gates."""
    levels = logic_levels(netlist)
    depth = 0
    for register in netlist.registers:
        depth = max(depth, levels[register.d.uid])
        if register.enable is not None:
            depth = max(depth, levels[register.enable.uid])
    for net in netlist.outputs.values():
        depth = max(depth, levels[net.uid])
    return depth


def fanout_map(netlist: Netlist) -> dict[int, int]:
    """Per-net fanout (number of reading pins), keyed by net uid."""
    return collect_fanout(netlist)


def pipeline_depth(netlist: Netlist, output: str) -> int:
    """Longest register chain from any primary input to ``output``.

    This is the detection latency in cycles of the named output: the
    number of clock edges a change at an input needs to reach the port.
    """
    target = netlist.outputs.get(output)
    if target is None:
        raise KeyError(f"no output named {output!r}")
    memo: dict[int, int] = {}
    active: set[int] = set()

    def depth_of(uid: int) -> int:
        if uid in memo:
            return memo[uid]
        if uid in active:
            # Sequential feedback loop (e.g. the arming register); its
            # contribution to input-to-output latency is the acyclic
            # part, so treat the back edge as depth 0.
            return 0
        active.add(uid)
        driver = netlist.nets[uid].driver
        if isinstance(driver, Gate):
            result = max(depth_of(n.uid) for n in driver.inputs)
        elif isinstance(driver, Register):
            result = 1 + depth_of(driver.d.uid)
        else:
            result = 0
        active.discard(uid)
        memo[uid] = result
        return result

    return depth_of(target.uid)


@dataclass
class NetlistStats:
    """Aggregate structural statistics of a netlist."""

    name: str
    n_inputs: int
    n_outputs: int
    n_gates: int
    n_registers: int
    gate_counts: dict[str, int]
    max_logic_depth: int
    max_fanout: int
    max_fanout_net: str
    fanout_top: list[tuple[str, int]] = field(default_factory=list)

    def summary(self) -> str:
        """Human-readable one-paragraph report."""
        gates = ", ".join(f"{k}={v}" for k, v in sorted(self.gate_counts.items()))
        top = ", ".join(f"{name}:{fo}" for name, fo in self.fanout_top[:5])
        return (
            f"{self.name}: {self.n_gates} gates ({gates}), "
            f"{self.n_registers} registers, depth {self.max_logic_depth}, "
            f"max fanout {self.max_fanout} on {self.max_fanout_net} "
            f"(top fanouts: {top})"
        )


def analyze(netlist: Netlist, top_n: int = 10) -> NetlistStats:
    """Compute :class:`NetlistStats` for a netlist."""
    fanout = fanout_map(netlist)
    ranked = sorted(
        ((netlist.nets[uid].name, count) for uid, count in fanout.items()),
        key=lambda item: item[1],
        reverse=True,
    )
    best_name, best_fanout = ranked[0] if ranked else ("", 0)
    return NetlistStats(
        name=netlist.name,
        n_inputs=len(netlist.inputs),
        n_outputs=len(netlist.outputs),
        n_gates=netlist.n_gates,
        n_registers=netlist.n_registers,
        gate_counts=netlist.gate_counts(),
        max_logic_depth=max_logic_depth(netlist),
        max_fanout=best_fanout,
        max_fanout_net=best_name,
        fanout_top=ranked[:top_n],
    )
