"""Bit-parallel netlist simulation: many streams per pass.

Python integers are arbitrary-width bit vectors, and the netlist is
pure boolean logic — so one interpreter pass over the gate list can
evaluate the same cycle of *W independent input streams* at once,
lane ``w`` living in bit ``w`` of every net's value. This is the
classic bit-slicing trick; it makes whole-corpus equivalence checks
(hypothesis fuzzing, regression sweeps) roughly ``W``× cheaper than
stepping the scalar :class:`~repro.rtl.simulator.Simulator` per input.

Semantics are identical to the scalar simulator by construction and
asserted by the test suite.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import SimulationError
from repro.rtl.netlist import GateKind, Netlist

_KIND = {
    GateKind.BUF: 0,
    GateKind.NOT: 1,
    GateKind.AND: 2,
    GateKind.OR: 3,
    GateKind.XOR: 4,
}


class BitParallelSimulator:
    """Cycle-accurate simulation of W parallel streams.

    Inputs and outputs are integers whose bit ``w`` belongs to lane
    ``w``. All lanes share the clock; per-lane stimulus of different
    lengths is handled by padding (e.g. holding ``in_valid`` low).

    Example
    -------
    >>> nl = Netlist()
    >>> a = nl.input("a")
    >>> nl.output("q", nl.reg(a))
    >>> sim = BitParallelSimulator(nl, lanes=3)
    >>> _ = sim.step({"a": 0b101})
    >>> sim.step({"a": 0b000})["q"]
    5
    """

    def __init__(self, netlist: Netlist, lanes: int) -> None:
        if lanes < 1:
            raise SimulationError("need at least one lane")
        self.netlist = netlist
        self.lanes = lanes
        self.mask = (1 << lanes) - 1
        netlist.validate()
        self._values: list[int] = [0] * len(netlist.nets)
        self._input_uids = {net.name: net.uid for net in netlist.inputs}
        self._output_pins = [
            (name, net.uid) for name, net in netlist.outputs.items()
        ]
        self._ops = [
            (
                _KIND[gate.kind],
                gate.output.uid,
                tuple(n.uid for n in gate.inputs),
            )
            for gate in netlist.levelize()
        ]
        self._reg_plan = [
            (r.d.uid, r.q.uid, r.enable.uid if r.enable is not None else -1)
            for r in netlist.registers
        ]
        self.cycle = 0
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self._values = [0] * len(self.netlist.nets)
        mask = self.mask
        for net in self.netlist.nets:
            if net.driver == "const1":
                self._values[net.uid] = mask
        for register in self.netlist.registers:
            self._values[register.q.uid] = mask if register.init else 0
        self.cycle = 0

    # ------------------------------------------------------------------
    def step(self, inputs: Mapping[str, int] | None = None) -> dict[str, int]:
        """Advance one cycle across all lanes."""
        values = self._values
        mask = self.mask
        if inputs:
            uids = self._input_uids
            for name, value in inputs.items():
                uid = uids.get(name)
                if uid is None:
                    raise SimulationError(f"unknown input port {name!r}")
                values[uid] = value & mask
        for op, out, ins in self._ops:
            if op == 2:  # AND
                result = mask
                for uid in ins:
                    result &= values[uid]
                    if not result:
                        break
            elif op == 3:  # OR
                result = 0
                for uid in ins:
                    result |= values[uid]
                    if result == mask:
                        break
            elif op == 1:  # NOT
                result = values[ins[0]] ^ mask
            elif op == 4:  # XOR
                result = values[ins[0]] ^ values[ins[1]]
            else:  # BUF
                result = values[ins[0]]
            values[out] = result
        outputs = {name: values[uid] for name, uid in self._output_pins}
        sampled = [
            (
                q,
                values[d]
                if en < 0
                else (values[d] & values[en]) | (values[q] & ~values[en] & mask),
            )
            for d, q, en in self._reg_plan
        ]
        for q, value in sampled:
            values[q] = value
        self.cycle += 1
        return outputs

    def run(
        self, stimulus: Sequence[Mapping[str, int]]
    ) -> list[dict[str, int]]:
        return [self.step(frame) for frame in stimulus]


def pack_byte_streams(
    streams: Sequence[bytes],
    data_port_prefix: str = "data",
    valid_port: str = "in_valid",
    flush: int = 0,
) -> list[dict[str, int]]:
    """Per-cycle bit-packed frames for W byte streams of any lengths.

    Lane ``w`` carries ``streams[w]``; shorter lanes idle with their
    valid bit low. ``flush`` extra all-idle cycles are appended.
    """
    longest = max((len(s) for s in streams), default=0)
    frames: list[dict[str, int]] = []
    for position in range(longest + flush):
        frame = {f"{data_port_prefix}{bit}": 0 for bit in range(8)}
        valid = 0
        for lane, stream in enumerate(streams):
            if position < len(stream):
                byte = stream[position]
                valid |= 1 << lane
                for bit in range(8):
                    if (byte >> bit) & 1:
                        frame[f"{data_port_prefix}{bit}"] |= 1 << lane
        frame[valid_port] = valid
        frames.append(frame)
    return frames


def unpack_output_lane(
    outputs: Sequence[Mapping[str, int]], port: str, lane: int
) -> list[int]:
    """Extract one lane's per-cycle trace of an output port."""
    return [(frame[port] >> lane) & 1 for frame in outputs]
