"""Hardware stack module (the §5.2 extension substrate).

"Additionally, a stack can be added to the architecture to give the
hardware parser all the power of a software parser." (§5.2)

The netlist has no memory primitive, so the stack is built the way a
small FPGA stack is: a bank of ``depth`` frame registers operated as a
shift register. ``push`` shifts every frame down and loads the top;
``pop`` shifts up. Simultaneous push+pop replaces the top. Overflow
and underflow raise sticky error flags — the error-detection behaviour
the paper says is the point of keeping recursive state (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rtl.netlist import Net, Netlist


@dataclass
class StackPorts:
    """Nets of one instantiated hardware stack."""

    push: Net
    pop: Net
    data_in: list[Net]
    top: list[Net]
    empty: Net
    overflow: Net
    underflow: Net
    #: Q nets of every frame, frame 0 = top (for waveform inspection).
    frames: list[list[Net]]


def build_stack(
    nl: Netlist,
    push: Net,
    pop: Net,
    data_in: list[Net],
    depth: int,
    name: str = "stk",
) -> StackPorts:
    """Instantiate a ``depth``-frame, ``len(data_in)``-bit-wide stack.

    Control semantics per clock edge:

    * ``push & !pop``  — shift down, frame0 <= data_in;
    * ``pop & !push``  — shift up, deepest frame clears;
    * ``push & pop``   — replace top (frame0 <= data_in);
    * neither          — hold.
    """
    if depth < 1:
        raise ValueError("stack depth must be >= 1")
    width = len(data_in)

    # Occupancy: a one-hot-ish valid bit per frame.
    valid_q = [nl.placeholder(f"{name}_v{d}") for d in range(depth)]
    frame_q = [
        [nl.placeholder(f"{name}_f{d}_b{b}") for b in range(width)]
        for d in range(depth)
    ]

    push_only = nl.and_(push, nl.not_(pop), name=f"{name}_pushonly")
    pop_only = nl.and_(pop, nl.not_(push), name=f"{name}_poponly")
    replace = nl.and_(push, pop, name=f"{name}_replace")
    hold = nl.and_(nl.not_(push), nl.not_(pop), name=f"{name}_hold")

    for d in range(depth):
        above_valid = valid_q[d - 1] if d > 0 else push  # new top on push
        below_valid = valid_q[d + 1] if d + 1 < depth else nl.const(0)
        valid_d = nl.or_(
            nl.and_(push_only, above_valid if d > 0 else nl.const(1)),
            nl.and_(pop_only, below_valid),
            nl.and_(nl.or_(replace, hold), valid_q[d]),
            name=f"{name}_v{d}_d",
        )
        nl.close_reg(valid_q[d], valid_d)
        for b in range(width):
            above_bit = frame_q[d - 1][b] if d > 0 else data_in[b]
            below_bit = frame_q[d + 1][b] if d + 1 < depth else nl.const(0)
            top_load = data_in[b] if d == 0 else above_bit
            bit_d = nl.or_(
                nl.and_(push_only, above_bit if d > 0 else data_in[b]),
                nl.and_(pop_only, below_bit),
                nl.and_(replace, top_load if d == 0 else frame_q[d][b]),
                nl.and_(hold, frame_q[d][b]),
                name=f"{name}_f{d}_b{b}_d",
            )
            nl.close_reg(frame_q[d][b], bit_d)

    empty = nl.not_(valid_q[0], name=f"{name}_empty")

    # Sticky error flags.
    overflow_q = nl.placeholder(f"{name}_ovf")
    nl.close_reg(
        overflow_q,
        nl.or_(
            overflow_q,
            nl.and_(push_only, valid_q[depth - 1]),
            name=f"{name}_ovf_d",
        ),
    )
    underflow_q = nl.placeholder(f"{name}_unf")
    nl.close_reg(
        underflow_q,
        nl.or_(
            underflow_q,
            nl.and_(nl.or_(pop_only, replace), empty),
            name=f"{name}_unf_d",
        ),
    )

    return StackPorts(
        push=push,
        pop=pop,
        data_in=data_in,
        top=frame_q[0],
        empty=empty,
        overflow=overflow_q,
        underflow=underflow_q,
        frames=frame_q,
    )


def build_counter_stack(
    nl: Netlist,
    push: Net,
    pop: Net,
    depth: int,
    name: str = "cnt",
) -> StackPorts:
    """Degenerate stack with identical frames: a depth counter.

    For self-embedding grammars whose recursion frames carry no data
    (the balanced-parenthesis grammar of Fig. 1: every frame is "a ')'
    is owed"), the full stack reduces to a saturating counter — the
    cheapest hardware realization of the §5.2 stack. Exposes the same
    ports with a zero-width frame.
    """
    return build_stack(nl, push, pop, data_in=[], depth=depth, name=name)
