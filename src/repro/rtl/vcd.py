"""VCD (Value Change Dump) waveform export.

Lets a user open the generated tagger's simulation in any standard
waveform viewer (GTKWave etc.) — the software equivalent of probing
the FPGA with a logic analyzer.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import TextIO

from repro.rtl.netlist import Net, Netlist
from repro.rtl.simulator import Simulator

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Short VCD identifier for signal ``index``."""
    if index == 0:
        return _ID_CHARS[0]
    out = ""
    while index:
        index, digit = divmod(index, len(_ID_CHARS))
        out += _ID_CHARS[digit]
    return out


class VCDWriter:
    """Streams a simulation into a VCD file.

    Example
    -------
    >>> import io
    >>> nl = Netlist("toy")
    >>> a = nl.input("a")
    >>> q = nl.reg(a, name="q")
    >>> nl.output("q", q)
    >>> sink = io.StringIO()
    >>> writer = VCDWriter(Simulator(nl), sink, watch=[a, q])
    >>> writer.run([{"a": 1}, {"a": 0}])
    >>> "$enddefinitions" in sink.getvalue()
    True
    """

    def __init__(
        self,
        simulator: Simulator,
        sink: TextIO,
        watch: Sequence[Net],
        timescale: str = "1 ns",
        period: int = 10,
    ) -> None:
        self.simulator = simulator
        self.sink = sink
        self.watch = list(watch)
        self.period = period
        self._ids = {
            net.uid: _identifier(i) for i, net in enumerate(self.watch)
        }
        self._last: dict[int, int | None] = {net.uid: None for net in self.watch}
        self._time = 0

        sink.write(f"$timescale {timescale} $end\n")
        sink.write(f"$scope module {simulator.netlist.name} $end\n")
        for net in self.watch:
            sink.write(f"$var wire 1 {self._ids[net.uid]} {net.name} $end\n")
        sink.write("$upscope $end\n")
        sink.write("$enddefinitions $end\n")

    # ------------------------------------------------------------------
    def step(self, inputs: Mapping[str, int] | None = None) -> None:
        _outputs, sampled = self.simulator.step_observe(inputs, self.watch)
        changes = []
        for net in self.watch:
            value = sampled[net.name]
            if value != self._last[net.uid]:
                self._last[net.uid] = value
                changes.append(f"{value}{self._ids[net.uid]}")
        if changes:
            self.sink.write(f"#{self._time}\n")
            for change in changes:
                self.sink.write(change + "\n")
        self._time += self.period

    def run(self, stimulus: Sequence[Mapping[str, int]]) -> None:
        for frame in stimulus:
            self.step(frame)
        self.sink.write(f"#{self._time}\n")


def dump_vcd(
    netlist: Netlist,
    stimulus: Sequence[Mapping[str, int]],
    path: str,
    watch: Sequence[Net] | None = None,
) -> None:
    """One-shot: simulate ``netlist`` and write a VCD file to ``path``.

    Watches the given nets, or by default every output port's net plus
    all primary inputs.
    """
    if watch is None:
        watch = list(netlist.inputs) + list(netlist.outputs.values())
    simulator = Simulator(netlist)
    with open(path, "w", encoding="utf-8") as sink:
        VCDWriter(simulator, sink, watch).run(stimulus)
