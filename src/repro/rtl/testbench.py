"""VHDL testbench generation.

Completes the paper's generator story: alongside the synthesizable
entity (:func:`repro.rtl.vhdl.emit_vhdl`), emit a self-checking
testbench whose stimulus *and expected responses* come from our
cycle-accurate simulation — so a user with vendor tools can replay the
exact behaviour the Python model certifies, cycle by cycle.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.rtl.netlist import Netlist
from repro.rtl.simulator import Simulator
from repro.rtl.vhdl import _Namer, _sanitize


def emit_testbench(
    netlist: Netlist,
    stimulus: Sequence[Mapping[str, int]],
    entity: str | None = None,
    check_outputs: Sequence[str] | None = None,
) -> str:
    """Render a self-checking VHDL testbench for ``netlist``.

    The netlist is simulated over ``stimulus``; every cycle's values of
    ``check_outputs`` (default: all output ports) become assertions in
    the generated testbench.
    """
    entity = _sanitize(entity or netlist.name)
    checked = list(check_outputs or netlist.outputs.keys())
    for name in checked:
        if name not in netlist.outputs:
            raise KeyError(f"no output port {name!r}")

    simulator = Simulator(netlist)
    expected: list[dict[str, int]] = [
        {name: out[name] for name in checked}
        for out in (simulator.step(frame) for frame in stimulus)
    ]

    namer = _Namer()
    input_idents = {net.name: namer.name(net) for net in netlist.inputs}
    output_idents = {name: _sanitize(f"o_{name}") for name in netlist.outputs}

    lines = [
        f"-- Self-checking testbench for {entity},",
        f"-- generated from {len(stimulus)} simulated cycles.",
        "library ieee;",
        "use ieee.std_logic_1164.all;",
        "",
        f"entity tb_{entity} is",
        f"end entity tb_{entity};",
        "",
        f"architecture sim of tb_{entity} is",
        "  signal clk   : std_logic := '0';",
        "  signal reset : std_logic := '1';",
    ]
    for ident in input_idents.values():
        lines.append(f"  signal {ident} : std_logic := '0';")
    for ident in output_idents.values():
        lines.append(f"  signal {ident} : std_logic;")
    lines.append("begin")
    lines.append("  clk <= not clk after 5 ns;")
    lines.append("")
    lines.append(f"  dut : entity work.{entity}")
    lines.append("    port map (")
    port_map = ["      clk => clk", "      reset => reset"]
    port_map += [
        f"      {ident} => {ident}" for ident in input_idents.values()
    ]
    port_map += [
        f"      {ident} => {ident}" for ident in output_idents.values()
    ]
    lines.append(",\n".join(port_map))
    lines.append("    );")
    lines.append("")
    lines.append("  drive : process is")
    lines.append("  begin")
    lines.append("    reset <= '1';")
    lines.append("    wait until rising_edge(clk);")
    lines.append("    reset <= '0';")
    for cycle, frame in enumerate(stimulus):
        for name, ident in input_idents.items():
            value = 1 if frame.get(name) else 0
            lines.append(f"    {ident} <= '{value}';")
        lines.append("    wait for 1 ns;  -- settle")
        for name in checked:
            ident = output_idents[name]
            value = expected[cycle][name]
            lines.append(
                f"    assert {ident} = '{value}' report "
                f"\"cycle {cycle}: {name} /= {value}\" severity error;"
            )
        lines.append("    wait until rising_edge(clk);")
    lines.append('    report "testbench completed" severity note;')
    lines.append("    wait;")
    lines.append("  end process drive;")
    lines.append(f"end architecture sim;")
    lines.append("")
    return "\n".join(lines)
