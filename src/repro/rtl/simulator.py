"""Cycle-accurate simulator for :class:`repro.rtl.netlist.Netlist`.

The simulator is two-phase per clock cycle, matching synchronous
hardware semantics:

1. *evaluate* — primary inputs are applied and all combinational gates
   are evaluated in levelized order (register Q pins hold the values
   latched at the previous edge);
2. *clock* — every register samples its D input (subject to its clock
   enable) simultaneously.

The gate network is compiled once into a flat operation list over a
``bytearray`` of net values, which keeps the per-cycle interpreter loop
tight enough to simulate multi-thousand-gate taggers over kilobytes of
input in tests.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.errors import SimulationError
from repro.rtl.netlist import GateKind, Net, Netlist

_OP_BUF = 0
_OP_NOT = 1
_OP_AND = 2
_OP_OR = 3
_OP_XOR = 4

_KIND_TO_OP = {
    GateKind.BUF: _OP_BUF,
    GateKind.NOT: _OP_NOT,
    GateKind.AND: _OP_AND,
    GateKind.OR: _OP_OR,
    GateKind.XOR: _OP_XOR,
}


class Simulator:
    """Compiled cycle-accurate simulator for a netlist.

    Example
    -------
    >>> nl = Netlist()
    >>> a = nl.input("a")
    >>> q = nl.reg(a, name="q")
    >>> nl.output("q", q)
    >>> sim = Simulator(nl)
    >>> sim.step({"a": 1})["q"]
    0
    >>> sim.step({"a": 0})["q"]
    1
    """

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        netlist.validate()
        self._values = bytearray(len(netlist.nets))
        self._input_uids = {net.name: net.uid for net in netlist.inputs}
        self._output_pins = [(name, net.uid) for name, net in netlist.outputs.items()]
        self._ops = [
            (_KIND_TO_OP[gate.kind], gate.output.uid, tuple(n.uid for n in gate.inputs))
            for gate in netlist.levelize()
        ]
        # (d_uid, q_uid, enable_uid or -1)
        self._reg_plan = [
            (r.d.uid, r.q.uid, r.enable.uid if r.enable is not None else -1)
            for r in netlist.registers
        ]
        self.cycle = 0
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Return every register to its init value and clear all nets."""
        self._values = bytearray(len(self.netlist.nets))
        for net in self.netlist.nets:
            if net.driver == "const1":
                self._values[net.uid] = 1
        for register in self.netlist.registers:
            self._values[register.q.uid] = register.init
        self.cycle = 0

    # ------------------------------------------------------------------
    def _apply_inputs(self, inputs: Mapping[str, int]) -> None:
        values = self._values
        uids = self._input_uids
        for name, value in inputs.items():
            uid = uids.get(name)
            if uid is None:
                raise SimulationError(f"unknown input port {name!r}")
            values[uid] = 1 if value else 0

    def _evaluate(self) -> None:
        values = self._values
        for op, out, ins in self._ops:
            if op == _OP_AND:
                result = 1
                for uid in ins:
                    if not values[uid]:
                        result = 0
                        break
            elif op == _OP_OR:
                result = 0
                for uid in ins:
                    if values[uid]:
                        result = 1
                        break
            elif op == _OP_NOT:
                result = 1 - values[ins[0]]
            elif op == _OP_XOR:
                result = values[ins[0]] ^ values[ins[1]]
            else:  # _OP_BUF
                result = values[ins[0]]
            values[out] = result

    def _clock(self) -> None:
        values = self._values
        # Sample all D inputs before updating any Q, as real FFs do.
        sampled = [
            (q, values[d] if en < 0 or values[en] else values[q])
            for d, q, en in self._reg_plan
        ]
        for q, value in sampled:
            values[q] = value

    # ------------------------------------------------------------------
    def step(self, inputs: Mapping[str, int] | None = None) -> dict[str, int]:
        """Run one clock cycle; return output values *before* the edge.

        The returned mapping reflects combinational settle of this cycle
        (i.e. what the output pins show during the cycle); registers
        then latch at the end of the call.
        """
        if inputs:
            self._apply_inputs(inputs)
        self._evaluate()
        outputs = {name: self._values[uid] for name, uid in self._output_pins}
        self._clock()
        self.cycle += 1
        return outputs

    def step_observe(
        self,
        inputs: Mapping[str, int] | None,
        nets: Sequence[Net],
    ) -> tuple[dict[str, int], dict[str, int]]:
        """Like :meth:`step`, additionally sampling ``nets`` *mid-cycle*.

        The sampled values are what a logic analyzer probe would show
        during the cycle (after combinational settle, before the clock
        edge), consistent with the returned outputs.
        """
        if inputs:
            self._apply_inputs(inputs)
        self._evaluate()
        outputs = {name: self._values[uid] for name, uid in self._output_pins}
        sampled = {net.name: self._values[net.uid] for net in nets}
        self._clock()
        self.cycle += 1
        return outputs, sampled

    def run(
        self, stimulus: Iterable[Mapping[str, int]]
    ) -> list[dict[str, int]]:
        """Apply one input mapping per cycle; collect outputs per cycle."""
        return [self.step(inputs) for inputs in stimulus]

    def peek(self, net: Net | str) -> int:
        """Read the current value of a net (by object or by name)."""
        if isinstance(net, Net):
            return self._values[net.uid]
        for candidate in self.netlist.nets:
            if candidate.name == net:
                return self._values[candidate.uid]
        raise SimulationError(f"no net named {net!r}")

    def flush(self, cycles: int, inputs: Mapping[str, int] | None = None) -> list[dict[str, int]]:
        """Run ``cycles`` cycles holding ``inputs`` constant.

        Used to drain pipelined detections after the last payload byte.
        """
        return [self.step(inputs) for _ in range(cycles)]


def byte_stimulus(
    data: bytes,
    data_port_prefix: str = "data",
    extra: Mapping[str, int] | None = None,
) -> list[dict[str, int]]:
    """Build per-cycle input mappings feeding one byte per cycle.

    The byte is presented LSB-first on ports ``{prefix}0 … {prefix}7``,
    matching the 8-bit decoder input of the paper's Fig. 4.
    """
    frames: list[dict[str, int]] = []
    for byte in data:
        frame = {f"{data_port_prefix}{bit}": (byte >> bit) & 1 for bit in range(8)}
        if extra:
            frame.update(extra)
        frames.append(frame)
    return frames


def stimulus_with_valid(
    data: bytes,
    flush_cycles: int,
    data_port_prefix: str = "data",
    valid_port: str = "in_valid",
) -> list[dict[str, int]]:
    """Byte stimulus followed by idle flush cycles with valid deasserted."""
    frames = byte_stimulus(data, data_port_prefix, extra={valid_port: 1})
    idle = {f"{data_port_prefix}{bit}": 0 for bit in range(8)}
    idle[valid_port] = 0
    frames.extend(dict(idle) for _ in range(flush_cycles))
    return frames


def trace_nets(
    simulator: Simulator,
    stimulus: Sequence[Mapping[str, int]],
    nets: Sequence[Net],
) -> dict[str, list[int]]:
    """Run ``stimulus`` recording the mid-cycle value of chosen nets."""
    traces: dict[str, list[int]] = {net.name: [] for net in nets}
    for frame in stimulus:
        _outputs, sampled = simulator.step_observe(frame, nets)
        for net in nets:
            traces[net.name].append(sampled[net.name])
    return traces
