"""Lightweight waveform capture for netlist simulations.

Used by tests and examples to observe internal signals over time — the
textual equivalent of attaching a logic analyzer to the generated
hardware.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.rtl.netlist import Net
from repro.rtl.simulator import Simulator


class Waveform:
    """Records named signals cycle by cycle during simulation.

    Example
    -------
    >>> wave = Waveform(sim, watch=[some_net])          # doctest: +SKIP
    >>> wave.run(stimulus)                              # doctest: +SKIP
    >>> print(wave.render())                            # doctest: +SKIP
    """

    def __init__(self, simulator: Simulator, watch: Sequence[Net]) -> None:
        self.simulator = simulator
        self.watch = list(watch)
        self.samples: dict[str, list[int]] = {net.name: [] for net in self.watch}
        self.outputs: list[dict[str, int]] = []

    def step(self, inputs: Mapping[str, int] | None = None) -> dict[str, int]:
        """Advance one cycle, recording watched nets and outputs.

        Watched nets are sampled mid-cycle (after combinational settle,
        before the clock edge), consistent with the output view.
        """
        out, sampled = self.simulator.step_observe(inputs, self.watch)
        self.outputs.append(out)
        for net in self.watch:
            self.samples[net.name].append(sampled[net.name])
        return out

    def run(self, stimulus: Sequence[Mapping[str, int]]) -> list[dict[str, int]]:
        """Advance through a full stimulus sequence."""
        return [self.step(frame) for frame in stimulus]

    def signal(self, name: str) -> list[int]:
        """The recorded trace of one watched net."""
        return self.samples[name]

    def rising_edges(self, name: str) -> list[int]:
        """Cycle indices at which a watched net transitions 0 -> 1."""
        trace = self.samples[name]
        return [
            i
            for i, value in enumerate(trace)
            if value and (i == 0 or not trace[i - 1])
        ]

    def render(self, width: int = 72) -> str:
        """ASCII art rendering (``_`` low, ``#`` high), one row per net."""
        rows = []
        label_width = max((len(n) for n in self.samples), default=0)
        for name, trace in self.samples.items():
            bits = "".join("#" if v else "_" for v in trace[:width])
            rows.append(f"{name.rjust(label_width)} {bits}")
        return "\n".join(rows)
