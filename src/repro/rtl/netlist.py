"""Synchronous gate/register netlist.

The netlist is the common representation shared by the hardware
generator (:mod:`repro.core`), the cycle-accurate simulator
(:mod:`repro.rtl.simulator`), the technology mapper
(:mod:`repro.fpga.techmap`) and the VHDL emitter
(:mod:`repro.rtl.vhdl`).

A :class:`Netlist` contains:

* *nets* — single-bit wires, each driven by exactly one source
  (a primary input, a constant, a gate output or a register Q pin);
* *gates* — combinational AND/OR/NOT/XOR/BUF nodes of arbitrary arity;
* *registers* — positive-edge D flip-flops with an optional active-high
  clock enable, matching the paper's pipeline registers and the
  delimiter-stalled first-stage registers of the tokenizers (Fig. 6).

The builder methods (:meth:`Netlist.and_`, :meth:`Netlist.or_`, …)
perform light constant folding and operand deduplication so that
generated hardware does not carry degenerate gates; structural
validation lives in :meth:`Netlist.validate`.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Sequence
from typing import Optional

from repro.errors import NetlistError


class GateKind(enum.Enum):
    """Combinational gate primitive kinds."""

    CONST = "const"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    XOR = "xor"


class Net:
    """A single-bit wire.

    Nets are created through :class:`Netlist` builder methods and carry
    a unique integer ``uid`` (their index in ``netlist.nets``) plus a
    human-readable ``name`` used in reports and emitted VHDL.
    """

    __slots__ = ("uid", "name", "driver")

    def __init__(self, uid: int, name: str) -> None:
        self.uid = uid
        self.name = name
        #: The driving object: ``None`` (undriven), a :class:`Gate`,
        #: a :class:`Register`, or the strings ``"input"`` / ``"const0"``
        #: / ``"const1"``.
        self.driver: object = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Net({self.uid}, {self.name!r})"


class Gate:
    """A combinational gate driving exactly one output net."""

    __slots__ = ("kind", "inputs", "output")

    def __init__(self, kind: GateKind, inputs: tuple[Net, ...], output: Net) -> None:
        self.kind = kind
        self.inputs = inputs
        self.output = output

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ins = ",".join(n.name for n in self.inputs)
        return f"Gate({self.kind.value}: {ins} -> {self.output.name})"


class Register:
    """A positive-edge D flip-flop with optional clock enable.

    When ``enable`` is ``None`` the register loads ``d`` every cycle;
    otherwise it loads only on cycles where ``enable`` is high and holds
    its value when low ("stalled", in the paper's terminology).
    """

    __slots__ = ("d", "q", "enable", "init")

    def __init__(self, d: Net, q: Net, enable: Optional[Net], init: int) -> None:
        self.d = d
        self.q = q
        self.enable = enable
        self.init = init

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        en = f", en={self.enable.name}" if self.enable is not None else ""
        return f"Register({self.d.name} -> {self.q.name}{en}, init={self.init})"


class Netlist:
    """A flat synchronous netlist with builder-style construction.

    Example
    -------
    >>> nl = Netlist("toy")
    >>> a = nl.input("a")
    >>> b = nl.input("b")
    >>> q = nl.reg(nl.and_(a, b), name="q")
    >>> nl.output("out", q)
    >>> nl.validate()
    """

    def __init__(self, name: str = "netlist") -> None:
        self.name = name
        self.nets: list[Net] = []
        self.gates: list[Gate] = []
        self.registers: list[Register] = []
        self.inputs: list[Net] = []
        self.outputs: dict[str, Net] = {}
        self._const_nets: dict[int, Net] = {}
        self._name_counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # net and name management
    # ------------------------------------------------------------------
    def _unique_name(self, base: str) -> str:
        count = self._name_counts.get(base)
        if count is None:
            self._name_counts[base] = 1
            return base
        self._name_counts[base] = count + 1
        return f"{base}_{count}"

    def new_net(self, name: str = "n") -> Net:
        """Create a fresh, undriven net."""
        net = Net(len(self.nets), self._unique_name(name))
        self.nets.append(net)
        return net

    # ------------------------------------------------------------------
    # sources
    # ------------------------------------------------------------------
    def input(self, name: str) -> Net:
        """Declare a primary input port and return its net."""
        net = self.new_net(name)
        net.driver = "input"
        self.inputs.append(net)
        return net

    def const(self, value: int) -> Net:
        """Return the shared constant-0 or constant-1 net."""
        value = 1 if value else 0
        cached = self._const_nets.get(value)
        if cached is not None:
            return cached
        net = self.new_net(f"const{value}")
        net.driver = f"const{value}"
        self._const_nets[value] = net
        return net

    def is_const(self, net: Net) -> Optional[int]:
        """Return 0/1 if ``net`` is a constant net, else ``None``."""
        if net.driver == "const0":
            return 0
        if net.driver == "const1":
            return 1
        return None

    # ------------------------------------------------------------------
    # combinational builders
    # ------------------------------------------------------------------
    def _emit_gate(self, kind: GateKind, inputs: tuple[Net, ...], name: str) -> Net:
        out = self.new_net(name)
        gate = Gate(kind, inputs, out)
        out.driver = gate
        self.gates.append(gate)
        return out

    def buf(self, a: Net, name: str = "buf") -> Net:
        """Buffer (identity). Mostly useful to give a net a new name."""
        return self._emit_gate(GateKind.BUF, (a,), name)

    def not_(self, a: Net, name: str = "inv") -> Net:
        """Logical inverse of ``a`` (constant-folded when possible)."""
        const = self.is_const(a)
        if const is not None:
            return self.const(1 - const)
        return self._emit_gate(GateKind.NOT, (a,), name)

    def _nary(
        self,
        kind: GateKind,
        nets: Sequence[Net],
        name: str,
        identity: int,
        absorbing: int,
    ) -> Net:
        operands: list[Net] = []
        seen: set[int] = set()
        for net in nets:
            const = self.is_const(net)
            if const == identity:
                continue
            if const == absorbing:
                return self.const(absorbing)
            if net.uid in seen:
                continue
            seen.add(net.uid)
            operands.append(net)
        if not operands:
            return self.const(identity)
        if len(operands) == 1:
            return operands[0]
        return self._emit_gate(kind, tuple(operands), name)

    def and_(self, *nets: Net, name: str = "and") -> Net:
        """N-ary AND with constant folding and operand dedup."""
        return self._nary(GateKind.AND, nets, name, identity=1, absorbing=0)

    def or_(self, *nets: Net, name: str = "or") -> Net:
        """N-ary OR with constant folding and operand dedup."""
        return self._nary(GateKind.OR, nets, name, identity=0, absorbing=1)

    def xor(self, a: Net, b: Net, name: str = "xor") -> Net:
        """Two-input XOR."""
        ca, cb = self.is_const(a), self.is_const(b)
        if ca is not None and cb is not None:
            return self.const(ca ^ cb)
        if ca == 0:
            return b
        if cb == 0:
            return a
        if ca == 1:
            return self.not_(b)
        if cb == 1:
            return self.not_(a)
        if a.uid == b.uid:
            return self.const(0)
        return self._emit_gate(GateKind.XOR, (a, b), name)

    def mux(self, sel: Net, if1: Net, if0: Net, name: str = "mux") -> Net:
        """2:1 multiplexer built from AND/OR/NOT primitives."""
        const = self.is_const(sel)
        if const == 1:
            return if1
        if const == 0:
            return if0
        take1 = self.and_(sel, if1, name=f"{name}_t")
        take0 = self.and_(self.not_(sel), if0, name=f"{name}_f")
        return self.or_(take1, take0, name=name)

    def and_tree(self, nets: Sequence[Net], name: str = "andt") -> Net:
        """Balanced binary AND tree; keeps logic depth logarithmic."""
        return self._tree(self.and_, nets, name)

    def or_tree(self, nets: Sequence[Net], name: str = "ort") -> Net:
        """Balanced binary OR tree; keeps logic depth logarithmic."""
        return self._tree(self.or_, nets, name)

    def _tree(self, op, nets: Sequence[Net], name: str) -> Net:
        level = list(nets)
        if not level:
            raise NetlistError("cannot build a gate tree with no operands")
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(op(level[i], level[i + 1], name=name))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    # ------------------------------------------------------------------
    # sequential builders
    # ------------------------------------------------------------------
    def reg(
        self,
        d: Net,
        enable: Optional[Net] = None,
        init: int = 0,
        name: str = "r",
    ) -> Net:
        """Add a D register and return its Q net.

        ``enable`` is an active-high clock enable: when low the register
        holds its previous value, which is how the paper stalls the
        first register of each token chain on delimiters.
        """
        if enable is not None and self.is_const(enable) == 1:
            enable = None
        q = self.new_net(name)
        register = Register(d, q, enable, 1 if init else 0)
        q.driver = register
        self.registers.append(register)
        return q

    # ------------------------------------------------------------------
    # forward references (feedback loops, two-pass wiring)
    # ------------------------------------------------------------------
    def placeholder(self, name: str = "fwd") -> Net:
        """Create an undriven net to be driven later.

        Used for sequential feedback (the paper's arming registers) and
        for the two-pass Follow-set wiring where tokenizer enables are
        OR-ed together only after every tokenizer exists.
        """
        return self.new_net(name)

    def _check_undriven(self, target: Net) -> None:
        if target.driver is not None:
            raise NetlistError(f"net {target.name!r} is already driven")

    def drive_gate(self, target: Net, kind: GateKind, inputs: Sequence[Net]) -> None:
        """Drive a placeholder net with a new gate."""
        self._check_undriven(target)
        gate = Gate(kind, tuple(inputs), target)
        target.driver = gate
        self.gates.append(gate)

    def drive_or(self, target: Net, inputs: Sequence[Net]) -> None:
        """Drive a placeholder with an OR (BUF for a single input)."""
        if len(inputs) == 1:
            self.drive_gate(target, GateKind.BUF, inputs)
        else:
            self.drive_gate(target, GateKind.OR, inputs)

    def drive_const(self, target: Net, value: int) -> None:
        """Drive a placeholder from a constant net."""
        self.drive_gate(target, GateKind.BUF, (self.const(value),))

    def close_reg(
        self,
        q: Net,
        d: Net,
        enable: Optional[Net] = None,
        init: int = 0,
    ) -> None:
        """Turn a placeholder net into a register Q pin (feedback loop)."""
        self._check_undriven(q)
        register = Register(d, q, enable, 1 if init else 0)
        q.driver = register
        self.registers.append(register)

    def delay(self, net: Net, cycles: int, name: str = "dly") -> Net:
        """Pipeline ``net`` through ``cycles`` back-to-back registers."""
        if cycles < 0:
            raise NetlistError("delay cycles must be non-negative")
        out = net
        for stage in range(cycles):
            out = self.reg(out, name=f"{name}{stage}")
        return out

    # ------------------------------------------------------------------
    # outputs and validation
    # ------------------------------------------------------------------
    def output(self, name: str, net: Net) -> None:
        """Bind ``net`` to an output port called ``name``."""
        if name in self.outputs:
            raise NetlistError(f"duplicate output port {name!r}")
        self.outputs[name] = net

    def validate(self) -> None:
        """Check structural sanity; raise :class:`NetlistError` if broken.

        Verifies that every net referenced by a gate, register or output
        has a driver and that the combinational portion is acyclic.
        """
        for gate in self.gates:
            for net in gate.inputs:
                if net.driver is None:
                    raise NetlistError(
                        f"gate {gate!r} reads undriven net {net.name!r}"
                    )
        for register in self.registers:
            if register.d.driver is None:
                raise NetlistError(f"register {register!r} has undriven D input")
            if register.enable is not None and register.enable.driver is None:
                raise NetlistError(f"register {register!r} has undriven enable")
        for name, net in self.outputs.items():
            if net.driver is None:
                raise NetlistError(f"output {name!r} is undriven")
        # Acyclicity is established by levelization.
        self.levelize()

    def levelize(self) -> list[Gate]:
        """Topologically order the gates; registers break all cycles.

        Raises :class:`NetlistError` when a combinational loop exists.
        """
        # Kahn's algorithm over gate-to-gate combinational edges.
        consumers: dict[int, list[Gate]] = {}
        indegree: dict[int, int] = {}
        for gate in self.gates:
            count = 0
            for net in gate.inputs:
                if isinstance(net.driver, Gate):
                    consumers.setdefault(net.driver.output.uid, []).append(gate)
                    count += 1
            indegree[gate.output.uid] = count
        ready = [g for g in self.gates if indegree[g.output.uid] == 0]
        order: list[Gate] = []
        while ready:
            gate = ready.pop()
            order.append(gate)
            for consumer in consumers.get(gate.output.uid, ()):
                indegree[consumer.output.uid] -= 1
                if indegree[consumer.output.uid] == 0:
                    ready.append(consumer)
        if len(order) != len(self.gates):
            raise NetlistError(
                "combinational loop detected "
                f"({len(self.gates) - len(order)} gates unreachable)"
            )
        return order

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def gate_counts(self) -> dict[str, int]:
        """Histogram of gate kinds, e.g. ``{"and": 120, "or": 14}``."""
        counts: dict[str, int] = {}
        for gate in self.gates:
            counts[gate.kind.value] = counts.get(gate.kind.value, 0) + 1
        return counts

    @property
    def n_gates(self) -> int:
        return len(self.gates)

    @property
    def n_registers(self) -> int:
        return len(self.registers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Netlist({self.name!r}, gates={self.n_gates}, "
            f"registers={self.n_registers}, inputs={len(self.inputs)}, "
            f"outputs={len(self.outputs)})"
        )


def iter_net_consumers(netlist: Netlist) -> dict[int, list[object]]:
    """Map each net uid to the gates/registers/outputs reading it."""
    readers: dict[int, list[object]] = {net.uid: [] for net in netlist.nets}
    for gate in netlist.gates:
        for net in gate.inputs:
            readers[net.uid].append(gate)
    for register in netlist.registers:
        readers[register.d.uid].append(register)
        if register.enable is not None:
            readers[register.enable.uid].append(register)
    for name, net in netlist.outputs.items():
        readers[net.uid].append(name)
    return readers


def collect_fanout(netlist: Netlist) -> dict[int, int]:
    """Number of sinks per net uid (gate pins + register pins + ports)."""
    return {uid: len(sinks) for uid, sinks in iter_net_consumers(netlist).items()}


def check_unused(netlist: Netlist) -> list[Net]:
    """Return driven nets that nothing reads (dead logic detector)."""
    readers = iter_net_consumers(netlist)
    return [
        net
        for net in netlist.nets
        if net.driver is not None and not readers[net.uid]
    ]


def flatten_inputs(nets: Iterable[Net | Iterable[Net]]) -> list[Net]:
    """Flatten possibly-nested net collections into a flat list."""
    flat: list[Net] = []
    for item in nets:
        if isinstance(item, Net):
            flat.append(item)
        else:
            flat.extend(flatten_inputs(item))
    return flat
