"""Gate-level RTL substrate.

This package is the "reconfigurable device" the reproduction runs on: a
synchronous netlist of boolean gates and D-registers, a cycle-accurate
simulator, structural analysis (logic levels, fanout, pipeline depth),
and a VHDL emitter mirroring the paper's code generator output.
"""

from repro.rtl.netlist import Gate, GateKind, Net, Netlist, Register
from repro.rtl.simulator import Simulator
from repro.rtl.bitsim import BitParallelSimulator
from repro.rtl.analysis import NetlistStats, analyze, fanout_map, logic_levels
from repro.rtl.stack import build_counter_stack, build_stack
from repro.rtl.vhdl import emit_vhdl
from repro.rtl.testbench import emit_testbench
from repro.rtl.vcd import VCDWriter, dump_vcd
from repro.rtl.waveform import Waveform

__all__ = [
    "BitParallelSimulator",
    "Gate",
    "GateKind",
    "Net",
    "Netlist",
    "NetlistStats",
    "Register",
    "Simulator",
    "VCDWriter",
    "Waveform",
    "analyze",
    "build_counter_stack",
    "build_stack",
    "dump_vcd",
    "emit_testbench",
    "emit_vhdl",
    "fanout_map",
    "logic_levels",
]
