"""Static timing analysis over the mapped LUT network.

Reproduces the paper's §4.3 timing observations: for small grammars the
clock is set by the pipelined logic (one LUT between registers); as the
grammar grows, "the critical paths … are entirely routing delay
associated with the large fanout of the decoded character bits as they
are routed to each of the tokens".

The model: the arrival time of a LUT output is the LUT delay plus the
worst (leaf arrival + leaf routing delay) over its inputs; routing
delay is the device's linear function of the *mapped* fanout of the
driving net. The clock period is the worst register-to-register (or
port-to-register) arrival plus the lumped FF overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fpga.device import Device
from repro.fpga.techmap import TechMapResult
from repro.rtl.netlist import Gate, Register


@dataclass
class PathSegment:
    """One hop of the critical path, for reporting."""

    net: str
    fanout: int
    route_ns: float
    lut_ns: float


@dataclass
class TimingReport:
    """Result of static timing analysis on one device."""

    device: Device
    period_ns: float
    frequency_mhz: float
    bandwidth_gbps: float
    #: nets ranked by their routing-delay contribution
    worst_nets: list[PathSegment] = field(default_factory=list)
    critical_kind: str = "logic"

    def summary(self) -> str:
        worst = self.worst_nets[0] if self.worst_nets else None
        detail = (
            f"; critical net {worst.net} fanout {worst.fanout} "
            f"route {worst.route_ns:.2f} ns"
            if worst
            else ""
        )
        return (
            f"{self.device.name}: {self.frequency_mhz:.0f} MHz "
            f"({self.period_ns:.2f} ns, {self.critical_kind}-bound)"
            f" = {self.bandwidth_gbps:.2f} Gbps{detail}"
        )


def analyze_timing(mapping: TechMapResult, device: Device) -> TimingReport:
    """Compute the clock period of a mapped design on ``device``.

    A byte is consumed per cycle, so bandwidth = frequency × 8 bits —
    the same arithmetic as the paper's Table 1 (533 MHz → 4.26 Gbps).
    """
    fanout = mapping.lut_fanout
    covered: dict[int, tuple[int, ...]] = {
        lut.output: lut.leaves for lut in mapping.luts if lut.output != -1
    }

    # Topological order over the covered LUT DAG (leaves may be other
    # covered nodes, register Qs, or primary inputs).
    order = _topo_order(covered)

    arrival: dict[int, float] = {}

    def leaf_arrival(uid: int) -> float:
        if uid in arrival:
            return arrival[uid]
        # Register Q or primary input: clock-to-Q is lumped into t_ff.
        return 0.0

    def leaf_route(uid: int) -> float:
        if uid < 0:
            return device.route_delay(1)  # synthetic internal net
        return device.route_delay(fanout.get(uid, 1))

    worst_segment: dict[int, PathSegment] = {}
    for uid in order:
        best = 0.0
        best_leaf = None
        for leaf in covered[uid]:
            candidate = leaf_arrival(leaf) + leaf_route(leaf)
            if candidate >= best:
                best = candidate
                best_leaf = leaf
        arrival[uid] = best + device.t_lut
        if best_leaf is not None:
            name = (
                mapping.netlist.nets[best_leaf].name
                if best_leaf >= 0
                else "(internal)"
            )
            worst_segment[uid] = PathSegment(
                net=name,
                fanout=fanout.get(best_leaf, 1) if best_leaf >= 0 else 1,
                route_ns=leaf_route(best_leaf),
                lut_ns=device.t_lut,
            )

    # Endpoints: register D/enable pins and output ports.
    live_register_qs = {
        reg.q.uid
        for reg in mapping.netlist.registers
    }
    period = device.t_ff + device.t_lut  # floor: empty FF->FF path
    critical_uid: int | None = None
    endpoints: list[int] = []
    for register in mapping.netlist.registers:
        if register.q.uid not in live_register_qs:
            continue
        for net in (register.d, register.enable):
            if net is not None:
                endpoints.append(net.uid)
    for net in mapping.netlist.outputs.values():
        endpoints.append(net.uid)

    roots = _root_map(mapping)
    for uid in endpoints:
        root = roots.get(uid, uid)
        path = leaf_arrival(root) + leaf_route(root) + device.t_ff
        if path > period:
            period = path
            critical_uid = root

    # Rank nets by routing contribution for the §4.3-style report.
    ranked = sorted(
        (
            PathSegment(
                net=mapping.netlist.nets[uid].name,
                fanout=f,
                route_ns=device.route_delay(f),
                lut_ns=device.t_lut,
            )
            for uid, f in fanout.items()
            if uid >= 0
        ),
        key=lambda seg: seg.route_ns,
        reverse=True,
    )

    critical_kind = "logic"
    if critical_uid is not None and critical_uid in worst_segment:
        segment = worst_segment[critical_uid]
        if segment.route_ns > segment.lut_ns:
            critical_kind = "routing"
    elif ranked and ranked[0].route_ns > device.t_lut:
        critical_kind = "routing"

    frequency = 1000.0 / period
    return TimingReport(
        device=device,
        period_ns=period,
        frequency_mhz=frequency,
        bandwidth_gbps=frequency * 8 / 1000.0,
        worst_nets=ranked[:10],
        critical_kind=critical_kind,
    )


def _topo_order(covered: dict[int, tuple[int, ...]]) -> list[int]:
    order: list[int] = []
    state: dict[int, int] = {}

    def visit(uid: int) -> None:
        stack = [(uid, iter(covered.get(uid, ())))]
        while stack:
            node, it = stack[-1]
            if state.get(node) == 2:
                stack.pop()
                continue
            state[node] = 1
            advanced = False
            for leaf in it:
                if leaf in covered and state.get(leaf, 0) == 0:
                    stack.append((leaf, iter(covered[leaf])))
                    advanced = True
                    break
            if not advanced:
                state[node] = 2
                order.append(node)
                stack.pop()

    for uid in covered:
        if state.get(uid, 0) == 0:
            visit(uid)
    return order


def _root_map(mapping: TechMapResult) -> dict[int, int]:
    """Collapse buffers/inverters so endpoints find their logic root."""
    netlist = mapping.netlist
    roots: dict[int, int] = {}

    def root_of(uid: int) -> int:
        cached = roots.get(uid)
        if cached is not None:
            return cached
        driver = netlist.nets[uid].driver
        if isinstance(driver, Gate) and driver.kind.value in ("buf", "not"):
            result = root_of(driver.inputs[0].uid)
        else:
            result = uid
        roots[uid] = result
        return result

    for register in netlist.registers:
        root_of(register.d.uid)
        if register.enable is not None:
            root_of(register.enable.uid)
    for net in netlist.outputs.values():
        root_of(net.uid)
    return roots
