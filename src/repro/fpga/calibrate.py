"""Device-model calibration against published anchor points.

The Virtex 4 constants in :mod:`repro.fpga.device` were produced by
this module: fix the logic-delay constants at datasheet-plausible
values, then solve the two routing constants so the generated XML-RPC
tagger hits the paper's published frequencies at two design points
(533 MHz at ~300 pattern bytes, 316 MHz at ~3000). The VirtexE is a
single scale factor pinned on its 196 MHz anchor.

Keeping the calibration *in the repository* makes the substitution
auditable: re-run :func:`fit_virtex4` and you get the committed
constants back from first principles (asserted in the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import fsolve

from repro.bench.scaling import scale_point_grammar
from repro.core.generator import TaggerGenerator
from repro.fpga.device import Device
from repro.fpga.techmap import TechMapResult, techmap
from repro.fpga.timing import analyze_timing


@dataclass(frozen=True)
class Anchor:
    """One published design point: duplication count → frequency."""

    copies: int
    frequency_mhz: float

    @property
    def period_ns(self) -> float:
        return 1000.0 / self.frequency_mhz


#: The paper's Table 1 anchor points used for calibration.
VIRTEX4_ANCHORS = (Anchor(copies=1, frequency_mhz=533.0),
                   Anchor(copies=9, frequency_mhz=316.0))
VIRTEXE_ANCHOR = Anchor(copies=1, frequency_mhz=196.0)

#: Datasheet-plausible fixed logic constants for the Virtex 4 (ns).
V4_T_LUT = 0.20
V4_T_FF = 0.30


def _mappings(anchors: tuple[Anchor, ...]) -> dict[int, TechMapResult]:
    generator = TaggerGenerator()
    return {
        anchor.copies: techmap(
            generator.generate(scale_point_grammar(anchor.copies)).netlist
        )
        for anchor in anchors
    }


def fit_virtex4(
    anchors: tuple[Anchor, Anchor] = VIRTEX4_ANCHORS,
    t_lut: float = V4_T_LUT,
    t_ff: float = V4_T_FF,
    initial: tuple[float, float] = (0.3, 0.004),
) -> tuple[float, float]:
    """Solve (r_base, r_fanout) for the Virtex 4 anchor frequencies.

    Returns the routing constants such that the timing model's period
    equals each anchor's period on the actually generated and mapped
    design — two equations, two unknowns, solved numerically.
    """
    mappings = _mappings(anchors)

    def residuals(params: np.ndarray) -> list[float]:
        r_base, r_fanout = params
        device = Device(
            name="fit", family="virtex4", n_luts=178_176, lut_inputs=4,
            t_lut=t_lut, t_ff=t_ff, r_base=float(r_base),
            r_fanout=float(r_fanout),
        )
        return [
            analyze_timing(mappings[anchor.copies], device).period_ns
            - anchor.period_ns
            for anchor in anchors
        ]

    solution, info, converged, message = fsolve(
        residuals, np.asarray(initial), full_output=True
    )
    if converged != 1:
        raise RuntimeError(f"calibration did not converge: {message}")
    r_base, r_fanout = (float(x) for x in solution)
    if r_base <= 0 or r_fanout <= 0:
        raise RuntimeError(
            f"non-physical routing constants ({r_base:.4f}, {r_fanout:.6f})"
        )
    return r_base, r_fanout


def fit_virtexe_scale(
    virtex4: Device,
    anchor: Anchor = VIRTEXE_ANCHOR,
) -> float:
    """Solve the VirtexE global delay scale against its anchor.

    All VirtexE delays are ``scale``× the Virtex 4 constants; the
    period is linear in the scale, so one anchor determines it.
    """
    mapping = _mappings((anchor,))[anchor.copies]
    unit = Device(
        name="unit", family="virtexe", n_luts=38_400, lut_inputs=4,
        t_lut=virtex4.t_lut, t_ff=virtex4.t_ff,
        r_base=virtex4.r_base, r_fanout=virtex4.r_fanout,
    )
    base_period = analyze_timing(mapping, unit).period_ns
    return anchor.period_ns / base_period


def calibration_report() -> str:
    """Re-derive all constants; print them next to the committed ones."""
    from repro.fpga.device import VIRTEX4_LX200, VIRTEXE_2000

    r_base, r_fanout = fit_virtex4()
    scale = fit_virtexe_scale(VIRTEX4_LX200)
    lines = [
        "device model calibration (re-derived vs committed):",
        f"  Virtex4 r_base   : {r_base:.4f} ns (committed "
        f"{VIRTEX4_LX200.r_base:.4f})",
        f"  Virtex4 r_fanout : {r_fanout:.6f} ns (committed "
        f"{VIRTEX4_LX200.r_fanout:.6f})",
        f"  VirtexE scale    : {scale:.4f}x (committed "
        f"{VIRTEXE_2000.t_lut / VIRTEX4_LX200.t_lut:.4f}x)",
    ]
    return "\n".join(lines)
