"""FPGA device models: area (4-LUT technology mapping) and timing.

This package substitutes for the paper's vendor tool flow (Synplify
Pro + Xilinx ISE place & route): a constant sweep and greedy 4-input
LUT covering produce the LUT counts of Table 1, and a
fanout-aware wire-delay model produces the frequency curve of
Fig. 15. The model constants per device are calibrated against the
two published design points; everything else (LUT counts, fanouts,
logic depths) is computed from the actual generated netlist.
"""

from repro.fpga.device import DEVICES, Device, get_device
from repro.fpga.techmap import TechMapResult, techmap
from repro.fpga.timing import TimingReport, analyze_timing
from repro.fpga.report import UtilizationReport, implement

__all__ = [
    "DEVICES",
    "Device",
    "TechMapResult",
    "TimingReport",
    "UtilizationReport",
    "analyze_timing",
    "get_device",
    "implement",
    "techmap",
]
