"""Greedy 4-input LUT technology mapping.

Produces the "# of LUTs" column of the paper's Table 1 from the
generated netlist. The mapper follows standard FPGA synthesis
practice at the granularity the paper reports:

1. **Constant sweep** — constants are propagated through gates and
   registers (the encoder's padding subtrees disappear here, as they
   would in Synplify);
2. **Dead-logic sweep** — only cones reaching an output port or a live
   register survive;
3. **Polarity collapse** — inverters and buffers are absorbed into LUT
   inputs/outputs (LUTs implement any function of their inputs, so
   NOT/BUF are free);
4. **Decomposition** — wide AND/OR gates become balanced trees of
   ≤4-input nodes;
5. **Greedy covering** — single-fanout fanin nodes are absorbed into
   their consumer while the distinct-leaf count stays ≤ 4 (a light
   FlowMap-style packing).

Flip-flops ride in the same slice as a LUT on the target parts, so
registers add no LUTs; a register whose D input is a bare inverted
signal costs one pass-through LUT.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rtl.netlist import Gate, GateKind, Net, Netlist, Register

#: Literal: (net uid, polarity). Polarity False = inverted.
_Lit = tuple[int, bool]


@dataclass
class LutNode:
    """One mapped LUT: a function of up to four leaf literals."""

    output: int  # net uid whose logic this LUT computes
    leaves: tuple[int, ...]  # leaf net uids (after polarity collapse)

    @property
    def n_inputs(self) -> int:
        return len(self.leaves)


@dataclass
class TechMapResult:
    """Outcome of mapping a netlist onto 4-input LUTs."""

    netlist: Netlist
    luts: list[LutNode]
    n_registers: int
    #: swept as constant or dead, for reporting
    n_swept_gates: int
    n_swept_registers: int
    #: mapped fanout per net uid: number of LUT/FF sinks after covering
    lut_fanout: dict[int, int] = field(default_factory=dict)

    @property
    def n_luts(self) -> int:
        return len(self.luts)

    def max_fanout(self) -> tuple[str, int]:
        """Highest-fanout net after mapping (name, fanout)."""
        if not self.lut_fanout:
            return ("", 0)
        uid = max(self.lut_fanout, key=lambda u: self.lut_fanout[u])
        return (self.netlist.nets[uid].name, self.lut_fanout[uid])

    def fanout_histogram(self, top: int = 10) -> list[tuple[str, int]]:
        ranked = sorted(
            self.lut_fanout.items(), key=lambda kv: kv[1], reverse=True
        )
        return [(self.netlist.nets[uid].name, f) for uid, f in ranked[:top]]


def techmap(netlist: Netlist, lut_inputs: int = 4) -> TechMapResult:
    """Map ``netlist`` onto ``lut_inputs``-input LUTs."""
    mapper = _Mapper(netlist, lut_inputs)
    return mapper.run()


class _Mapper:
    def __init__(self, netlist: Netlist, lut_inputs: int) -> None:
        self.netlist = netlist
        self.k = lut_inputs
        #: net uid -> 0/1 when known constant
        self.constants: dict[int, int] = {}
        #: net uid -> (root uid, polarity) after buffer/inverter collapse
        self.roots: dict[int, _Lit] = {}
        self.gate_of: dict[int, Gate] = {
            gate.output.uid: gate for gate in netlist.gates
        }
        self.register_of: dict[int, Register] = {
            reg.q.uid: reg for reg in netlist.registers
        }

    # ------------------------------------------------------------------
    def run(self) -> TechMapResult:
        self._sweep_constants()
        live_nets = self._mark_live()
        live_registers = [
            reg
            for reg in self.netlist.registers
            if reg.q.uid in live_nets and reg.q.uid not in self.constants
        ]

        nodes, node_inputs = self._decompose(live_nets)
        covered_roots = self._cover(nodes, node_inputs, live_registers)
        luts = [
            LutNode(output=uid, leaves=tuple(sorted(leaves)))
            for uid, leaves in covered_roots.items()
        ]

        # A live register fed by a bare inversion needs a route-through
        # LUT for the inverter (no logic node exists to host it).
        extra = 0
        for register in live_registers:
            uid, polarity = self._root_of(register.d.uid)
            if not polarity and uid not in covered_roots and uid not in self.constants:
                driver = self.netlist.nets[uid].driver
                if not isinstance(driver, Gate):
                    extra += 1
        for _ in range(extra):
            luts.append(LutNode(output=-1, leaves=()))

        fanout = self._mapped_fanout(covered_roots, live_registers, live_nets)
        return TechMapResult(
            netlist=self.netlist,
            luts=luts,
            n_registers=len(live_registers),
            n_swept_gates=len(self.netlist.gates)
            - sum(1 for g in self.netlist.gates if g.output.uid in live_nets),
            n_swept_registers=len(self.netlist.registers) - len(live_registers),
            lut_fanout=fanout,
        )

    # ------------------------------------------------------------------
    # pass 1: constants
    # ------------------------------------------------------------------
    def _sweep_constants(self) -> None:
        for net in self.netlist.nets:
            if net.driver == "const0":
                self.constants[net.uid] = 0
            elif net.driver == "const1":
                self.constants[net.uid] = 1
        changed = True
        while changed:
            changed = False
            for gate in self.netlist.gates:
                if gate.output.uid in self.constants:
                    continue
                value = self._gate_constant(gate)
                if value is not None:
                    self.constants[gate.output.uid] = value
                    changed = True
            for register in self.netlist.registers:
                if register.q.uid in self.constants:
                    continue
                d_const = self.constants.get(register.d.uid)
                # A register whose D is constant and equal to its init
                # value never changes; synthesis sweeps it.
                if d_const is not None and d_const == register.init:
                    self.constants[register.q.uid] = d_const
                    changed = True

    def _gate_constant(self, gate: Gate) -> int | None:
        values = [self.constants.get(n.uid) for n in gate.inputs]
        if gate.kind is GateKind.AND:
            if any(v == 0 for v in values):
                return 0
            if all(v == 1 for v in values):
                return 1
        elif gate.kind is GateKind.OR:
            if any(v == 1 for v in values):
                return 1
            if all(v == 0 for v in values):
                return 0
        elif gate.kind is GateKind.NOT:
            if values[0] is not None:
                return 1 - values[0]
        elif gate.kind is GateKind.BUF:
            if values[0] is not None:
                return values[0]
        elif gate.kind is GateKind.XOR:
            if None not in values:
                return values[0] ^ values[1]
        return None

    # ------------------------------------------------------------------
    # pass 2: liveness from outputs
    # ------------------------------------------------------------------
    def _mark_live(self) -> set[int]:
        live: set[int] = set()
        stack = [net.uid for net in self.netlist.outputs.values()]
        while stack:
            uid = stack.pop()
            if uid in live or uid in self.constants:
                continue
            live.add(uid)
            driver = self.netlist.nets[uid].driver
            if isinstance(driver, Gate):
                stack.extend(n.uid for n in driver.inputs)
            elif isinstance(driver, Register):
                stack.append(driver.d.uid)
                if driver.enable is not None:
                    stack.append(driver.enable.uid)
        return live

    # ------------------------------------------------------------------
    # pass 3+4: polarity collapse and decomposition
    # ------------------------------------------------------------------
    def _root_of(self, uid: int) -> _Lit:
        cached = self.roots.get(uid)
        if cached is not None:
            return cached
        driver = self.netlist.nets[uid].driver
        result: _Lit
        if isinstance(driver, Gate) and driver.kind is GateKind.BUF:
            root, polarity = self._root_of(driver.inputs[0].uid)
            result = (root, polarity)
        elif isinstance(driver, Gate) and driver.kind is GateKind.NOT:
            root, polarity = self._root_of(driver.inputs[0].uid)
            result = (root, not polarity)
        else:
            result = (uid, True)
        self.roots[uid] = result
        return result

    def _decompose(
        self, live_nets: set[int]
    ) -> tuple[list[int], dict[int, list[int]]]:
        """Build ≤k-input logic nodes for every live AND/OR/XOR gate.

        Returns (topo-ordered node uids, node -> fanin root uids).
        Wide gates introduce synthetic intermediate nodes (fresh
        negative uids) arranged as balanced trees.
        """
        node_inputs: dict[int, list[int]] = {}
        order: list[int] = []
        synthetic = -2  # -1 reserved for inverter route-throughs

        for gate in self.netlist.levelize():
            uid = gate.output.uid
            if uid not in live_nets or uid in self.constants:
                continue
            if gate.kind in (GateKind.BUF, GateKind.NOT):
                continue  # collapsed into polarity
            literals: list[_Lit] = []
            for net in gate.inputs:
                if net.uid in self.constants:
                    continue  # identity after the constant sweep
                literals.append(self._root_of(net.uid))
            if len(literals) == 1 and gate.kind in (GateKind.AND, GateKind.OR):
                # Identity after constant stripping: alias, not a LUT.
                self.roots[uid] = literals[0]
                continue
            fanins = list(dict.fromkeys(root for root, _pol in literals))
            # Balanced tree decomposition down to <= k inputs.
            while len(fanins) > self.k:
                grouped: list[int] = []
                for i in range(0, len(fanins), self.k):
                    chunk = fanins[i : i + self.k]
                    if len(chunk) == 1:
                        grouped.append(chunk[0])
                        continue
                    node_inputs[synthetic] = chunk
                    order.append(synthetic)
                    grouped.append(synthetic)
                    synthetic -= 1
                fanins = grouped
            node_inputs[uid] = fanins
            order.append(uid)
        return order, node_inputs

    # ------------------------------------------------------------------
    # pass 5: greedy covering
    # ------------------------------------------------------------------
    def _cover(
        self,
        order: list[int],
        node_inputs: dict[int, list[int]],
        live_registers: list[Register],
    ) -> dict[int, set[int]]:
        # Fanout among logic nodes + register/output sinks.
        fanout: dict[int, int] = {uid: 0 for uid in order}
        for fanins in node_inputs.values():
            for fanin in fanins:
                if fanin in fanout:
                    fanout[fanin] += 1
        for register in live_registers:
            for net in (register.d, register.enable):
                if net is None:
                    continue
                root, _ = self._root_of(net.uid)
                if root in fanout:
                    fanout[root] += 1
        for net in self.netlist.outputs.values():
            root, _ = self._root_of(net.uid)
            if root in fanout:
                fanout[root] += 1

        absorbed: set[int] = set()
        leaves_of: dict[int, set[int]] = {}
        for uid in order:
            # Start from direct fanins; try to pull in single-fanout
            # logic fanins whole (their own leaf sets).
            current: set[int] = set()
            for fanin in node_inputs[uid]:
                if fanin in leaves_of and fanout.get(fanin, 0) == 1:
                    # Tentatively absorbable — handled below.
                    current.add(fanin)
                else:
                    current.add(fanin)
            # Greedy absorption loop.
            improved = True
            while improved:
                improved = False
                for candidate in sorted(current):
                    if candidate not in leaves_of or candidate in absorbed:
                        continue
                    if fanout.get(candidate, 0) != 1:
                        continue
                    merged = (current - {candidate}) | leaves_of[candidate]
                    if len(merged) <= self.k:
                        current = merged
                        absorbed.add(candidate)
                        improved = True
                        break
            leaves_of[uid] = current

        return {
            uid: leaves
            for uid, leaves in leaves_of.items()
            if uid not in absorbed
        }

    # ------------------------------------------------------------------
    def _mapped_fanout(
        self,
        covered: dict[int, set[int]],
        live_registers: list[Register],
        live_nets: set[int],
    ) -> dict[int, int]:
        fanout: dict[int, int] = {}

        def bump(uid: int) -> None:
            if uid >= 0:  # synthetic nodes have no physical net
                fanout[uid] = fanout.get(uid, 0) + 1

        for leaves in covered.values():
            for leaf in leaves:
                bump(leaf)
        for register in live_registers:
            for net in (register.d, register.enable):
                if net is None:
                    continue
                root, _ = self._root_of(net.uid)
                bump(root)
        return fanout
