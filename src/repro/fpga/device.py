"""FPGA device models.

The paper evaluates on a Xilinx VirtexE 2000 and a Virtex 4 LX200.
Each :class:`Device` carries the architectural facts needed by the
area and timing models:

* 4-input LUTs with a paired flip-flop per slice (both families);
* capacity (total LUTs);
* delay constants: LUT logic delay, clock-to-Q + setup overhead, and
  a linear routing-delay-vs-fanout curve.

The delay constants are *calibrated*, not measured: vendor place &
route is unavailable offline, so the two published anchor points per
family (533 MHz at 300 pattern bytes and 316 MHz at 3000 bytes on the
Virtex 4; 196 MHz at 300 bytes on the VirtexE) pin the constants, and
every other frequency in Table 1 / Fig. 15 is then a prediction of the
model from the actual mapped netlist's fanout structure. DESIGN.md §2
documents this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceError


@dataclass(frozen=True)
class Device:
    """Delay/area model of one FPGA part."""

    name: str
    family: str
    n_luts: int
    lut_inputs: int
    #: LUT logic delay, ns.
    t_lut: float
    #: register clock-to-Q plus setup, ns (lumped).
    t_ff: float
    #: routing delay = r_base + r_fanout * fanout, ns.
    r_base: float
    r_fanout: float

    def route_delay(self, fanout: int) -> float:
        """Routing delay of a net with the given mapped fanout, ns."""
        return self.r_base + self.r_fanout * max(fanout, 1)

    def check_capacity(self, n_luts: int) -> None:
        if n_luts > self.n_luts:
            raise DeviceError(
                f"design needs {n_luts} LUTs but {self.name} has "
                f"only {self.n_luts}"
            )


#: Xilinx Virtex 4 LX200: 178,176 4-input LUTs (89,088 slices x 2).
#: r_base/r_fanout calibrated so the generated XML-RPC tagger hits the
#: paper's two anchors: 533 MHz at the 300-byte point and 316 MHz at
#: the 3000-byte point. With these constants the model independently
#: reproduces the paper's §4.3 observation that the decoded-bit
#: routing delay of the largest grammar is "just under 2 ns" (we get
#: 1.98 ns on the highest-fanout decoded net).
VIRTEX4_LX200 = Device(
    name="Virtex4 LX200",
    family="virtex4",
    n_luts=178_176,
    lut_inputs=4,
    t_lut=0.20,
    t_ff=0.30,
    r_base=0.2346,
    r_fanout=0.0042126,
)

#: Xilinx VirtexE 2000: 38,400 4-input LUTs (19,200 slices x 2).
#: All delays scaled 2.72x from the Virtex 4 constants, pinning the
#: paper's remaining anchor: 196 MHz on the 300-byte design.
_VE_SCALE = 2.7197
VIRTEXE_2000 = Device(
    name="VirtexE 2000",
    family="virtexe",
    n_luts=38_400,
    lut_inputs=4,
    t_lut=0.20 * _VE_SCALE,
    t_ff=0.30 * _VE_SCALE,
    r_base=0.2346 * _VE_SCALE,
    r_fanout=0.0042126 * _VE_SCALE,
)

DEVICES: dict[str, Device] = {
    "virtex4-lx200": VIRTEX4_LX200,
    "virtexe-2000": VIRTEXE_2000,
}


def get_device(name: str) -> Device:
    """Look up a device preset by key (case-insensitive)."""
    device = DEVICES.get(name.lower())
    if device is None:
        raise DeviceError(
            f"unknown device {name!r}; known: {', '.join(sorted(DEVICES))}"
        )
    return device
