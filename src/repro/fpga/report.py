"""Implementation reports: the rows of the paper's Table 1.

:func:`implement` runs the full back-end model — LUT mapping then
static timing — for a generated tagger on a device and returns a
:class:`UtilizationReport` holding exactly the columns the paper
reports: device, frequency (MHz), bandwidth (Gbps), pattern bytes,
LUTs, and LUTs per byte.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.generator import TaggerCircuit
from repro.fpga.device import Device
from repro.fpga.techmap import TechMapResult, techmap
from repro.fpga.timing import TimingReport, analyze_timing


@dataclass
class UtilizationReport:
    """One Table 1 row plus the underlying model artifacts."""

    design: str
    device: Device
    frequency_mhz: float
    bandwidth_gbps: float
    pattern_bytes: int
    n_luts: int
    n_registers: int
    mapping: TechMapResult
    timing: TimingReport

    @property
    def luts_per_byte(self) -> float:
        if self.pattern_bytes == 0:
            return float("nan")
        return self.n_luts / self.pattern_bytes

    @property
    def utilization(self) -> float:
        """Fraction of the device's LUTs consumed."""
        return self.n_luts / self.device.n_luts

    def row(self) -> tuple[str, int, float, int, int, float]:
        """(device, MHz, Gbps, bytes, LUTs, LUTs/byte) — Table 1 order."""
        return (
            self.device.name,
            round(self.frequency_mhz),
            round(self.bandwidth_gbps, 2),
            self.pattern_bytes,
            self.n_luts,
            round(self.luts_per_byte, 2),
        )

    def format_row(self) -> str:
        device, mhz, gbps, n_bytes, luts, ratio = self.row()
        return (
            f"{device:<15} {mhz:>5} {gbps:>6.2f} {n_bytes:>7} "
            f"{luts:>6} {ratio:>6.2f}"
        )

    @staticmethod
    def header() -> str:
        return (
            f"{'Device':<15} {'MHz':>5} {'Gbps':>6} {'Bytes':>7} "
            f"{'LUTs':>6} {'L/B':>6}"
        )


def implement(
    circuit: TaggerCircuit,
    device: Device,
    check_capacity: bool = True,
) -> UtilizationReport:
    """Map and time ``circuit`` on ``device``; return the Table 1 row."""
    mapping = techmap(circuit.netlist, lut_inputs=device.lut_inputs)
    if check_capacity:
        device.check_capacity(mapping.n_luts)
    timing = analyze_timing(mapping, device)
    return UtilizationReport(
        design=circuit.grammar.name,
        device=device,
        frequency_mhz=timing.frequency_mhz,
        bandwidth_gbps=timing.bandwidth_gbps,
        pattern_bytes=circuit.pattern_bytes(),
        n_luts=mapping.n_luts,
        n_registers=mapping.n_registers,
        mapping=mapping,
        timing=timing,
    )
