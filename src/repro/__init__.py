"""repro — reproduction of "Context-Free-Grammar based Token Tagger in
Reconfigurable Devices" (Cho, Moscola, Lockwood).

The package turns a context-free grammar into a simulated FPGA token
tagger: a gate-level netlist of character decoders, regex tokenizer
chains, Follow-set control flow and a pipelined index encoder, plus
the area (LUT) and timing (frequency/bandwidth) models that regenerate
the paper's Table 1 and Figure 15.

Quickstart
----------
>>> from repro import BehavioralTagger, grammar_from_yacc
>>> g = grammar_from_yacc('''
... %%
... E: "if" C "then" E "else" E | "go" | "stop";
... C: "true" | "false";
... ''')
>>> tagger = BehavioralTagger(g)
>>> [t.token for t in tagger.tag(b"if true then go else stop")]
['if', 'true', 'then', 'go', 'else', 'stop']
"""

from repro.core import (
    BehavioralTagger,
    BufferedSession,
    GateLevelTagger,
    StreamSession,
    TaggedToken,
    TaggerCircuit,
    TaggerGenerator,
    TaggerOptions,
    TokenTagger,
)
from repro.core.backend import Backend, TaggingPipeline
from repro.core.stack import StackTagger
from repro.core.wide import WideGateLevelTagger, WideTaggerGenerator
from repro.core.decoder import DecoderOptions
from repro.core.tokenizer import TokenizerTemplateOptions
from repro.core.wiring import WiringOptions
from repro.errors import ReproError
from repro.fpga import Device, get_device, implement, techmap
from repro.grammar import Grammar, LexSpec
from repro.grammar.dtd import dtd_to_grammar, parse_dtd
from repro.grammar.yacc_parser import load_yacc_grammar, parse_yacc_grammar
from repro.rtl import Netlist, Simulator, emit_vhdl
from repro.service import (
    CompiledArtifact,
    MetricsRegistry,
    QueueFull,
    Registry,
    RouterSpec,
    ScanService,
    TaggerSpec,
)

__version__ = "1.0.0"

#: Friendly alias used throughout the examples.
grammar_from_yacc = parse_yacc_grammar
grammar_from_dtd = dtd_to_grammar

__all__ = [
    "Backend",
    "BehavioralTagger",
    "BufferedSession",
    "CompiledArtifact",
    "DecoderOptions",
    "Device",
    "GateLevelTagger",
    "Grammar",
    "LexSpec",
    "MetricsRegistry",
    "Netlist",
    "QueueFull",
    "Registry",
    "ReproError",
    "RouterSpec",
    "ScanService",
    "Simulator",
    "StackTagger",
    "StreamSession",
    "TaggedToken",
    "TaggerCircuit",
    "TaggerGenerator",
    "TaggerOptions",
    "TaggerSpec",
    "TaggingPipeline",
    "TokenTagger",
    "TokenizerTemplateOptions",
    "WideGateLevelTagger",
    "WideTaggerGenerator",
    "WiringOptions",
    "__version__",
    "dtd_to_grammar",
    "emit_vhdl",
    "get_device",
    "grammar_from_dtd",
    "grammar_from_yacc",
    "implement",
    "load_yacc_grammar",
    "parse_dtd",
    "parse_yacc_grammar",
    "techmap",
]
