"""The paper's example grammars, built in.

* :func:`balanced_parens` — Fig. 1, "0 with balanced parenthesis".
* :func:`if_then_else` — Fig. 9, the grammar used to illustrate the
  Follow-set wiring (Figs. 10–11).
* :func:`xmlrpc` — Fig. 14, the Yacc-style XML-RPC grammar.
* :data:`XMLRPC_DTD` / :func:`xmlrpc_from_dtd` — Fig. 13 and its
  automatic conversion.

Two deviations from the literal Fig. 14 text, both documented here
because the figure as printed cannot be processed:

1. Fig. 14's ``struct`` rule references ``member_list`` but never
   defines it; we add the right-recursive list rule implied by the
   DTD's ``(member+)``, written in LL(1) form (one mandatory member
   followed by an epsilon-or-more tail) so the software predictive
   parser baselines can consume the same grammar.
2. Fig. 14 writes ``BASE64`` as a single character class
   ``[+/A-Za-z0-9]`` although base64 payloads are multi-character; we
   append ``+`` as the DTD's ``#PCDATA`` requires. Similarly the dot
   in ``DOUBLE`` is escaped (``\\.``) since Lex's bare ``.`` matches
   any character.
"""

from __future__ import annotations

from repro.grammar.cfg import Grammar
from repro.grammar.dtd import dtd_to_grammar
from repro.grammar.yacc_parser import parse_yacc_grammar

#: Fig. 1 — "0" with balanced parentheses. The paper collapses this
#: push-down automaton into the finite automaton of Fig. 2b.
BALANCED_PARENS_TEXT = """\
%%
E: "(" E ")" | "0";
%%
"""

#: Fig. 9 — the if-then-else statement grammar.
IF_THEN_ELSE_TEXT = """\
%%
E: "if" C "then" E "else" E | "go" | "stop";
C: "true" | "false";
%%
"""

#: Fig. 14 — Yacc-style grammar for XML-RPC (with the fixes noted in
#: the module docstring).
XMLRPC_GRAMMAR_TEXT = """\
STRING            [a-zA-Z0-9]+
INT               [+-]?[0-9]+
DOUBLE            [+-]?[0-9]+\\.[0-9]+
YEAR              [0-9][0-9][0-9][0-9]
MONTH, DAY        [0-9][0-9]
HOUR, MIN, SEC    [0-9][0-9]
BASE64            [+/A-Za-z0-9]+
%%
methodCall: "<methodCall>" methodName params "</methodCall>";
methodName: "<methodName>" STRING "</methodName>";
params:     "<params>" param "</params>";
param:      | "<param>" value "</param>" param;
value:      i4 | int | string | dateTime | double
            | base64 | struct | array;
i4:         "<i4>" INT "</i4>";
int:        "<int>" INT "</int>";
string:     "<string>" STRING "</string>";
dateTime:   "<dateTime.iso8601>" YEAR MONTH DAY
            `T' HOUR `:' MIN `:' SEC "</dateTime.iso8601>";
double:     "<double>" DOUBLE "</double>";
base64:     "<base64>" BASE64 "</base64>";
struct:     "<struct>" member member_list "</struct>";
member_list: | member member_list;
member:     "<member>" name value "</member>";
name:       "<name>" STRING "</name>";
array:      "<array>" data "</array>";
data:       | "<data>" value "</data>";
%%
"""

#: Fig. 13 — the DTD for XML-RPC.
XMLRPC_DTD = """\
<!ELEMENT methodCall       (methodName, params)>
<!ELEMENT methodName       (#PCDATA)>
<!ELEMENT params           (param*)>
<!ELEMENT param            (value)>
<!ELEMENT value            (i4|int|string|
   dateTime.iso8601|double|base64|struct|array)>
<!ELEMENT i4               (#PCDATA)>
<!ELEMENT int              (#PCDATA)>
<!ELEMENT string           (#PCDATA)>
<!ELEMENT dateTime.iso8601 (#PCDATA)>
<!ELEMENT double           (#PCDATA)>
<!ELEMENT base64           (#PCDATA)>
<!ELEMENT array            (data)>
<!ELEMENT data             (value*)>
<!ELEMENT struct           (member+)>
<!ELEMENT member           (name, value)>
<!ELEMENT name             (#PCDATA)>
"""

#: Fig. 14's #PCDATA token assignments, used when converting Fig. 13.
XMLRPC_PCDATA_PATTERNS = {
    "methodName": ("STRING", "[a-zA-Z0-9]+"),
    "i4": ("INT", "[+-]?[0-9]+"),
    "int": ("INT", "[+-]?[0-9]+"),
    "string": ("STRING", "[a-zA-Z0-9]+"),
    "dateTime.iso8601": ("DATETIME", "[0-9]{8}T[0-9]{2}:[0-9]{2}:[0-9]{2}"),
    "double": ("DOUBLE", "[+-]?[0-9]+\\.[0-9]+"),
    "base64": ("BASE64", "[+/A-Za-z0-9]+"),
    "name": ("STRING", "[a-zA-Z0-9]+"),
}


def balanced_parens() -> Grammar:
    """Fig. 1: ``E → ( E ) | 0``."""
    return parse_yacc_grammar(BALANCED_PARENS_TEXT, name="balanced-parens")


def if_then_else() -> Grammar:
    """Fig. 9: ``E → if C then E else E | go | stop``, ``C → true | false``."""
    return parse_yacc_grammar(IF_THEN_ELSE_TEXT, name="if-then-else")


def xmlrpc() -> Grammar:
    """Fig. 14: the XML-RPC grammar driving the §4 implementation."""
    return parse_yacc_grammar(XMLRPC_GRAMMAR_TEXT, name="xml-rpc")


def xmlrpc_from_dtd() -> Grammar:
    """Fig. 13 converted automatically, as §4.1 describes."""
    return dtd_to_grammar(
        XMLRPC_DTD,
        root="methodCall",
        pcdata_patterns=XMLRPC_PCDATA_PATTERNS,
        name="xml-rpc-from-dtd",
    )
