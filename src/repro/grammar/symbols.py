"""Grammar symbols: terminals, non-terminals, and the end marker.

Terminology follows the paper (§3.1): a CFG "consists of tokens,
non-terminals, a start symbol, and productions"; the symbols in the
token list are used as *terminals* in the production list.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Symbol:
    """Base class for grammar symbols; equality is by name and kind."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Terminal(Symbol):
    """A token of the language (an entry of the token list)."""


@dataclass(frozen=True)
class NonTerminal(Symbol):
    """A production variable (left-hand side of productions)."""


#: End-of-input marker. The paper's Fig. 10 writes it as "ε" in the
#: Follow sets of tokens that may end a sentence; the parser-generator
#: literature writes "$". It behaves as a terminal in Follow sets only.
END = Terminal("$end")

#: The empty string, used when displaying epsilon productions.
EPSILON = Symbol("ε")
