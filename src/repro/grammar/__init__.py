"""Context-free-grammar substrate.

Symbols, productions, the nullable/FIRST/FOLLOW analysis of the paper's
Fig. 8, a Lex-style token specification, front-ends for Yacc-style
grammar files (Fig. 14) and DTDs (Fig. 13), and the built-in example
grammars used throughout the paper.
"""

from repro.grammar.symbols import EPSILON, NonTerminal, Symbol, Terminal
from repro.grammar.cfg import Grammar, Production
from repro.grammar.lexspec import LexSpec, TokenDef
from repro.grammar.analysis import GrammarAnalysis, analyze_grammar
from repro.grammar.yacc_parser import parse_yacc_grammar
from repro.grammar.writer import save_yacc_grammar, write_yacc_grammar
from repro.grammar.dtd import dtd_to_grammar, parse_dtd

__all__ = [
    "EPSILON",
    "Grammar",
    "GrammarAnalysis",
    "LexSpec",
    "NonTerminal",
    "Production",
    "Symbol",
    "Terminal",
    "TokenDef",
    "analyze_grammar",
    "dtd_to_grammar",
    "parse_dtd",
    "parse_yacc_grammar",
    "save_yacc_grammar",
    "write_yacc_grammar",
]
