"""DTD parsing and DTD → BNF conversion (the paper's Fig. 13 → Fig. 14).

"Before we can automatically generate VHDL to parse XML-RPC messages,
the DTD … is first converted into a grammar in Bachus Naur Form (BNF)
which is compatible with our code generator implementation." (§4.1)

:func:`parse_dtd` reads ``<!ELEMENT name (content)>`` declarations into
a content-model AST; :func:`dtd_to_grammar` lowers them to a
:class:`~repro.grammar.cfg.Grammar`: every element ``e`` becomes

    e: "<e>" <content> "</e>";

``#PCDATA`` becomes a token whose pattern defaults to the paper's
``STRING`` (``[a-zA-Z0-9]+``) and can be overridden per element, which
is how Fig. 14 assigns ``INT`` to ``<i4>``, ``DOUBLE`` to ``<double>``
and so on. The XML repetition operators lower to fresh helper
non-terminals exactly the way Fig. 14 writes ``param`` and ``data``
(right-recursive list rules with an epsilon alternative).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Union

from repro.errors import DTDSyntaxError
from repro.grammar.cfg import Grammar
from repro.grammar.lexspec import LexSpec
from repro.grammar.symbols import NonTerminal, Symbol, Terminal

_ELEMENT_DECL = re.compile(
    r"<!ELEMENT\s+(?P<name>[A-Za-z_][\w.\-]*)\s+(?P<content>.*?)>",
    re.DOTALL,
)
_COMMENT = re.compile(r"<!--.*?-->", re.DOTALL)

#: Default #PCDATA pattern: the paper's STRING token.
DEFAULT_PCDATA_PATTERN = "[a-zA-Z0-9]+"


# ----------------------------------------------------------------------
# content-model AST
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PCData:
    """``#PCDATA`` — character data."""

    def __str__(self) -> str:
        return "#PCDATA"


@dataclass(frozen=True)
class ElementRef:
    """A child element reference."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ContentSeq:
    """``(a, b, c)`` — ordered sequence."""

    items: tuple["Content", ...]

    def __str__(self) -> str:
        return "(" + ", ".join(str(i) for i in self.items) + ")"


@dataclass(frozen=True)
class ContentChoice:
    """``(a | b | c)`` — alternatives."""

    options: tuple["Content", ...]

    def __str__(self) -> str:
        return "(" + " | ".join(str(o) for o in self.options) + ")"


@dataclass(frozen=True)
class ContentRepeat:
    """``x?``, ``x*`` or ``x+``."""

    item: "Content"
    operator: str  # one of "?", "*", "+"

    def __str__(self) -> str:
        return f"{self.item}{self.operator}"


@dataclass(frozen=True)
class EmptyContent:
    """``EMPTY`` declared content."""

    def __str__(self) -> str:
        return "EMPTY"


Content = Union[PCData, ElementRef, ContentSeq, ContentChoice, ContentRepeat, EmptyContent]


# ----------------------------------------------------------------------
# DTD text -> content models
# ----------------------------------------------------------------------
class _ContentParser:
    def __init__(self, text: str, element: str) -> None:
        self.text = text
        self.pos = 0
        self.element = element

    def error(self, message: str) -> DTDSyntaxError:
        return DTDSyntaxError(
            f"element {self.element!r}: {message} "
            f"(near {self.text[self.pos:self.pos + 12]!r})"
        )

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def parse(self) -> Content:
        self.skip_ws()
        if self.text[self.pos:].strip() == "EMPTY":
            return EmptyContent()
        if self.text[self.pos:].strip() == "ANY":
            raise self.error("ANY content is not supported")
        node = self.group()
        self.skip_ws()
        if self.pos != len(self.text):
            raise self.error("trailing characters after content model")
        return node

    def group(self) -> Content:
        self.skip_ws()
        if self.peek() != "(":
            raise self.error("expected '('")
        self.pos += 1
        items = [self.item()]
        self.skip_ws()
        separator = ""
        while self.peek() and self.peek() in ",|":
            char = self.peek()
            if separator and char != separator:
                raise self.error("cannot mix ',' and '|' in one group")
            separator = char
            self.pos += 1
            items.append(self.item())
            self.skip_ws()
        if self.peek() != ")":
            raise self.error("expected ')'")
        self.pos += 1
        node: Content
        if separator == "|":
            node = ContentChoice(tuple(items))
        elif len(items) == 1:
            node = items[0]
        else:
            node = ContentSeq(tuple(items))
        return self.suffix(node)

    def item(self) -> Content:
        self.skip_ws()
        if self.peek() == "(":
            return self.group()
        if self.text.startswith("#PCDATA", self.pos):
            self.pos += len("#PCDATA")
            return PCData()
        match = re.match(r"[A-Za-z_][\w.\-]*", self.text[self.pos:])
        if match is None:
            raise self.error("expected an element name")
        self.pos += match.end()
        return self.suffix(ElementRef(match.group()))

    def suffix(self, node: Content) -> Content:
        if self.peek() and self.peek() in "?*+":
            operator = self.peek()
            self.pos += 1
            return ContentRepeat(node, operator)
        return node


def parse_dtd(text: str) -> dict[str, Content]:
    """Parse ``<!ELEMENT>`` declarations into content models.

    Declaration order is preserved (Python dicts are ordered); the
    first element is treated as the document root by default.
    """
    text = _COMMENT.sub("", text)
    declarations: dict[str, Content] = {}
    for match in _ELEMENT_DECL.finditer(text):
        name = match.group("name")
        if name in declarations:
            raise DTDSyntaxError(f"element {name!r} declared twice")
        declarations[name] = _ContentParser(
            match.group("content").strip(), name
        ).parse()
    if not declarations:
        raise DTDSyntaxError("no <!ELEMENT> declarations found")
    return declarations


# ----------------------------------------------------------------------
# content models -> Grammar
# ----------------------------------------------------------------------
def dtd_to_grammar(
    declarations: dict[str, Content] | str,
    root: str | None = None,
    pcdata_patterns: dict[str, tuple[str, str]] | None = None,
    name: str = "dtd",
) -> Grammar:
    """Lower a DTD to a BNF grammar with literal tag tokens.

    ``pcdata_patterns`` maps element name → (token name, regex text),
    overriding the default ``STRING``/``[a-zA-Z0-9]+`` for elements
    whose character data has a more specific shape (Fig. 14 uses INT,
    DOUBLE, BASE64, …).

    >>> g = dtd_to_grammar("<!ELEMENT note (#PCDATA)>")
    >>> [str(p) for p in g.productions]
    ['note → <note> STRING </note>']
    """
    if isinstance(declarations, str):
        declarations = parse_dtd(declarations)
    pcdata_patterns = pcdata_patterns or {}

    lexspec = LexSpec()
    grammar = Grammar(name, lexspec)
    defined_tokens: dict[str, str] = {}

    def pcdata_terminal(element: str) -> Terminal:
        token_name, pattern = pcdata_patterns.get(
            element, ("STRING", DEFAULT_PCDATA_PATTERN)
        )
        known = defined_tokens.get(token_name)
        if known is None:
            lexspec.define(token_name, pattern)
            defined_tokens[token_name] = pattern
        elif known != pattern:
            raise DTDSyntaxError(
                f"token {token_name!r} mapped to two patterns "
                f"({known!r} vs {pattern!r})"
            )
        return Terminal(token_name)

    helper_count = 0

    def fresh_helper(base: str) -> NonTerminal:
        nonlocal helper_count
        helper_count += 1
        return NonTerminal(f"{base}_rep{helper_count}")

    pending: list[tuple[NonTerminal, Content, str]] = []

    def lower(content: Content, element: str) -> list[Symbol]:
        """Lower a content model to a symbol sequence, queueing helper
        rules for repetition/choice as needed."""
        if isinstance(content, EmptyContent):
            return []
        if isinstance(content, PCData):
            return [pcdata_terminal(element)]
        if isinstance(content, ElementRef):
            if content.name not in declarations:
                raise DTDSyntaxError(
                    f"element {content.name!r} referenced but not declared"
                )
            return [NonTerminal(content.name)]
        if isinstance(content, ContentSeq):
            symbols: list[Symbol] = []
            for item in content.items:
                symbols.extend(lower(item, element))
            return symbols
        if isinstance(content, (ContentChoice, ContentRepeat)):
            helper = fresh_helper(element)
            pending.append((helper, content, element))
            return [helper]
        raise DTDSyntaxError(f"unsupported content model node: {content!r}")

    # Element rules in declaration order: e -> "<e>" content "</e>".
    for element, content in declarations.items():
        lexspec.define_literal(f"<{element}>")
        lexspec.define_literal(f"</{element}>")
        body = lower(content, element)
        grammar.add(
            NonTerminal(element),
            [Terminal(f"<{element}>"), *body, Terminal(f"</{element}>")],
        )

    # Helper rules for choices and repetitions (right-recursive lists,
    # matching the shape of Fig. 14's `param` and `data` rules).
    while pending:
        helper, content, element = pending.pop(0)
        if isinstance(content, ContentChoice):
            for option in content.options:
                grammar.add(helper, lower(option, element))
        elif isinstance(content, ContentRepeat):
            body = lower(content.item, element)
            if content.operator == "?":
                grammar.add(helper, [])
                grammar.add(helper, body)
            elif content.operator == "*":
                grammar.add(helper, [])
                grammar.add(helper, [*body, helper])
            else:  # "+"
                tail = fresh_helper(element)
                grammar.add(helper, [*body, tail])
                grammar.add(tail, [])
                grammar.add(tail, [*body, tail])
        else:  # pragma: no cover - only choice/repeat are queued
            raise DTDSyntaxError(f"bad helper content: {content!r}")

    root_name = root if root is not None else next(iter(declarations))
    if root_name not in declarations:
        raise DTDSyntaxError(f"root element {root_name!r} not declared")
    grammar.start = NonTerminal(root_name)
    grammar.validate()
    return grammar
