"""Lexical specification: the grammar's token list.

"The input data is scanned to determine the sequence of regular
expressions separated by delimiters. These regular expressions are
called the tokens. The token list is often defined separately from the
production list." (§3.1)

A :class:`LexSpec` holds the named token patterns (e.g. ``STRING:
[a-zA-Z0-9]+`` from Fig. 14), the literal keyword tokens that appear
quoted inside productions (e.g. ``"<methodCall>"``), and the delimiter
set that separates tokens in the stream ("In addition to these
decoders, delimiters are also defined for the tokens", §3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GrammarError
from repro.grammar.regex import ast as rx
from repro.grammar.regex.ast import CharClass, Regex
from repro.grammar.regex.parser import parse_regex
from repro.grammar.symbols import Terminal

#: Default delimiter set: whitespace, as in typical Lex token streams.
DEFAULT_DELIMITERS = rx.WHITESPACE


@dataclass(frozen=True)
class TokenDef:
    """A named token pattern.

    ``is_literal`` marks tokens created from quoted strings in the
    production list; their name is the quoted text itself.
    """

    name: str
    pattern: Regex
    is_literal: bool = False
    source: str | None = None

    @property
    def terminal(self) -> Terminal:
        return Terminal(self.name)

    def fixed_text(self) -> bytes | None:
        """The exact byte string when the pattern is a literal string."""
        return rx.fixed_string(self.pattern)

    def pattern_bytes(self) -> int:
        """Pattern-byte contribution (the Table 1 '# of Bytes' metric)."""
        return rx.pattern_byte_count(self.pattern)

    def __str__(self) -> str:
        return f"{self.name}: {self.pattern}"


@dataclass
class LexSpec:
    """Ordered collection of token definitions plus the delimiter class."""

    tokens: list[TokenDef] = field(default_factory=list)
    delimiters: CharClass = DEFAULT_DELIMITERS

    def __post_init__(self) -> None:
        self._by_name = {token.name: token for token in self.tokens}
        if len(self._by_name) != len(self.tokens):
            raise GrammarError("duplicate token names in lexical specification")

    # ------------------------------------------------------------------
    def define(
        self, name: str, pattern: str | Regex, source: str | None = None
    ) -> TokenDef:
        """Add a named token; ``pattern`` may be regex text or an AST."""
        if name in self._by_name:
            raise GrammarError(f"token {name!r} already defined")
        if isinstance(pattern, str):
            token = TokenDef(name, parse_regex(pattern), source=pattern)
        else:
            token = TokenDef(name, pattern, source=source)
        self.tokens.append(token)
        self._by_name[name] = token
        return token

    def define_literal(self, text: str) -> TokenDef:
        """Add (or fetch) the literal keyword token for quoted ``text``."""
        existing = self._by_name.get(text)
        if existing is not None:
            if not existing.is_literal:
                raise GrammarError(
                    f"literal {text!r} collides with a named token"
                )
            return existing
        token = TokenDef(text, rx.literal_string(text), is_literal=True, source=text)
        self.tokens.append(token)
        self._by_name[text] = token
        return token

    # ------------------------------------------------------------------
    def get(self, name: str) -> TokenDef:
        token = self._by_name.get(name)
        if token is None:
            raise GrammarError(f"unknown token {name!r}")
        return token

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self):
        return iter(self.tokens)

    def __len__(self) -> int:
        return len(self.tokens)

    # ------------------------------------------------------------------
    def is_delimiter(self, byte: int) -> bool:
        return self.delimiters.contains(byte)

    def total_pattern_bytes(self) -> int:
        """Sum of pattern bytes over all tokens (Table 1 '# of Bytes')."""
        return sum(token.pattern_bytes() for token in self.tokens)

    def describe(self) -> str:
        lines = [str(token) for token in self.tokens]
        lines.append(f"delimiters: {self.delimiters}")
        return "\n".join(lines)
