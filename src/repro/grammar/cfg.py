"""Context-free grammar object model.

A :class:`Grammar` couples a production list with the token list
(:class:`~repro.grammar.lexspec.LexSpec`) exactly as the paper's code
generator consumes them (Fig. 14 shows the combined Yacc-style file).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GrammarError
from repro.grammar.lexspec import LexSpec
from repro.grammar.symbols import NonTerminal, Symbol, Terminal


@dataclass(frozen=True)
class Production:
    """One production ``lhs -> rhs``; an empty ``rhs`` is epsilon."""

    index: int
    lhs: NonTerminal
    rhs: tuple[Symbol, ...]

    def __str__(self) -> str:
        right = " ".join(str(s) for s in self.rhs) if self.rhs else "ε"
        return f"{self.lhs} → {right}"


class Grammar:
    """A context-free grammar with an attached lexical specification.

    Productions are added with :meth:`add`; symbols on the right-hand
    side are :class:`Terminal`/:class:`NonTerminal` instances. Every
    terminal must exist in the lex spec (quoted literals are registered
    automatically by the Yacc front-end).

    Example
    -------
    >>> from repro.grammar.lexspec import LexSpec
    >>> lex = LexSpec()
    >>> _ = lex.define_literal("go")
    >>> g = Grammar("toy", lex)
    >>> E = NonTerminal("E")
    >>> _ = g.add(E, [Terminal("go")])
    >>> g.start = E
    >>> g.validate()
    """

    def __init__(self, name: str, lexspec: LexSpec | None = None) -> None:
        self.name = name
        self.lexspec = lexspec if lexspec is not None else LexSpec()
        self.productions: list[Production] = []
        self.start: NonTerminal | None = None
        self._by_lhs: dict[NonTerminal, list[Production]] = {}

    # ------------------------------------------------------------------
    def add(self, lhs: NonTerminal, rhs: list[Symbol] | tuple[Symbol, ...]) -> Production:
        """Append a production; the first LHS becomes the start symbol."""
        production = Production(len(self.productions), lhs, tuple(rhs))
        self.productions.append(production)
        self._by_lhs.setdefault(lhs, []).append(production)
        if self.start is None:
            self.start = lhs
        return production

    def productions_for(self, lhs: NonTerminal) -> list[Production]:
        return self._by_lhs.get(lhs, [])

    # ------------------------------------------------------------------
    @property
    def nonterminals(self) -> list[NonTerminal]:
        """Non-terminals in order of first definition."""
        seen: dict[NonTerminal, None] = {}
        for production in self.productions:
            seen.setdefault(production.lhs, None)
        return list(seen)

    @property
    def terminals(self) -> list[Terminal]:
        """Terminals in token-list order (this fixes encoder indices)."""
        return [token.terminal for token in self.lexspec]

    def used_terminals(self) -> list[Terminal]:
        """Terminals that actually appear in some production."""
        seen: dict[Terminal, None] = {}
        for production in self.productions:
            for symbol in production.rhs:
                if isinstance(symbol, Terminal):
                    seen.setdefault(symbol, None)
        return list(seen)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`GrammarError` on structural problems."""
        if self.start is None or not self.productions:
            raise GrammarError(f"grammar {self.name!r} has no productions")
        defined = set(self._by_lhs)
        if self.start not in defined:
            raise GrammarError(f"start symbol {self.start} has no productions")
        for production in self.productions:
            for symbol in production.rhs:
                if isinstance(symbol, NonTerminal):
                    if symbol not in defined:
                        raise GrammarError(
                            f"non-terminal {symbol} used in {production} "
                            "but never defined"
                        )
                elif isinstance(symbol, Terminal):
                    if symbol.name not in self.lexspec:
                        raise GrammarError(
                            f"terminal {symbol} of {production} missing "
                            "from the token list"
                        )
                else:
                    raise GrammarError(f"bad symbol {symbol!r} in {production}")
        self._check_reachable()

    def _check_reachable(self) -> None:
        assert self.start is not None
        reached: set[NonTerminal] = set()
        stack = [self.start]
        while stack:
            current = stack.pop()
            if current in reached:
                continue
            reached.add(current)
            for production in self.productions_for(current):
                for symbol in production.rhs:
                    if isinstance(symbol, NonTerminal) and symbol not in reached:
                        stack.append(symbol)
        unreachable = [nt for nt in self.nonterminals if nt not in reached]
        if unreachable:
            raise GrammarError(
                "unreachable non-terminals: "
                + ", ".join(str(nt) for nt in unreachable)
            )

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Printable listing in the style of the paper's Fig. 1/Fig. 9."""
        lines = [f"grammar {self.name} (start: {self.start})"]
        for production in self.productions:
            lines.append(f"  {production.index + 1:>2} {production}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Grammar({self.name!r}, {len(self.productions)} productions, "
            f"{len(self.lexspec)} tokens)"
        )
