"""Glushkov position automaton for token patterns.

The hardware templates of the paper's Fig. 6 — a register per pattern
character, chained for sequence, looped for One-or-More/Zero-or-More,
bypassed for One-or-None — are precisely the Glushkov (position)
construction of a regular expression: one state per character position,
no epsilon transitions. This module computes the construction's
``first``, ``last`` and ``follow`` sets; the hardware generator then
emits one register per position and one wire per follow edge.

The *extension sets* of the last positions (which bytes could continue
the match) drive the longest-match look-ahead of Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnsupportedPatternError
from repro.grammar.regex.ast import (
    Alt,
    AnyChar,
    CharClass,
    Empty,
    Literal,
    Regex,
    Repeat,
    Seq,
)
from repro.grammar.regex import ast as rx


def normalize_repeats(node: Regex) -> Regex:
    """Expand bounded repeats into copies so only ``?``/``*``/``+`` remain.

    ``x{3}`` becomes ``x x x``; ``x{1,3}`` becomes ``x x? x?``;
    ``x{2,}`` becomes ``x x+`` — mirroring how a hardware generator
    unrolls fixed counts into chain stages (the paper's YEAR token is
    written pre-unrolled as ``[0-9][0-9][0-9][0-9]``).
    """
    if isinstance(node, (Empty, Literal, CharClass, AnyChar)):
        return node
    if isinstance(node, Seq):
        return rx.seq(*(normalize_repeats(item) for item in node.items))
    if isinstance(node, Alt):
        return rx.alt(*(normalize_repeats(option) for option in node.options))
    if isinstance(node, Repeat):
        item = normalize_repeats(node.item)
        key = (node.min_count, node.max_count)
        if key in ((0, 1), (0, None), (1, None)):
            return Repeat(item, *key)
        copies: list[Regex] = [item] * node.min_count
        if node.max_count is None:
            if node.min_count == 0:
                return Repeat(item, 0, None)
            copies[-1] = Repeat(item, 1, None)
        else:
            copies.extend([Repeat(item, 0, 1)] * (node.max_count - node.min_count))
        return rx.seq(*copies)
    raise TypeError(f"not a regex node: {node!r}")


@dataclass
class Glushkov:
    """Position automaton of a pattern.

    * ``position_bytes[p]`` — the byte set position ``p`` matches;
    * ``first`` — positions that may consume the first character;
    * ``last`` — positions whose character may end a match;
    * ``follow[p]`` — positions that may consume the character after
      the one consumed at ``p``;
    * ``nullable`` — whether the empty string matches.
    """

    pattern: Regex
    position_bytes: list[frozenset[int]]
    first: frozenset[int]
    last: frozenset[int]
    follow: dict[int, frozenset[int]]
    nullable: bool

    @property
    def n_positions(self) -> int:
        return len(self.position_bytes)

    # ------------------------------------------------------------------
    # Dense table extraction (for compiled scan engines)
    #
    # The hardware flattens the construction into wires; a software
    # fast path flattens it into integers instead: each byte set
    # becomes a 256-bit mask (bit b set ⇔ the position matches byte
    # b), and first/last/follow become position bitmasks. All results
    # are memoized on the instance — the construction is immutable
    # after :func:`build_glushkov`.
    # ------------------------------------------------------------------
    def byte_masks(self) -> list[int]:
        """256-bit byte-membership mask per position."""
        cached = getattr(self, "_byte_masks", None)
        if cached is None:
            cached = [
                sum(1 << b for b in matched) for matched in self.position_bytes
            ]
            object.__setattr__(self, "_byte_masks", cached)
        return cached

    def first_mask(self) -> int:
        """Position bitmask of ``first``."""
        return sum(1 << p for p in self.first)

    def last_mask(self) -> int:
        """Position bitmask of ``last``."""
        return sum(1 << p for p in self.last)

    def follow_masks(self) -> list[int]:
        """Position bitmask of ``follow[p]`` per position ``p``."""
        cached = getattr(self, "_follow_masks", None)
        if cached is None:
            cached = [
                sum(1 << q for q in self.follow.get(p, ()))
                for p in range(self.n_positions)
            ]
            object.__setattr__(self, "_follow_masks", cached)
        return cached

    def extension_mask(self, position: int) -> int:
        """256-bit byte mask of :meth:`extension_bytes` (memoized)."""
        cached = getattr(self, "_extension_masks", None)
        if cached is None:
            cached = {}
            object.__setattr__(self, "_extension_masks", cached)
        mask = cached.get(position)
        if mask is None:
            mask = sum(1 << b for b in self.extension_bytes(position))
            cached[position] = mask
        return mask

    def extension_bytes(self, position: int) -> frozenset[int]:
        """Bytes that would extend a match ending at ``position``.

        Used for the longest-match check (Fig. 7): a detection at this
        position must be suppressed while the next character lies in
        this set.
        """
        result: set[int] = set()
        for successor in self.follow.get(position, ()):
            result |= self.position_bytes[successor]
        return frozenset(result)

    # ------------------------------------------------------------------
    # NFA-style simulation (reference semantics for tests / oracle)
    # ------------------------------------------------------------------
    def initial_states(self) -> frozenset[int]:
        return self.first

    def step(self, states: frozenset[int], byte: int) -> frozenset[int]:
        """Advance the set of *candidate* positions by one byte.

        A position is a candidate when its byte may be consumed next;
        stepping keeps the candidates that match and activates their
        successors.
        """
        moved: set[int] = set()
        for position in states:
            if byte in self.position_bytes[position]:
                moved.update(self.follow.get(position, ()))
        return frozenset(moved)

    def longest_match(self, data: bytes, start: int = 0) -> int | None:
        """Reference longest-match length (oracle for the hardware)."""
        best: int | None = 0 if self.nullable else None
        active = set(self.first)
        for offset in range(start, len(data)):
            byte = data[offset]
            consumed = {p for p in active if byte in self.position_bytes[p]}
            if not consumed:
                break
            if consumed & self.last:
                best = offset - start + 1
            active = set()
            for position in consumed:
                active |= self.follow.get(position, set())
        return best


def build_glushkov(node: Regex) -> Glushkov:
    """Run the Glushkov construction on a (normalized) pattern.

    Raises :class:`UnsupportedPatternError` for patterns that match the
    empty string — a token that can be empty has no hardware detector
    (and no lexical meaning).
    """
    node = normalize_repeats(node)

    position_bytes: list[frozenset[int]] = []

    def linearize(n: Regex) -> Regex:
        """Replace each char leaf with a positioned marker."""
        if isinstance(n, (Literal, CharClass, AnyChar)):
            matched = (
                frozenset({n.byte}) if isinstance(n, Literal) else n.matched_bytes()
            )
            if not matched:
                raise UnsupportedPatternError(
                    f"pattern position matches no byte: {n}"
                )
            position_bytes.append(matched)
            return _Pos(len(position_bytes) - 1)
        if isinstance(n, Empty):
            return n
        if isinstance(n, Seq):
            return Seq(tuple(linearize(i) for i in n.items))
        if isinstance(n, Alt):
            return Alt(tuple(linearize(o) for o in n.options))
        if isinstance(n, Repeat):
            return Repeat(linearize(n.item), n.min_count, n.max_count)
        raise TypeError(f"not a regex node: {n!r}")

    marked = linearize(node)
    nullable = _nullable(marked)
    if nullable:
        raise UnsupportedPatternError(
            "token pattern matches the empty string; every token must "
            "consume at least one character"
        )
    first = _first(marked)
    last = _last(marked)
    follow: dict[int, set[int]] = {p: set() for p in range(len(position_bytes))}
    _collect_follow(marked, follow)
    return Glushkov(
        pattern=node,
        position_bytes=position_bytes,
        first=frozenset(first),
        last=frozenset(last),
        follow={p: frozenset(s) for p, s in follow.items()},
        nullable=nullable,
    )


#: Memo cache for :func:`build_glushkov_cached`. Regex nodes are
#: frozen dataclasses (hashable by value), so identical patterns —
#: e.g. the same token appearing as several grammar occurrences, or
#: apps rebuilding taggers for the same grammar — share one
#: construction. Pattern sets are small; the cache is unbounded.
_GLUSHKOV_CACHE: dict[Regex, Glushkov] = {}


def build_glushkov_cached(node: Regex) -> Glushkov:
    """Memoized :func:`build_glushkov` (keyed by pattern value)."""
    cached = _GLUSHKOV_CACHE.get(node)
    if cached is None:
        cached = build_glushkov(node)
        _GLUSHKOV_CACHE[node] = cached
    return cached


@dataclass(frozen=True)
class _Pos:
    """A linearized character position (internal marker node)."""

    index: int


def _nullable(n) -> bool:
    if isinstance(n, Empty):
        return True
    if isinstance(n, _Pos):
        return False
    if isinstance(n, Seq):
        return all(_nullable(i) for i in n.items)
    if isinstance(n, Alt):
        return any(_nullable(o) for o in n.options)
    if isinstance(n, Repeat):
        return n.min_count == 0 or _nullable(n.item)
    raise TypeError(f"unexpected node {n!r}")


def _first(n) -> set[int]:
    if isinstance(n, Empty):
        return set()
    if isinstance(n, _Pos):
        return {n.index}
    if isinstance(n, Seq):
        result: set[int] = set()
        for item in n.items:
            result |= _first(item)
            if not _nullable(item):
                break
        return result
    if isinstance(n, Alt):
        result = set()
        for option in n.options:
            result |= _first(option)
        return result
    if isinstance(n, Repeat):
        return _first(n.item)
    raise TypeError(f"unexpected node {n!r}")


def _last(n) -> set[int]:
    if isinstance(n, Empty):
        return set()
    if isinstance(n, _Pos):
        return {n.index}
    if isinstance(n, Seq):
        result: set[int] = set()
        for item in reversed(n.items):
            result |= _last(item)
            if not _nullable(item):
                break
        return result
    if isinstance(n, Alt):
        result = set()
        for option in n.options:
            result |= _last(option)
        return result
    if isinstance(n, Repeat):
        return _last(n.item)
    raise TypeError(f"unexpected node {n!r}")


def _collect_follow(n, follow: dict[int, set[int]]) -> None:
    if isinstance(n, (Empty, _Pos)):
        return
    if isinstance(n, Seq):
        for item in n.items:
            _collect_follow(item, follow)
        # last(prefix) -> first(suffix) across each junction
        for i in range(len(n.items) - 1):
            lasts = _last(n.items[i])
            # first of the remainder, skipping nullable items
            firsts: set[int] = set()
            for j in range(i + 1, len(n.items)):
                firsts |= _first(n.items[j])
                if not _nullable(n.items[j]):
                    break
            for p in lasts:
                follow[p] |= firsts
        return
    if isinstance(n, Alt):
        for option in n.options:
            _collect_follow(option, follow)
        return
    if isinstance(n, Repeat):
        _collect_follow(n.item, follow)
        if n.max_count is None:  # the loop edge of * and +
            firsts = _first(n.item)
            for p in _last(n.item):
                follow[p] |= firsts
        return
    raise TypeError(f"unexpected node {n!r}")
