"""Thompson NFA construction and simulation.

This is the *software oracle* for token patterns: the hardware
templates of Fig. 6 are checked against NFA longest-match semantics in
the test suite. The construction is the textbook one from the paper's
compiler reference [Aho/Sethi/Ullman].
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.grammar.regex.ast import (
    Alt,
    AnyChar,
    CharClass,
    Empty,
    Literal,
    Regex,
    Repeat,
    Seq,
)


@dataclass
class NFA:
    """Epsilon-NFA with a single start and single accept state."""

    start: int
    accept: int
    #: per-state list of (byte_set, target) character transitions
    transitions: list[list[tuple[frozenset[int], int]]] = field(default_factory=list)
    #: per-state list of epsilon targets
    epsilon: list[list[int]] = field(default_factory=list)

    @property
    def n_states(self) -> int:
        return len(self.transitions)

    # ------------------------------------------------------------------
    def epsilon_closure(self, states: set[int]) -> frozenset[int]:
        """All states reachable through epsilon edges."""
        stack = list(states)
        closure = set(states)
        while stack:
            state = stack.pop()
            for target in self.epsilon[state]:
                if target not in closure:
                    closure.add(target)
                    stack.append(target)
        return frozenset(closure)

    def step(self, states: frozenset[int], byte: int) -> frozenset[int]:
        """One byte of subset simulation (closure included)."""
        moved: set[int] = set()
        for state in states:
            for byte_set, target in self.transitions[state]:
                if byte in byte_set:
                    moved.add(target)
        if not moved:
            return frozenset()
        return self.epsilon_closure(moved)

    # ------------------------------------------------------------------
    def matches(self, data: bytes) -> bool:
        """Whether the whole of ``data`` matches."""
        current = self.epsilon_closure({self.start})
        for byte in data:
            current = self.step(current, byte)
            if not current:
                return False
        return self.accept in current

    def longest_match(self, data: bytes, start: int = 0) -> int | None:
        """Length of the longest match beginning at ``start``.

        Returns ``None`` when not even the empty string matches, and
        ``0`` when only the empty string matches.
        """
        current = self.epsilon_closure({self.start})
        best: int | None = 0 if self.accept in current else None
        for offset in range(start, len(data)):
            current = self.step(current, data[offset])
            if not current:
                break
            if self.accept in current:
                best = offset - start + 1
        return best


class _Builder:
    def __init__(self) -> None:
        self.transitions: list[list[tuple[frozenset[int], int]]] = []
        self.epsilon: list[list[int]] = []

    def state(self) -> int:
        self.transitions.append([])
        self.epsilon.append([])
        return len(self.transitions) - 1

    def add_edge(self, src: int, byte_set: frozenset[int], dst: int) -> None:
        self.transitions[src].append((byte_set, dst))

    def add_epsilon(self, src: int, dst: int) -> None:
        self.epsilon[src].append(dst)

    # ------------------------------------------------------------------
    def build(self, node: Regex) -> tuple[int, int]:
        """Return (start, accept) fragment for ``node``."""
        if isinstance(node, Empty):
            start = self.state()
            accept = self.state()
            self.add_epsilon(start, accept)
            return start, accept
        if isinstance(node, Literal):
            return self._char_fragment(frozenset({node.byte}))
        if isinstance(node, (CharClass, AnyChar)):
            return self._char_fragment(node.matched_bytes())
        if isinstance(node, Seq):
            return self._seq_fragment(node.items)
        if isinstance(node, Alt):
            return self._alt_fragment(node.options)
        if isinstance(node, Repeat):
            return self._repeat_fragment(node)
        raise TypeError(f"not a regex node: {node!r}")

    def _char_fragment(self, byte_set: frozenset[int]) -> tuple[int, int]:
        start = self.state()
        accept = self.state()
        self.add_edge(start, byte_set, accept)
        return start, accept

    def _seq_fragment(self, items: tuple[Regex, ...]) -> tuple[int, int]:
        if not items:
            return self.build(Empty())
        start, accept = self.build(items[0])
        for item in items[1:]:
            nxt_start, nxt_accept = self.build(item)
            self.add_epsilon(accept, nxt_start)
            accept = nxt_accept
        return start, accept

    def _alt_fragment(self, options: tuple[Regex, ...]) -> tuple[int, int]:
        start = self.state()
        accept = self.state()
        for option in options:
            o_start, o_accept = self.build(option)
            self.add_epsilon(start, o_start)
            self.add_epsilon(o_accept, accept)
        return start, accept

    def _repeat_fragment(self, node: Repeat) -> tuple[int, int]:
        # Expand the mandatory prefix, then the optional tail.
        start = self.state()
        cursor = start
        for _ in range(node.min_count):
            f_start, f_accept = self.build(node.item)
            self.add_epsilon(cursor, f_start)
            cursor = f_accept
        if node.max_count is None:
            # Kleene loop on one more copy.
            loop_start, loop_accept = self.build(node.item)
            accept = self.state()
            self.add_epsilon(cursor, loop_start)
            self.add_epsilon(cursor, accept)
            self.add_epsilon(loop_accept, loop_start)
            self.add_epsilon(loop_accept, accept)
            return start, accept
        accept = self.state()
        self.add_epsilon(cursor, accept)
        for _ in range(node.max_count - node.min_count):
            f_start, f_accept = self.build(node.item)
            self.add_epsilon(cursor, f_start)
            cursor = f_accept
            self.add_epsilon(cursor, accept)
        return start, accept


def compile_nfa(node: Regex) -> NFA:
    """Compile a regex AST into an epsilon-NFA.

    >>> from repro.grammar.regex.parser import parse_regex
    >>> nfa = compile_nfa(parse_regex("ab+"))
    >>> nfa.matches(b"abbb"), nfa.matches(b"a")
    (True, False)
    """
    builder = _Builder()
    start, accept = builder.build(node)
    return NFA(
        start=start,
        accept=accept,
        transitions=builder.transitions,
        epsilon=builder.epsilon,
    )
