"""Subset-construction DFA with Hopcroft-style minimization.

The DFA backs the fast software lexer baseline
(:mod:`repro.software.lexer`) — the sequential-software counterpart the
paper's parallel hardware is compared against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.grammar.regex.ast import ALPHABET_SIZE, Regex
from repro.grammar.regex.nfa import NFA, compile_nfa

_DEAD = -1


@dataclass
class DFA:
    """Deterministic automaton over the byte alphabet.

    ``table[state * 256 + byte]`` holds the next state or ``-1``.
    """

    n_states: int
    start: int
    accepting: frozenset[int]
    table: list[int]

    def next_state(self, state: int, byte: int) -> int:
        return self.table[state * ALPHABET_SIZE + byte]

    def matches(self, data: bytes) -> bool:
        """Whether the whole of ``data`` matches."""
        state = self.start
        for byte in data:
            state = self.table[state * ALPHABET_SIZE + byte]
            if state == _DEAD:
                return False
        return state in self.accepting

    def longest_match(self, data: bytes, start: int = 0) -> int | None:
        """Length of the longest match beginning at ``start``."""
        state = self.start
        best: int | None = 0 if state in self.accepting else None
        table = self.table
        accepting = self.accepting
        for offset in range(start, len(data)):
            state = table[state * ALPHABET_SIZE + data[offset]]
            if state == _DEAD:
                break
            if state in accepting:
                best = offset - start + 1
        return best


def _subset_construction(nfa: NFA) -> DFA:
    start_set = nfa.epsilon_closure({nfa.start})
    index: dict[frozenset[int], int] = {start_set: 0}
    worklist = [start_set]
    table: list[int] = []
    accepting: set[int] = set()
    if nfa.accept in start_set:
        accepting.add(0)
    while worklist:
        current = worklist.pop()
        state_id = index[current]
        # Group outgoing bytes so each distinct successor set is built once.
        successors: dict[int, set[int]] = {}
        for nfa_state in current:
            for byte_set, target in nfa.transitions[nfa_state]:
                for byte in byte_set:
                    successors.setdefault(byte, set()).add(target)
        row = [_DEAD] * ALPHABET_SIZE
        closure_cache: dict[frozenset[int], frozenset[int]] = {}
        for byte, targets in successors.items():
            key = frozenset(targets)
            closed = closure_cache.get(key)
            if closed is None:
                closed = nfa.epsilon_closure(set(key))
                closure_cache[key] = closed
            next_id = index.get(closed)
            if next_id is None:
                next_id = len(index)
                index[closed] = next_id
                worklist.append(closed)
                if nfa.accept in closed:
                    accepting.add(next_id)
            row[byte] = next_id
        # Rows may be discovered out of order; grow the table as needed.
        needed = (state_id + 1) * ALPHABET_SIZE
        if len(table) < needed:
            table.extend([_DEAD] * (needed - len(table)))
        table[state_id * ALPHABET_SIZE : needed] = row
    total = len(index) * ALPHABET_SIZE
    if len(table) < total:
        table.extend([_DEAD] * (total - len(table)))
    return DFA(
        n_states=len(index),
        start=0,
        accepting=frozenset(accepting),
        table=table,
    )


def _minimize(dfa: DFA) -> DFA:
    """Moore-style partition refinement (adequate for token automata)."""
    n = dfa.n_states
    partition = [1 if s in dfa.accepting else 0 for s in range(n)]
    # The dead state behaves as an extra, permanently non-accepting class.
    while True:
        signatures: dict[tuple, int] = {}
        updated = [0] * n
        for state in range(n):
            row = tuple(
                partition[dfa.table[state * ALPHABET_SIZE + byte]]
                if dfa.table[state * ALPHABET_SIZE + byte] != _DEAD
                else _DEAD
                for byte in range(ALPHABET_SIZE)
            )
            key = (partition[state], row)
            cls = signatures.setdefault(key, len(signatures))
            updated[state] = cls
        if updated == partition:
            break
        partition = updated
    n_classes = max(partition) + 1
    table = [_DEAD] * (n_classes * ALPHABET_SIZE)
    representative: dict[int, int] = {}
    for state in range(n):
        representative.setdefault(partition[state], state)
    for cls, state in representative.items():
        for byte in range(ALPHABET_SIZE):
            target = dfa.table[state * ALPHABET_SIZE + byte]
            table[cls * ALPHABET_SIZE + byte] = (
                partition[target] if target != _DEAD else _DEAD
            )
    accepting = frozenset(partition[s] for s in dfa.accepting)
    return DFA(
        n_states=n_classes,
        start=partition[dfa.start],
        accepting=accepting,
        table=table,
    )


def compile_dfa(node: Regex, minimize: bool = True) -> DFA:
    """Compile a regex AST to a (minimized) DFA.

    >>> from repro.grammar.regex.parser import parse_regex
    >>> dfa = compile_dfa(parse_regex("[0-9]+"))
    >>> dfa.matches(b"2006"), dfa.matches(b"20a6")
    (True, False)
    """
    dfa = _subset_construction(compile_nfa(node))
    return _minimize(dfa) if minimize else dfa
