"""Parser for the Lex-style regular-expression subset.

Grammar of accepted patterns (the notation used by the paper's token
lists, e.g. Fig. 14)::

    regex   := concat ('|' concat)*
    concat  := repeat+
    repeat  := atom ('?' | '*' | '+' | '{' n (',' n?)? '}')*
    atom    := CHAR | '\\' escape | '.' | '!' atom
             | '[' '^'? class-items ']' | '(' regex ')'

``!`` is the single-character *Not* of Fig. 6b and must be applied to a
single-byte atom; it produces a negated character class.
"""

from __future__ import annotations

from repro.errors import RegexSyntaxError
from repro.grammar.regex import ast
from repro.grammar.regex.ast import (
    ALPHABET_SIZE,
    AnyChar,
    CharClass,
    Literal,
    Regex,
    Repeat,
)

_SPECIAL = set("|?*+{}()[].!\\")

_ESCAPE_LITERALS = {
    "n": ord("\n"),
    "t": ord("\t"),
    "r": ord("\r"),
    "f": ord("\f"),
    "v": ord("\v"),
    "0": 0,
}

_ESCAPE_CLASSES = {
    "d": ast.DIGIT,
    "w": CharClass(
        ast.ALNUM.bytes | frozenset({ord("_")}), label="word"
    ),
    "s": ast.WHITESPACE,
}


class _Parser:
    def __init__(self, pattern: str) -> None:
        self.pattern = pattern
        self.pos = 0

    # ------------------------------------------------------------------
    def error(self, message: str) -> RegexSyntaxError:
        return RegexSyntaxError(message, self.pattern, self.pos)

    def peek(self) -> str | None:
        if self.pos < len(self.pattern):
            return self.pattern[self.pos]
        return None

    def take(self) -> str:
        char = self.peek()
        if char is None:
            raise self.error("unexpected end of pattern")
        self.pos += 1
        return char

    def expect(self, char: str) -> None:
        if self.peek() != char:
            raise self.error(f"expected {char!r}")
        self.pos += 1

    # ------------------------------------------------------------------
    def parse(self) -> Regex:
        node = self.alternation()
        if self.pos != len(self.pattern):
            raise self.error(f"unexpected character {self.peek()!r}")
        return node

    def alternation(self) -> Regex:
        options = [self.concatenation()]
        while self.peek() == "|":
            self.take()
            options.append(self.concatenation())
        return ast.alt(*options)

    def concatenation(self) -> Regex:
        items: list[Regex] = []
        while True:
            char = self.peek()
            if char is None or char in "|)":
                break
            items.append(self.repetition())
        if not items:
            return ast.Empty()
        return ast.seq(*items)

    def repetition(self) -> Regex:
        node = self.atom()
        while True:
            char = self.peek()
            if char == "?":
                self.take()
                node = Repeat(node, 0, 1)
            elif char == "*":
                self.take()
                node = Repeat(node, 0, None)
            elif char == "+":
                self.take()
                node = Repeat(node, 1, None)
            elif char == "{":
                node = self.bounded_repeat(node)
            else:
                return node

    def bounded_repeat(self, node: Regex) -> Regex:
        self.expect("{")
        low = self.integer()
        high: int | None = low
        if self.peek() == ",":
            self.take()
            high = None if self.peek() == "}" else self.integer()
        self.expect("}")
        if high is not None and high < low:
            raise self.error("bad repeat bounds")
        return Repeat(node, low, high)

    def integer(self) -> int:
        digits = ""
        while (char := self.peek()) is not None and char.isdigit():
            digits += self.take()
        if not digits:
            raise self.error("expected a number")
        return int(digits)

    # ------------------------------------------------------------------
    def atom(self) -> Regex:
        char = self.peek()
        if char is None:
            raise self.error("unexpected end of pattern")
        if char == "(":
            self.take()
            node = self.alternation()
            self.expect(")")
            return node
        if char == "[":
            return self.char_class()
        if char == ".":
            self.take()
            return AnyChar()
        if char == "!":
            self.take()
            return self.negate(self.atom())
        if char == "\\":
            self.take()
            return self.escape()
        if char in _SPECIAL:
            raise self.error(f"misplaced special character {char!r}")
        self.take()
        return Literal(ord(char))

    def negate(self, node: Regex) -> Regex:
        """Single-character Not (Fig. 6b)."""
        if isinstance(node, Literal):
            return CharClass(frozenset({node.byte}), negated=True)
        if isinstance(node, CharClass):
            return CharClass(node.matched_bytes(), negated=True)
        if isinstance(node, AnyChar):
            raise self.error("'!.' matches nothing")
        raise self.error("'!' applies to a single-character atom only")

    def escape(self) -> Regex:
        char = self.take()
        if char in _ESCAPE_LITERALS:
            return Literal(_ESCAPE_LITERALS[char])
        if char in _ESCAPE_CLASSES:
            return _ESCAPE_CLASSES[char]
        if char == "x":
            hex_digits = self.take() + self.take()
            try:
                value = int(hex_digits, 16)
            except ValueError:
                raise self.error(f"bad hex escape \\x{hex_digits}") from None
            return Literal(value)
        return Literal(ord(char))

    # ------------------------------------------------------------------
    def char_class(self) -> Regex:
        self.expect("[")
        negated = False
        if self.peek() == "^":
            self.take()
            negated = True
        members: set[int] = set()
        first = True
        while True:
            char = self.peek()
            if char is None:
                raise self.error("unterminated character class")
            if char == "]" and not first:
                self.take()
                break
            low = self.class_char()
            if self.peek() == "-" and self.pos + 1 < len(self.pattern) and \
                    self.pattern[self.pos + 1] != "]":
                self.take()  # '-'
                high = self.class_char()
                if high < low:
                    raise self.error("reversed character range")
                members.update(range(low, high + 1))
            else:
                members.add(low)
            first = False
        if any(byte >= ALPHABET_SIZE for byte in members):
            raise self.error("character out of byte range")
        return CharClass(frozenset(members), negated=negated)

    def class_char(self) -> int:
        char = self.take()
        if char == "\\":
            escaped = self.take()
            if escaped in _ESCAPE_LITERALS:
                return _ESCAPE_LITERALS[escaped]
            if escaped == "x":
                return int(self.take() + self.take(), 16)
            return ord(escaped)
        return ord(char)


def parse_regex(pattern: str) -> Regex:
    """Parse a Lex-subset pattern into a :mod:`repro.grammar.regex.ast` tree.

    >>> str(parse_regex("[a-zA-Z0-9]+"))
    '[0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz]+'
    """
    return _Parser(pattern).parse()
