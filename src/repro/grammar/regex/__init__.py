"""Regular-expression substrate for token definitions.

The paper's tokens are "regular expressions separated by delimiters"
(§3.1) written in Lex notation (Fig. 14), and its hardware templates
implement the operators sequence, Not, One-or-None, One-or-More and
Zero-or-More (Fig. 6). This package provides the matching AST, a
parser for the Lex subset, and Thompson-NFA / subset-construction-DFA
software matchers used as the reference oracle.
"""

from repro.grammar.regex.ast import (
    Alt,
    AnyChar,
    CharClass,
    Empty,
    Literal,
    Regex,
    Repeat,
    Seq,
    literal_string,
)
from repro.grammar.regex.parser import parse_regex
from repro.grammar.regex.nfa import NFA, compile_nfa
from repro.grammar.regex.dfa import DFA, compile_dfa

__all__ = [
    "Alt",
    "AnyChar",
    "CharClass",
    "DFA",
    "Empty",
    "Literal",
    "NFA",
    "Regex",
    "Repeat",
    "Seq",
    "compile_dfa",
    "compile_nfa",
    "literal_string",
    "parse_regex",
]
