"""Regular-expression abstract syntax.

The AST models the operator set the paper's hardware templates support
(Fig. 6): character literals, character classes (including the
pre-decoded special classes of Fig. 5), sequence, alternation,
single-character Not (modelled as a negated class), One-or-None (`?`),
One-or-More (`+`) and Zero-or-More (`*`).

All nodes are immutable and hashable so they can key caches in the
hardware generator (shared decoder terms, Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import reduce
from typing import Optional, Union

#: The byte alphabet the hardware decoders operate over (Fig. 4).
ALPHABET_SIZE = 256


def _char_set(chars: str) -> frozenset[int]:
    return frozenset(ord(c) for c in chars)


@dataclass(frozen=True)
class Empty:
    """Matches the empty string (epsilon)."""

    def __str__(self) -> str:
        return "ε"


@dataclass(frozen=True)
class Literal:
    """Matches one exact byte."""

    byte: int

    def __post_init__(self) -> None:
        if not 0 <= self.byte < ALPHABET_SIZE:
            raise ValueError(f"byte out of range: {self.byte}")

    @property
    def char(self) -> str:
        return chr(self.byte)

    def __str__(self) -> str:
        char = self.char
        return char if char.isprintable() and char not in "\\[]()|*+?.!\"" else f"\\x{self.byte:02x}"


@dataclass(frozen=True)
class CharClass:
    """Matches one byte drawn from a set.

    ``negated`` classes implement the paper's single-character *Not*
    template (Fig. 6b): the matched set is the complement of ``bytes``.
    ``label`` optionally names a pre-decoded term (Fig. 5), e.g.
    ``"alphanumeric"``; labels participate only in display, not in
    equality of the matched set.
    """

    bytes: frozenset[int]
    negated: bool = False
    label: Optional[str] = field(default=None, compare=False)

    def matched_bytes(self) -> frozenset[int]:
        """The concrete set of bytes this class accepts."""
        if self.negated:
            return frozenset(range(ALPHABET_SIZE)) - self.bytes
        return self.bytes

    def contains(self, byte: int) -> bool:
        return (byte in self.bytes) != self.negated

    def __str__(self) -> str:
        if self.label:
            return f"[:{self.label}:]" if not self.negated else f"[^:{self.label}:]"
        chars = "".join(sorted(chr(b) for b in self.bytes if chr(b).isprintable()))
        prefix = "^" if self.negated else ""
        return f"[{prefix}{chars}]"


@dataclass(frozen=True)
class AnyChar:
    """Matches any byte (Lex ``.`` minus newline by convention)."""

    include_newline: bool = False

    def matched_bytes(self) -> frozenset[int]:
        full = frozenset(range(ALPHABET_SIZE))
        return full if self.include_newline else full - {ord("\n")}

    def contains(self, byte: int) -> bool:
        return self.include_newline or byte != ord("\n")

    def __str__(self) -> str:
        return "."


@dataclass(frozen=True)
class Seq:
    """Concatenation of sub-expressions."""

    items: tuple["Regex", ...]

    def __str__(self) -> str:
        return "".join(_wrap(item) for item in self.items)


@dataclass(frozen=True)
class Alt:
    """Alternation between sub-expressions."""

    options: tuple["Regex", ...]

    def __str__(self) -> str:
        return "|".join(_wrap(option) for option in self.options)


@dataclass(frozen=True)
class Repeat:
    """Repetition: ``?`` (0-1), ``*`` (0-inf), ``+`` (1-inf).

    ``max_count`` of ``None`` means unbounded.
    """

    item: "Regex"
    min_count: int
    max_count: Optional[int]

    def __post_init__(self) -> None:
        if self.min_count < 0:
            raise ValueError("min_count must be >= 0")
        if self.max_count is not None and self.max_count < self.min_count:
            raise ValueError("max_count must be >= min_count")

    @property
    def operator(self) -> str:
        if (self.min_count, self.max_count) == (0, 1):
            return "?"
        if (self.min_count, self.max_count) == (0, None):
            return "*"
        if (self.min_count, self.max_count) == (1, None):
            return "+"
        upper = "" if self.max_count is None else str(self.max_count)
        return f"{{{self.min_count},{upper}}}"

    def __str__(self) -> str:
        return f"{_wrap(self.item)}{self.operator}"


Regex = Union[Empty, Literal, CharClass, AnyChar, Seq, Alt, Repeat]

_ATOMIC = (Empty, Literal, CharClass, AnyChar)


def _wrap(node: Regex) -> str:
    if isinstance(node, _ATOMIC) or isinstance(node, Repeat):
        return str(node)
    return f"({node})"


# ----------------------------------------------------------------------
# constructors and helpers
# ----------------------------------------------------------------------
def literal_string(text: str) -> Regex:
    """Sequence of literals matching ``text`` exactly."""
    if not text:
        return Empty()
    items = tuple(Literal(ord(c)) for c in text)
    return items[0] if len(items) == 1 else Seq(items)


def seq(*items: Regex) -> Regex:
    """Concatenate, flattening nested sequences and dropping epsilons."""
    flat: list[Regex] = []
    for item in items:
        if isinstance(item, Empty):
            continue
        if isinstance(item, Seq):
            flat.extend(item.items)
        else:
            flat.append(item)
    if not flat:
        return Empty()
    if len(flat) == 1:
        return flat[0]
    return Seq(tuple(flat))


def alt(*options: Regex) -> Regex:
    """Alternate, flattening nested alternations and deduplicating."""
    flat: list[Regex] = []
    seen: set[Regex] = set()
    for option in options:
        nested = option.options if isinstance(option, Alt) else (option,)
        for item in nested:
            if item not in seen:
                seen.add(item)
                flat.append(item)
    if not flat:
        raise ValueError("alternation needs at least one option")
    if len(flat) == 1:
        return flat[0]
    return Alt(tuple(flat))


def char_class(chars: str = "", ranges: tuple[tuple[str, str], ...] = (),
               negated: bool = False, label: Optional[str] = None) -> CharClass:
    """Build a class from explicit chars plus inclusive ranges."""
    members = set(_char_set(chars))
    for low, high in ranges:
        members.update(range(ord(low), ord(high) + 1))
    return CharClass(frozenset(members), negated=negated, label=label)


#: Pre-decoded special-character terms of Fig. 5.
NOCASE = {
    c: CharClass(_char_set(c.lower() + c.upper()), label=f"nocase_{c.lower()}")
    for c in "abcdefghijklmnopqrstuvwxyz"
}
ALPHA = char_class(ranges=(("a", "z"), ("A", "Z")), label="alphabet")
DIGIT = char_class(ranges=(("0", "9"),), label="digit")
ALNUM = char_class(
    ranges=(("a", "z"), ("A", "Z"), ("0", "9")), label="alphanumeric"
)
WHITESPACE = CharClass(_char_set(" \t\r\n"), label="whitespace")


def nocase(char: str) -> CharClass:
    """Case-insensitive single character class (Fig. 5, ``nocase a``)."""
    return NOCASE[char.lower()]


# ----------------------------------------------------------------------
# structural queries used by the generator and analyses
# ----------------------------------------------------------------------
def nullable(node: Regex) -> bool:
    """Whether the expression matches the empty string."""
    if isinstance(node, Empty):
        return True
    if isinstance(node, (Literal, CharClass, AnyChar)):
        return False
    if isinstance(node, Seq):
        return all(nullable(item) for item in node.items)
    if isinstance(node, Alt):
        return any(nullable(option) for option in node.options)
    if isinstance(node, Repeat):
        return node.min_count == 0 or nullable(node.item)
    raise TypeError(f"not a regex node: {node!r}")


def first_bytes(node: Regex) -> frozenset[int]:
    """Set of bytes a match can start with."""
    if isinstance(node, Empty):
        return frozenset()
    if isinstance(node, Literal):
        return frozenset({node.byte})
    if isinstance(node, (CharClass, AnyChar)):
        return node.matched_bytes()
    if isinstance(node, Seq):
        result: frozenset[int] = frozenset()
        for item in node.items:
            result |= first_bytes(item)
            if not nullable(item):
                break
        return result
    if isinstance(node, Alt):
        return reduce(
            frozenset.union, (first_bytes(o) for o in node.options), frozenset()
        )
    if isinstance(node, Repeat):
        return first_bytes(node.item)
    raise TypeError(f"not a regex node: {node!r}")


def alphabet(node: Regex) -> frozenset[int]:
    """All bytes that appear anywhere in the expression."""
    if isinstance(node, (Empty,)):
        return frozenset()
    if isinstance(node, Literal):
        return frozenset({node.byte})
    if isinstance(node, (CharClass, AnyChar)):
        return node.matched_bytes()
    if isinstance(node, Seq):
        return reduce(frozenset.union, (alphabet(i) for i in node.items), frozenset())
    if isinstance(node, Alt):
        return reduce(
            frozenset.union, (alphabet(o) for o in node.options), frozenset()
        )
    if isinstance(node, Repeat):
        return alphabet(node.item)
    raise TypeError(f"not a regex node: {node!r}")


def fixed_string(node: Regex) -> Optional[bytes]:
    """If the expression matches exactly one string, return it.

    Used by the generator to pick the plain pipelined AND-chain template
    (Fig. 6a) instead of the general regex templates.
    """
    if isinstance(node, Empty):
        return b""
    if isinstance(node, Literal):
        return bytes([node.byte])
    if isinstance(node, CharClass):
        matched = node.matched_bytes()
        if len(matched) == 1:
            return bytes([next(iter(matched))])
        return None
    if isinstance(node, Seq):
        parts = [fixed_string(item) for item in node.items]
        if any(part is None for part in parts):
            return None
        return b"".join(parts)  # type: ignore[arg-type]
    if isinstance(node, Repeat) and node.min_count == node.max_count:
        part = fixed_string(node.item)
        if part is None:
            return None
        return part * node.min_count
    return None


def reverse(node: Regex) -> Regex:
    """Mirror a pattern: ``reverse(e)`` matches reversed strings of ``e``.

    Used to recover a token's start position from its end position —
    the hardware only reports match *ends*, so the lexeme is found by
    the longest match of the reversed pattern over the reversed data.
    """
    if isinstance(node, (Empty, Literal, CharClass, AnyChar)):
        return node
    if isinstance(node, Seq):
        return Seq(tuple(reverse(item) for item in reversed(node.items)))
    if isinstance(node, Alt):
        return Alt(tuple(reverse(option) for option in node.options))
    if isinstance(node, Repeat):
        return Repeat(reverse(node.item), node.min_count, node.max_count)
    raise TypeError(f"not a regex node: {node!r}")


def pattern_byte_count(node: Regex) -> int:
    """Number of "pattern bytes" an expression contributes.

    This is the metric of the paper's Table 1 ("# of Bytes"): the size
    of the pattern data in the grammar. Literals and single-position
    classes count 1; repetitions count their body once (the hardware
    template loops in place, Fig. 6d); alternations count all branches.
    """
    if isinstance(node, Empty):
        return 0
    if isinstance(node, (Literal, CharClass, AnyChar)):
        return 1
    if isinstance(node, Seq):
        return sum(pattern_byte_count(item) for item in node.items)
    if isinstance(node, Alt):
        return sum(pattern_byte_count(option) for option in node.options)
    if isinstance(node, Repeat):
        if node.max_count is not None and node.max_count == node.min_count:
            return node.min_count * pattern_byte_count(node.item)
        return pattern_byte_count(node.item)
    raise TypeError(f"not a regex node: {node!r}")
