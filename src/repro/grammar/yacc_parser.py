"""Front-end for Yacc/Lex-style grammar files (the paper's Fig. 14).

"We've chosen the input format that is used with the Lex and Yacc
tools … we can take advantage of the numerous grammars already
available and use them as input to our parser." (§4.1)

The accepted file layout::

    NAME        pattern            # token definitions, one per line
    NAME2, NAME3  pattern          # several names may share a pattern
    %delim      [ \\t\\r\\n]       # optional: delimiter class override
    %start      methodCall        # optional: explicit start symbol
    %%
    lhs:  alternative | alternative ;   # productions
    %%                                   # optional trailer, ignored

Inside productions, ``"quoted text"`` denotes a literal keyword token,
``'c'`` and the Lex-manual backquote form ``` `c' ``` denote a
single-character literal, an identifier that was defined in the token
section is a terminal, and any other identifier is a non-terminal.
An empty alternative (``lhs: | x y;``) is an epsilon production.
"""

from __future__ import annotations

import re

from repro.errors import GrammarSyntaxError
from repro.grammar.cfg import Grammar
from repro.grammar.lexspec import LexSpec
from repro.grammar.regex.parser import parse_regex
from repro.grammar.regex.ast import CharClass
from repro.grammar.symbols import NonTerminal, Symbol, Terminal

_TOKEN_LINE = re.compile(
    r"^(?P<names>[A-Za-z_][A-Za-z0-9_.]*(?:\s*,\s*[A-Za-z_][A-Za-z0-9_.]*)*)"
    r"\s+(?P<pattern>\S.*?)\s*$"
)

_PROD_TOKEN = re.compile(
    r"""
      "(?P<dq>[^"]*)"          # double-quoted literal
    | '(?P<sq>[^'])'           # single-quoted character
    | `(?P<bq>[^'])'           # Lex-manual backquote character
    | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
    | (?P<punct>[:|;])
    """,
    re.VERBOSE,
)


def _strip_comment(line: str) -> str:
    for marker in ("#", "//"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line.rstrip()


def parse_yacc_grammar(text: str, name: str = "grammar") -> Grammar:
    """Parse a Fig. 14-style grammar file into a :class:`Grammar`.

    >>> g = parse_yacc_grammar('''
    ... WORD [a-z]+
    ... %%
    ... s: "go" WORD;
    ... ''')
    >>> [str(p) for p in g.productions]
    ['s → go WORD']
    """
    sections = _split_sections(text)
    lexspec, start_name = _parse_definitions(sections[0])
    grammar = Grammar(name, lexspec)
    _parse_productions(sections[1], grammar)
    if start_name is not None:
        start = NonTerminal(start_name)
        if not grammar.productions_for(start):
            raise GrammarSyntaxError(
                f"%start symbol {start_name!r} has no productions"
            )
        grammar.start = start
    grammar.validate()
    return grammar


def load_yacc_grammar(path: str, name: str | None = None) -> Grammar:
    """Read and parse a grammar file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return parse_yacc_grammar(text, name=name or path)


def _split_sections(text: str) -> tuple[list[str], list[str]]:
    definitions: list[str] = []
    productions: list[str] = []
    section = 0
    for raw_line in text.splitlines():
        line = _strip_comment(raw_line)
        if line.strip() == "%%":
            section += 1
            if section > 2:
                raise GrammarSyntaxError("too many %% separators")
            continue
        if section == 0:
            definitions.append(line)
        elif section == 1:
            productions.append(line)
        # section 2: trailer, ignored (Yacc convention)
    if section == 0:
        raise GrammarSyntaxError("missing %% separator before productions")
    return definitions, productions


def _parse_definitions(lines: list[str]) -> tuple[LexSpec, str | None]:
    lexspec = LexSpec()
    start_name: str | None = None
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("%delim"):
            pattern_text = stripped[len("%delim"):].strip()
            try:
                pattern = parse_regex(pattern_text)
            except Exception as exc:
                raise GrammarSyntaxError(
                    f"bad %delim pattern: {exc}", line=number
                ) from exc
            if not isinstance(pattern, CharClass):
                raise GrammarSyntaxError(
                    "%delim must be a character class", line=number
                )
            lexspec.delimiters = pattern
            continue
        if stripped.startswith("%start"):
            start_name = stripped[len("%start"):].strip()
            if not start_name:
                raise GrammarSyntaxError("%start needs a symbol", line=number)
            continue
        match = _TOKEN_LINE.match(stripped)
        if match is None:
            raise GrammarSyntaxError(
                f"bad token definition: {stripped!r}", line=number
            )
        pattern_text = match.group("pattern")
        try:
            pattern = parse_regex(pattern_text)
        except Exception as exc:
            raise GrammarSyntaxError(
                f"bad pattern for {match.group('names')}: {exc}", line=number
            ) from exc
        for token_name in re.split(r"\s*,\s*", match.group("names")):
            lexspec.define(token_name, pattern, source=pattern_text)
    return lexspec, start_name


def _parse_productions(lines: list[str], grammar: Grammar) -> None:
    text = "\n".join(lines)
    tokens = _scan_production_tokens(text)
    position = 0

    def peek() -> tuple[str, str] | None:
        return tokens[position] if position < len(tokens) else None

    while position < len(tokens):
        kind, value = tokens[position]
        if kind != "ident":
            raise GrammarSyntaxError(
                f"expected a rule name, found {value!r}"
            )
        lhs = NonTerminal(value)
        position += 1
        if position >= len(tokens) or tokens[position] != ("punct", ":"):
            raise GrammarSyntaxError(f"expected ':' after rule {value!r}")
        position += 1
        alternative: list[Symbol] = []
        alternatives: list[list[Symbol]] = []
        while True:
            if position >= len(tokens):
                raise GrammarSyntaxError(
                    f"rule {value!r} not terminated with ';'"
                )
            kind, item = tokens[position]
            position += 1
            if (kind, item) == ("punct", ";"):
                alternatives.append(alternative)
                break
            if (kind, item) == ("punct", "|"):
                alternatives.append(alternative)
                alternative = []
                continue
            if kind == "literal":
                grammar.lexspec.define_literal(item)
                alternative.append(Terminal(item))
            elif kind == "ident":
                if item in grammar.lexspec:
                    alternative.append(Terminal(item))
                else:
                    alternative.append(NonTerminal(item))
            else:  # pragma: no cover - scanner emits only these kinds
                raise GrammarSyntaxError(f"unexpected token {item!r}")
        for rhs in alternatives:
            grammar.add(lhs, rhs)


def _scan_production_tokens(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        char = text[position]
        if char.isspace():
            position += 1
            continue
        match = _PROD_TOKEN.match(text, position)
        if match is None:
            raise GrammarSyntaxError(
                f"unexpected character {char!r} in productions"
            )
        if match.group("dq") is not None:
            tokens.append(("literal", match.group("dq")))
        elif match.group("sq") is not None:
            tokens.append(("literal", match.group("sq")))
        elif match.group("bq") is not None:
            tokens.append(("literal", match.group("bq")))
        elif match.group("ident") is not None:
            tokens.append(("ident", match.group("ident")))
        else:
            tokens.append(("punct", match.group("punct")))
        position = match.end()
    return tokens
