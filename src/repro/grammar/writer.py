"""Grammar serialization back to the Yacc/Lex file format.

The inverse of :mod:`repro.grammar.yacc_parser`: render any
:class:`~repro.grammar.cfg.Grammar` as a Fig. 14-style text file that
re-parses to an equivalent grammar (a property the test suite checks).
Used to persist generated grammars — e.g. the §4.3 scaled duplicates —
and to diff grammar transformations.
"""

from __future__ import annotations

from repro.grammar.cfg import Grammar
from repro.grammar.lexspec import DEFAULT_DELIMITERS
from repro.grammar.symbols import NonTerminal, Symbol, Terminal


def _format_symbol(grammar: Grammar, symbol: Symbol) -> str:
    if isinstance(symbol, NonTerminal):
        return symbol.name
    assert isinstance(symbol, Terminal)
    token = grammar.lexspec.get(symbol.name)
    if token.is_literal:
        return f'"{token.name}"'
    return token.name


def write_yacc_grammar(grammar: Grammar) -> str:
    """Render ``grammar`` as Yacc/Lex-style text.

    >>> from repro.grammar.examples import if_then_else
    >>> print(write_yacc_grammar(if_then_else()))  # doctest: +ELLIPSIS
    %%
    E: "if" C "then" E "else" E
     | "go"
     | "stop";
    ...
    """
    lines: list[str] = []

    named = [token for token in grammar.lexspec if not token.is_literal]
    if named:
        width = max(len(token.name) for token in named) + 2
        for token in named:
            pattern = token.source if token.source else str(token.pattern)
            lines.append(f"{token.name:<{width}}{pattern}")
    if grammar.lexspec.delimiters != DEFAULT_DELIMITERS:
        # Render the delimiter class as an explicit character set.
        chars = "".join(
            _escape_class_char(byte)
            for byte in sorted(grammar.lexspec.delimiters.matched_bytes())
        )
        lines.append(f"%delim [{chars}]")
    lines.append("%%")

    # Group productions by left-hand side, in first-definition order.
    for lhs in grammar.nonterminals:
        alternatives = []
        for production in grammar.productions_for(lhs):
            body = " ".join(
                _format_symbol(grammar, symbol) for symbol in production.rhs
            )
            alternatives.append(body)
        rendered = "\n | ".join(alternatives)
        lines.append(f"{lhs.name}: {rendered};".replace(":  |", ": |"))

    if grammar.start != grammar.nonterminals[0]:
        assert grammar.start is not None
        lines.insert(len(named), f"%start {grammar.start.name}")
    lines.append("%%")
    return "\n".join(lines) + "\n"


def _escape_class_char(byte: int) -> str:
    char = chr(byte)
    if char in "]\\^-":
        return "\\" + char
    if char == "\n":
        return "\\n"
    if char == "\t":
        return "\\t"
    if char == "\r":
        return "\\r"
    if not char.isprintable():
        return f"\\x{byte:02x}"
    return char


def save_yacc_grammar(grammar: Grammar, path: str) -> None:
    """Write the grammar to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_yacc_grammar(grammar))
