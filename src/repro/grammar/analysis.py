"""Nullable / First / Follow analysis (the paper's Fig. 8), plus the
occurrence-level follow graph that realizes context duplication.

The paper computes Follow sets *for the terminal tokens themselves*
(Fig. 10) and wires each tokenizer's output to the enable inputs of the
tokenizers in its Follow set (Fig. 11). Because "the same token used in
two different contexts" is duplicated per context (§3.2), the hardware
actually operates on *occurrences* — (production, position) pairs — so
this module also derives the occurrence graph: which terminal
occurrence may follow which, which occurrences can start a sentence,
and which may end one.
"""

from __future__ import annotations

from dataclasses import dataclass
from weakref import WeakKeyDictionary

from repro.grammar.cfg import Grammar, Production
from repro.grammar.symbols import END, NonTerminal, Symbol, Terminal


@dataclass
class GrammarAnalysis:
    """Results of the Fig. 8 fixpoint over a grammar."""

    grammar: Grammar
    nullable: dict[NonTerminal, bool]
    first: dict[Symbol, frozenset[Terminal]]
    follow: dict[Symbol, frozenset[Terminal]]

    def first_of_sequence(self, symbols: tuple[Symbol, ...]) -> frozenset[Terminal]:
        """FIRST of a sentential-form suffix, without the END marker."""
        result: set[Terminal] = set()
        for symbol in symbols:
            result |= self.first[symbol]
            if not self.sequence_nullable((symbol,)):
                break
        return frozenset(result)

    def sequence_nullable(self, symbols: tuple[Symbol, ...]) -> bool:
        """Whether an entire symbol sequence can derive epsilon."""
        return all(
            isinstance(symbol, NonTerminal) and self.nullable[symbol]
            for symbol in symbols
        )

    @property
    def start_terminals(self) -> frozenset[Terminal]:
        """The possible starting tokens: FIRST of the start symbol.

        "The First set of the first production contains all possible
        starting terminal tokens." (§3.3)
        """
        assert self.grammar.start is not None
        return self.first[self.grammar.start]

    def token_follow_table(self) -> dict[Terminal, frozenset[Terminal]]:
        """Follow set per terminal token — the paper's Fig. 10 table."""
        return {
            terminal: self.follow[terminal]
            for terminal in self.grammar.used_terminals()
        }

    def describe_follow(self) -> str:
        """Printable Fig. 10-style table (END rendered as ε)."""
        lines = ["token        follow set"]
        for terminal, follows in self.token_follow_table().items():
            names = sorted("ε" if t == END else t.name for t in follows)
            lines.append(f"{terminal.name:<12} {{{', '.join(names)}}}")
        return "\n".join(lines)


def analyze_grammar(grammar: Grammar) -> GrammarAnalysis:
    """Run the Fig. 8 algorithm to a fixpoint.

    The loop structure mirrors the figure: initialize FIRST[Z] = {Z}
    for every terminal, then repeat the three update rules for every
    production ``X -> Y1 … Yk`` until nothing changes. Follow sets are
    computed for *all* symbols, terminals included, as the paper's
    Fig. 10 requires. The END marker is seeded into FOLLOW(start).
    """
    grammar.validate()
    assert grammar.start is not None

    nullable: dict[NonTerminal, bool] = {nt: False for nt in grammar.nonterminals}
    first: dict[Symbol, set[Terminal]] = {}
    follow: dict[Symbol, set[Terminal]] = {}
    for terminal in grammar.terminals:
        first[terminal] = {terminal}
        follow[terminal] = set()
    for nonterminal in grammar.nonterminals:
        first[nonterminal] = set()
        follow[nonterminal] = set()
    follow[grammar.start].add(END)

    def seq_nullable(symbols: tuple[Symbol, ...]) -> bool:
        return all(
            isinstance(s, NonTerminal) and nullable[s] for s in symbols
        )

    changed = True
    while changed:
        changed = False
        for production in grammar.productions:
            lhs, rhs = production.lhs, production.rhs
            k = len(rhs)
            # "if all Yi are nullable (or if k = 0) then nullable[X] <- true"
            if not nullable[lhs] and seq_nullable(rhs):
                nullable[lhs] = True
                changed = True
            for i in range(k):
                yi = rhs[i]
                # "if Y1 … Yi-1 are all nullable (or if i = 1)
                #  then FIRST[X] <- FIRST[X] ∪ FIRST[Yi]"
                if seq_nullable(rhs[:i]):
                    if not first[yi] <= first[lhs]:
                        first[lhs] |= first[yi]
                        changed = True
                # "if Yi+1 … Yk are all nullable (or if i = k)
                #  then FOLLOW[Yi] <- FOLLOW[Yi] ∪ FOLLOW[X]"
                if seq_nullable(rhs[i + 1 :]):
                    if not follow[lhs] <= follow[yi]:
                        follow[yi] |= follow[lhs]
                        changed = True
                # "for each j from i+1 to k: if Yi+1 … Yj-1 are all
                #  nullable (or if i+1 = j)
                #  then FOLLOW[Yi] <- FOLLOW[Yi] ∪ FIRST[Yj]"
                for j in range(i + 1, k):
                    if seq_nullable(rhs[i + 1 : j]):
                        yj = rhs[j]
                        if not first[yj] <= follow[yi]:
                            follow[yi] |= first[yj]
                            changed = True

    return GrammarAnalysis(
        grammar=grammar,
        nullable=nullable,
        first={s: frozenset(v) for s, v in first.items()},
        follow={s: frozenset(v) for s, v in follow.items()},
    )


#: Identity-keyed memo caches. A :class:`Grammar` is mutable while it
#: is being assembled but effectively frozen once analyzed; the cached
#: entry points assume no further mutation (the same assumption every
#: generated circuit already makes). Weak keys let grammars be
#: garbage-collected normally.
_ANALYSIS_CACHE: WeakKeyDictionary = WeakKeyDictionary()
_GRAPH_CACHE: WeakKeyDictionary = WeakKeyDictionary()


def analyze_grammar_cached(grammar: Grammar) -> GrammarAnalysis:
    """Memoized :func:`analyze_grammar` (keyed by grammar identity)."""
    cached = _ANALYSIS_CACHE.get(grammar)
    if cached is None:
        cached = analyze_grammar(grammar)
        _ANALYSIS_CACHE[grammar] = cached
    return cached


def build_occurrence_graph_cached(grammar: Grammar) -> "OccurrenceGraph":
    """Memoized :func:`build_occurrence_graph` over the cached analysis."""
    cached = _GRAPH_CACHE.get(grammar)
    if cached is None:
        cached = build_occurrence_graph(grammar, analyze_grammar_cached(grammar))
        _GRAPH_CACHE[grammar] = cached
    return cached


# ----------------------------------------------------------------------
# occurrence-level analysis (context duplication, §3.2 last paragraph)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Occurrence:
    """One appearance of a terminal in a production body.

    The pair (production index, position) *is* the paper's duplicated
    per-context token: "the meaning of each token can be determined by
    monitoring where it is being processed" (abstract).
    """

    production: int
    position: int
    terminal: Terminal

    def context_name(self) -> str:
        return f"p{self.production}.{self.position}"

    def __str__(self) -> str:
        return f"{self.terminal.name}@{self.context_name()}"


@dataclass
class OccurrenceGraph:
    """Follow relation between terminal occurrences.

    * ``starts`` — occurrences that may begin a sentence;
    * ``edges[o]`` — occurrences that may immediately follow ``o``
      (with only delimiters between them);
    * ``accepting`` — occurrences that may end a sentence.

    Collapsing every occurrence of the same terminal into one node
    yields exactly the terminal-level Follow wiring of Fig. 11 (this is
    asserted by the test suite), so the graph is a conservative
    refinement: same architecture, finer tags.
    """

    grammar: Grammar
    occurrences: list[Occurrence]
    starts: frozenset[Occurrence]
    edges: dict[Occurrence, frozenset[Occurrence]]
    accepting: frozenset[Occurrence]

    def occurrences_of(self, terminal: Terminal) -> list[Occurrence]:
        return [o for o in self.occurrences if o.terminal == terminal]

    def contexts_per_terminal(self) -> dict[Terminal, int]:
        """How many hardware copies each token needs (ablation metric)."""
        counts: dict[Terminal, int] = {}
        for occurrence in self.occurrences:
            counts[occurrence.terminal] = counts.get(occurrence.terminal, 0) + 1
        return counts

    def collapsed_edges(self) -> dict[Terminal, frozenset[Terminal]]:
        """Terminal-level view of the graph (must equal Fig. 10/11)."""
        collapsed: dict[Terminal, set[Terminal]] = {}
        for occurrence, nexts in self.edges.items():
            bucket = collapsed.setdefault(occurrence.terminal, set())
            bucket.update(n.terminal for n in nexts)
        return {t: frozenset(s) for t, s in collapsed.items()}


def build_occurrence_graph(
    grammar: Grammar, analysis: GrammarAnalysis | None = None
) -> OccurrenceGraph:
    """Derive the occurrence-level follow graph for a grammar.

    The computation parallels Fig. 8 but over occurrences:

    * ``START_OCC(N)`` — occurrences that can begin a derivation of N;
    * ``FOLLOW_OCC(N)`` — occurrences that can appear right after N;
    * ``CAN_END(N)`` — whether a derivation of N can end the sentence.
    """
    if analysis is None:
        analysis = analyze_grammar(grammar)
    assert grammar.start is not None

    occurrences: list[Occurrence] = []
    occ_at: dict[tuple[int, int], Occurrence] = {}
    for production in grammar.productions:
        for position, symbol in enumerate(production.rhs):
            if isinstance(symbol, Terminal):
                occurrence = Occurrence(production.index, position, symbol)
                occurrences.append(occurrence)
                occ_at[(production.index, position)] = occurrence

    nullable = analysis.nullable

    def start_occurrences(nt: NonTerminal, seen: frozenset[NonTerminal] = frozenset()) -> set[Occurrence]:
        if nt in seen:
            return set()
        seen = seen | {nt}
        result: set[Occurrence] = set()
        for production in grammar.productions_for(nt):
            for position, symbol in enumerate(production.rhs):
                if isinstance(symbol, Terminal):
                    result.add(occ_at[(production.index, position)])
                    break
                result |= start_occurrences(symbol, seen)
                if not nullable[symbol]:
                    break
        return result

    start_cache: dict[NonTerminal, frozenset[Occurrence]] = {
        nt: frozenset(start_occurrences(nt)) for nt in grammar.nonterminals
    }

    # Fixpoint for FOLLOW_OCC(N) and CAN_END(N).
    follow_occ: dict[NonTerminal, set[Occurrence]] = {
        nt: set() for nt in grammar.nonterminals
    }
    can_end: dict[NonTerminal, bool] = {nt: False for nt in grammar.nonterminals}
    can_end[grammar.start] = True

    def suffix_contribution(
        production: Production, position: int
    ) -> tuple[set[Occurrence], bool]:
        """Occurrences startable after ``position`` in ``production``,
        and whether the remainder can reach the end of the production
        (thereby inheriting FOLLOW_OCC of the LHS)."""
        gained: set[Occurrence] = set()
        for j in range(position + 1, len(production.rhs)):
            symbol = production.rhs[j]
            if isinstance(symbol, Terminal):
                gained.add(occ_at[(production.index, j)])
                return gained, False
            gained |= start_cache[symbol]
            if not nullable[symbol]:
                return gained, False
        return gained, True

    changed = True
    while changed:
        changed = False
        for production in grammar.productions:
            for position, symbol in enumerate(production.rhs):
                if not isinstance(symbol, NonTerminal):
                    continue
                gained, reaches_end = suffix_contribution(production, position)
                if reaches_end:
                    gained |= follow_occ[production.lhs]
                    if can_end[production.lhs] and not can_end[symbol]:
                        can_end[symbol] = True
                        changed = True
                if not gained <= follow_occ[symbol]:
                    follow_occ[symbol] |= gained
                    changed = True

    # Per-occurrence edges and accepting set.
    edges: dict[Occurrence, frozenset[Occurrence]] = {}
    accepting: set[Occurrence] = set()
    for occurrence in occurrences:
        production = grammar.productions[occurrence.production]
        gained, reaches_end = suffix_contribution(production, occurrence.position)
        if reaches_end:
            gained |= follow_occ[production.lhs]
            if can_end[production.lhs]:
                accepting.add(occurrence)
        edges[occurrence] = frozenset(gained)

    return OccurrenceGraph(
        grammar=grammar,
        occurrences=occurrences,
        starts=start_cache[grammar.start],
        edges=edges,
        accepting=frozenset(accepting),
    )
