"""Vectorized wide-datapath scan engine.

The hardware reaches gigabit rates by widening the datapath: several
pre-decoded bytes are consumed per cycle through parallel tokenizer
pipelines (Figs. 6–7). This module is the software analogue, a third
engine layered on the compiled one (:mod:`repro.core.compiled`), in
three parts:

* **Wide stepping.** The lazily-materialized global product automaton
  is closed off up front (every reachable ``(state, byte)`` edge), the
  256 byte values collapse into *byte classes* (bytes with identical
  full transition columns — the paper's character-class decoder applied
  to the product machine), and the per-byte loop is replaced by a
  per-*word* loop: each 8-byte window of the class-translated input is
  read as one little-endian ``uint64`` and resolved through a single
  dict lookup. A memoized window entry is either the bare next state
  (the overwhelmingly common all-quiet case — one dict hit now covers
  eight bytes, i.e. four of the paper's fused 2-byte stages) or a tiny
  *generated* program that replays the window's events, earliest-start
  moves and error positions with all offsets folded in at codegen time.

* **Dead-region skipping.** States whose transition column is almost
  entirely bare self-loops and whose armed set is empty — regions of
  the input that can neither start nor extend any token, e.g. the §5.2
  dead state between an unrecoverable error and end-of-stream — compile
  to a per-state inert/live byte table. When the wide loop hits such a
  window it fast-forwards with ``bytes.translate`` + ``find`` (C
  memchr-speed prefilters) to the next live byte instead of stepping.

* **Cross-flow batch stepping.** :class:`BatchScanner` advances N
  independent flows in lockstep: byte classes are composed into pair,
  quad and oct classes (``compose`` closure under concatenation), each
  flow's chunk is lowered to one oct-class code per 8-byte column, and
  a ``(columns, flows)`` gather against a cache-resident
  ``[oct_class * S + state]`` table advances every flow's state with
  two NumPy ops per column. Columns flagged effectful are then
  replayed exactly through the shared wide-step memo. Interpreter
  dispatch is paid once per *column of the whole batch* instead of
  once per byte per flow, which is what lets many concurrent
  connections amortize it (see DESIGN.md §9 for the crossover model).

The engine is bit-exact with the compiled one — same events, same
order, same error-recovery positions, same earliest-start lexemes —
enforced by the seeded differential suite in
``tests/core/test_vectorscan.py``. Without NumPy (or with
``REPRO_DISABLE_NUMPY=1``) every entry point degrades gracefully to
the compiled engine; :func:`capability` reports which path is live.
"""

from __future__ import annotations

import os
from collections import deque
from itertools import islice
from weakref import WeakKeyDictionary

from repro.core.compiled import CompiledTagger, _CompiledTables
from repro.core.scanplan import DetectEvent, _wiring_key

try:  # pragma: no cover - exercised via the REPRO_DISABLE_NUMPY job
    if os.environ.get("REPRO_DISABLE_NUMPY"):
        raise ImportError("NumPy disabled by REPRO_DISABLE_NUMPY")
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "BatchScanner",
    "NUMPY_AVAILABLE",
    "VectorTagger",
    "WIDTH",
    "capability",
]

#: Whether the vector engine can run at all in this process.
NUMPY_AVAILABLE = _np is not None

#: Fused window width in bytes: one ``uint64`` of class codes per step.
WIDTH = 8

#: Closure bail-out: a product automaton past this many states is not
#: worth densifying (the closure alone would dominate), so the vector
#: tagger silently runs the compiled loop instead.
_MAX_PRODUCT_STATES = 2048

#: Caps mirroring ``compiled._MEMO_CAP``: past these, wide windows and
#: generated programs are computed without being cached.
_WIDE_MEMO_CAP = 1 << 17
_PROG_CACHE_CAP = 1 << 14

#: A state is skippable when at least this many of its 256 byte edges
#: are bare self-loops (and its armed set is empty): nothing can start
#: or extend a token there, so inert runs may be fast-forwarded.
_SKIP_MIN_COVERAGE = 192

#: Batch-table feasibility caps (entry counts): past these the composed
#: class tables stop being cache-resident and lockstep gather loses to
#: per-flow wide stepping, so batch building bails out.
_MAX_QUAD_SQ = 4 << 20
_MAX_STEP_ENTRIES = 8 << 20

#: Wide-window memo sentinel: the window keeps the state on bare
#: self-loops, and the state's inert-byte prefilter may fast-forward.
_SKIP = object()


def capability() -> dict:
    """The vector engine's runtime capability flags (for ``/stats``)."""
    return {
        "numpy": NUMPY_AVAILABLE,
        "disabled_by_env": bool(os.environ.get("REPRO_DISABLE_NUMPY")),
        "width": WIDTH,
    }


# ----------------------------------------------------------------------
# Dense closure of the product automaton + wide-window codegen
# ----------------------------------------------------------------------
class _VectorTables:
    """Closed product automaton, byte classes, wide-window memo and
    skip prefilters for one (grammar, wiring) pair; shared by every
    :class:`VectorTagger` over that pair (same sharing discipline as
    ``compiled._CompiledTables``). Batch tables are built lazily on
    the first lockstep use."""

    __slots__ = (
        "tables",
        "units",
        "ok",
        "n_states",
        "edges",
        "class_table",
        "repr_byte",
        "skip_live",
        "memo8",
        "_prog_cache",
        "_batch",
    )

    def __init__(self, tables: _CompiledTables, units: tuple) -> None:
        self.tables = tables
        self.units = units
        self.memo8: dict[int, object] = {}
        self._prog_cache: dict = {}
        self._batch: object = None  # None=unbuilt, False=infeasible
        self.ok = self._close()
        if self.ok:
            self._classify()
            self._find_skip_states()

    # ------------------------------------------------------------------
    def _close(self) -> bool:
        """BFS-materialize every reachable ``(state, byte)`` edge.

        Edges are normalized to ``next_state`` (bare) or ``(next_state,
        events, start_ops, err)`` — the compiled step with the id
        un-shifted. Returns False (vector disabled) past the state cap.
        """
        tables = self.tables
        memo_get = tables.memo.get
        build_step = tables.build_step
        edges: dict[int, object] = {}
        frontier = [0]
        seen = {0}
        while frontier:
            nxt = []
            for tid in frontier:
                base = tid << 8
                for byte in range(256):
                    step = memo_get(base | byte)
                    if step is None:
                        step = build_step(tid, byte)
                    if step.__class__ is int:
                        sig: object = step >> 8
                        ntid = step >> 8
                    else:
                        sig = (step[0] >> 8, step[1], step[2], step[3])
                        ntid = step[0] >> 8
                    edges[base | byte] = sig
                    if ntid not in seen:
                        if len(seen) >= _MAX_PRODUCT_STATES:
                            return False
                        seen.add(ntid)
                        nxt.append(ntid)
            frontier = nxt
        self.n_states = len(seen)
        self.edges = edges
        return True

    def _classify(self) -> None:
        """Collapse bytes with identical full transition columns into
        classes (the product-machine version of the paper's character
        class decoder); ``class_table`` drives ``bytes.translate``."""
        edges = self.edges
        n = self.n_states
        columns: dict[tuple, list[int]] = {}
        for byte in range(256):
            sig = tuple(edges[(tid << 8) | byte] for tid in range(n))
            columns.setdefault(sig, []).append(byte)
        class_of = [0] * 256
        self.repr_byte = []
        for ci, bytes_of in enumerate(columns.values()):
            self.repr_byte.append(bytes_of[0])
            for byte in bytes_of:
                class_of[byte] = ci
        self.class_table = bytes(class_of)

    def _find_skip_states(self) -> None:
        """Per-state inert/live byte tables for dead-region skipping.

        Only states that cannot start or extend any token qualify: the
        armed set is empty and almost every byte is a bare self-loop
        (e.g. the post-error dead state). For each, a 256-entry table
        maps inert bytes to 0 and live bytes to 1, composed with the
        class translation so the prefilter runs over class codes.
        """
        edges = self.edges
        tstates = self.tables.tstates
        class_table = self.class_table
        self.skip_live: dict[int, bytes] = {}
        for tid in range(self.n_states):
            _items, armed, _pdet, _first = tstates[tid]
            if armed:
                continue
            base = tid << 8
            live = bytearray(256)
            coverage = 0
            for byte in range(256):
                edge = edges[base | byte]
                if edge.__class__ is int and edge == tid:
                    coverage += 1
                else:
                    live[class_table[byte]] = 1
            if coverage >= _SKIP_MIN_COVERAGE:
                self.skip_live[tid] = bytes(live)

    # ------------------------------------------------------------------
    # wide-window codegen
    # ------------------------------------------------------------------
    def _gen_half(self, d, events, start_ops, err, lines, ns) -> None:
        """Emit one effectful byte (offset ``d`` in the window) into a
        window program: error position, events (earliest-start min
        folded to a literal index expression), start moves as tuples."""
        i = "i" if d == 0 else f"i+{d}"
        if err:
            lines.append(
                f"    if errors is not None: errors.append({i})"
            )
        for u, q in events or ():
            ns[f"U{u}"] = self.units[u]
            if len(q) == 1:
                ms = f"starts[{u}][{q[0]}]"
            else:
                ms = "min(" + ", ".join(
                    f"starts[{u}][{j}]" for j in q
                ) + ")"
            lines.append(f"    append((TN(DE, (U{u}, {i})), {ms}))")
        for u, moves in start_ops or ():
            elems = []
            for srcs in moves:
                if not srcs:
                    elems.append(i)
                elif len(srcs) == 1:
                    elems.append(f"old[{srcs[0]}]")
                else:
                    elems.append(
                        "min(" + ", ".join(f"old[{j}]" for j in srcs) + ")"
                    )
            lines.append(f"    old = starts[{u}]")
            lines.append(f"    starts[{u}] = ({', '.join(elems)},)")

    def _make_prog(self, halves, next_base: int):
        """Compile a window's effectful bytes into one function.

        ``exec`` cost is paid once per distinct program *text* (the
        cache key also pins the unit identities baked into the
        namespace); the generated function returns the window's
        pre-shifted next state as a compiled-in constant.
        """
        ns = {"DE": DetectEvent, "min": min, "TN": tuple.__new__}
        lines = ["def prog(i, starts, append, errors):"]
        for d, events, start_ops, err in halves:
            self._gen_half(d, events, start_ops, err, lines, ns)
        lines.append(f"    return {next_base!r}")
        src = "\n".join(lines)
        key = (src,) + tuple(
            sorted((k, id(v)) for k, v in ns.items() if k[0] == "U")
        )
        prog = self._prog_cache.get(key)
        if prog is None:
            exec(src, ns)  # noqa: S102 - own codegen, no external input
            prog = ns["prog"]
            if len(self._prog_cache) < _PROG_CACHE_CAP:
                self._prog_cache[key] = prog
        return prog

    def build_window(self, key: int):
        """Materialize one wide-window memo entry.

        ``key`` packs ``state << 64 | window`` where ``window`` is the
        8 class codes as a little-endian ``uint64``. The entry is a
        bare ``next_state << 64`` int, the ``_SKIP`` sentinel, or a
        generated program returning that int.
        """
        tid = sid = key >> 64
        window = key & 0xFFFFFFFFFFFFFFFF
        repr_byte = self.repr_byte
        edges = self.edges
        halves = []
        for d in range(8):
            byte = repr_byte[(window >> (8 * d)) & 0xFF]
            sig = edges[(tid << 8) | byte]
            if sig.__class__ is int:
                tid = sig
            else:
                halves.append((d, sig[1], sig[2], sig[3]))
                tid = sig[0]
        if halves:
            entry: object = self._make_prog(halves, tid << 64)
        elif tid == sid and sid in self.skip_live:
            entry = _SKIP
        else:
            entry = tid << 64
        if len(self.memo8) < _WIDE_MEMO_CAP:
            self.memo8[key] = entry
        return entry

    # ------------------------------------------------------------------
    def batch_tables(self):
        """The lazily-built cross-flow lockstep tables (or None when
        composition is infeasible for this automaton)."""
        if self._batch is None:
            try:
                self._batch = _BatchTables(self)
            except _BatchInfeasible:
                self._batch = False
        return self._batch or None


class _BatchInfeasible(Exception):
    """Composed class tables would not stay cache-resident."""


class _BatchTables:
    """Dense lockstep tables: byte classes composed into pair, quad and
    oct classes, a LUT chain lowering chunks to oct-class codes, and
    the ``[oct_class * S + state]`` step/effect tables (padded with an
    identity row so exhausted flows ride along for free)."""

    __slots__ = (
        "vt",
        "n_pair",
        "n_quad",
        "lut16",
        "lut_quad",
        "lut_oct",
        "step_ext",
        "eff_ext",
        "pad",
    )

    def __init__(self, vt: _VectorTables) -> None:
        np = _np
        self.vt = vt
        S = vt.n_states
        edges = vt.edges
        repr_byte = vt.repr_byte
        C = len(repr_byte)

        next_c = np.zeros((S, C), dtype=np.int16)
        eff_c = np.zeros((S, C), dtype=bool)
        for ci, byte in enumerate(repr_byte):
            for tid in range(S):
                sig = edges[(tid << 8) | byte]
                bare = sig.__class__ is int
                next_c[tid, ci] = sig if bare else sig[0]
                eff_c[tid, ci] = not bare

        pair_codes, next_p, eff_p = self._compose(next_c, eff_c, next_c, eff_c)
        P = next_p.shape[1]
        if P * P > _MAX_QUAD_SQ:
            raise _BatchInfeasible
        quad_codes, next_q, eff_q = self._compose(next_p, eff_p, next_p, eff_p)
        Q = next_q.shape[1]
        if Q * Q > _MAX_QUAD_SQ:
            raise _BatchInfeasible
        oct_codes, next_o, eff_o = self._compose(next_q, eff_q, next_q, eff_q)
        if next_o.shape[1] * S > _MAX_STEP_ENTRIES:
            raise _BatchInfeasible
        self.n_pair = P
        self.n_quad = Q

        # LUT chain: u16 byte-class pair (little-endian, so the *low*
        # byte is the first class) -> pair code; pair-code pair -> quad
        # code; quad-code pair -> oct code premultiplied by S.
        lut16 = np.zeros(65536, dtype=np.int32)
        idx = np.arange(C * C)
        lut16[(idx % C) << 8 | (idx // C)] = pair_codes
        self.lut16 = lut16
        self.lut_quad = quad_codes  # indexed pair1 * P + pair2
        self.lut_oct = (oct_codes.astype(np.int64) * S).astype(np.int32)

        step = next_o.T.ravel().astype(np.int32).copy()  # [oc*S + s]
        eff = eff_o.T.ravel().astype(np.uint8).copy()
        self.pad = len(step)
        self.step_ext = np.concatenate(
            [step, np.arange(S, dtype=np.int32)]
        )
        self.eff_ext = np.concatenate([eff, np.zeros(S, dtype=np.uint8)])

    @staticmethod
    def _compose(nxt1, eff1, nxt2, eff2, block: int = 64):
        """Close two class alphabets under concatenation.

        For every (c1, c2) the composed column ``next2[next1[:, c1],
        c2]`` (and the exact per-path effect OR) is uniqued by content;
        returns the (A1*A2) code array plus the unique columns as new
        ``(S, K)`` next/effect matrices. Blocked fancy indexing keeps
        the temporaries small."""
        np = _np
        A1, A2 = nxt1.shape[1], nxt2.shape[1]
        codes = np.empty(A1 * A2, dtype=np.int32)
        uniq: dict[bytes, int] = {}
        reps_n: list = []
        reps_e: list = []
        n1 = nxt1.astype(np.int32)
        for lo in range(0, A1, block):
            hi = min(A1, lo + block)
            blk_n = nxt2[n1[:, lo:hi], :].transpose(1, 2, 0)  # (b, A2, S)
            blk_e = (
                eff1[:, lo:hi, None] | eff2[n1[:, lo:hi], :]
            ).transpose(1, 2, 0)
            for i in range(hi - lo):
                for j in range(A2):
                    key = blk_n[i, j].tobytes() + blk_e[i, j].tobytes()
                    code = uniq.get(key)
                    if code is None:
                        code = uniq[key] = len(reps_n)
                        reps_n.append(blk_n[i, j].copy())
                        reps_e.append(blk_e[i, j].copy())
                    codes[(lo + i) * A2 + j] = code
        return (
            codes,
            np.stack(reps_n, axis=1).astype(np.int16),
            np.stack(reps_e, axis=1),
        )


_VECTOR_CACHE: WeakKeyDictionary = WeakKeyDictionary()


def _dense_tables_for(tagger: CompiledTagger) -> _VectorTables | None:
    """The per-(grammar, wiring) dense closure, or None when the
    product automaton is too large to densify.

    The closure itself (edges, byte classes, skip prefilters) is pure
    Python — no NumPy — which is what lets the native engine reuse it
    under ``REPRO_DISABLE_NUMPY=1``. Only the wide *loop* and the
    batch lockstep kernel need NumPy; they gate on
    :func:`_vector_tables_for` instead."""
    per_grammar = _VECTOR_CACHE.get(tagger.grammar)
    if per_grammar is None:
        per_grammar = {}
        _VECTOR_CACHE[tagger.grammar] = per_grammar
    key = _wiring_key(tagger.plan.wiring)
    vt = per_grammar.get(key)
    if vt is None:
        vt = _VectorTables(tagger.tables, tagger.plan.units)
        per_grammar[key] = vt
    return vt if vt.ok else None


def _vector_tables_for(tagger: CompiledTagger) -> _VectorTables | None:
    """The dense tables gated on NumPy (the wide loop's requirement)."""
    if _np is None:
        return None
    return _dense_tables_for(tagger)


# ----------------------------------------------------------------------
class VectorTagger(CompiledTagger):
    """Wide-datapath tagger: the compiled engine with its per-byte loop
    replaced by the 8-byte-window vector loop (plus dead-region
    skipping). Everything else — streaming sessions, end-of-data
    flush, pickling discipline — is inherited, which is what makes
    bit-exactness structural rather than re-proved per feature.

    Falls back to the compiled loop transparently when NumPy is absent
    or the grammar's product automaton resists densification;
    :attr:`vector_active` says which loop is live.

    Example
    -------
    >>> from repro.grammar.examples import if_then_else
    >>> tagger = VectorTagger(if_then_else())
    >>> [str(t) for t in tagger.tag(b"if true then go else stop")]  # doctest: +ELLIPSIS
    [...]
    """

    def __init__(self, grammar, options=None, plan=None) -> None:
        super().__init__(grammar, options, plan)
        self._vt = _vector_tables_for(self)
        #: Skip-efficiency counters (bytes_skipped / bytes_scanned is
        #: the dead-region prefilter's hit rate).
        self.bytes_scanned = 0
        self.bytes_skipped = 0

    @property
    def vector_active(self) -> bool:
        return self._vt is not None

    def __reduce__(self):
        return (VectorTagger, (self.grammar, self.options))

    # ------------------------------------------------------------------
    def _run(self, data, st, error_sink, out) -> None:
        vt = self._vt
        if vt is None:
            return super()._run(data, st, error_sink, out)
        n = len(data)
        self.bytes_scanned += n
        cls = data.translate(vt.class_table)
        m = n >> 3
        starts = st.starts
        append = out.append
        pos = st.pos
        base = (st.tid8 >> 8) << 64
        if m:
            memo_get = vt.memo8.get
            build_window = vt.build_window
            skip_live = vt.skip_live
            int_ = int
            SKIP = _SKIP
            m8 = m << 3
            live_cache: dict[int, bytes] = {}
            windows = _np.frombuffer(cls, dtype="<u8", count=m).tolist()
            it = iter(windows)
            k = 0
            skipped = 0
            for window in it:
                entry = memo_get(base | window)
                if entry is None:
                    entry = build_window(base | window)
                if entry.__class__ is int_:
                    base = entry
                elif entry is SKIP:
                    # The window held a dead state on bare self-loops;
                    # fast-forward to the next live byte via the
                    # state's inert-byte prefilter (translate + find
                    # run at C speed over the class codes).
                    skipped += 8
                    sid = base >> 64
                    translated = live_cache.get(sid)
                    if translated is None:
                        translated = live_cache[sid] = cls.translate(
                            skip_live[sid]
                        )
                    hit = translated.find(1, (k << 3) + 8, m8)
                    extra = (m if hit < 0 else hit >> 3) - k - 1
                    if extra > 0:
                        deque(islice(it, extra), maxlen=0)
                        skipped += extra << 3
                        k += extra
                else:
                    base = entry(pos + (k << 3), starts, append, error_sink)
                k += 1
            self.bytes_skipped += skipped
        # Trailing bytes (n % 8) take the compiled per-byte path, which
        # also resolves the final partial window before a chunk edge.
        tid8 = (base >> 64) << 8
        done = m << 3
        if done < n:
            tables = self.tables
            memo_get = tables.memo.get
            build_step = tables.build_step
            units = self.units
            int_ = int
            DE = DetectEvent
            for i in range(done, n):
                step = memo_get(tid8 | data[i])
                if step is None:
                    step = build_step(tid8 >> 8, data[i])
                if step.__class__ is int_:
                    tid8 = step
                    continue
                tid8, events, start_ops, err = step
                ip = pos + i
                if err and error_sink is not None:
                    error_sink.append(ip)
                if events:
                    for u, q in events:
                        values = starts[u]
                        match_start = values[q[0]]
                        for j in q[1:]:
                            if values[j] < match_start:
                                match_start = values[j]
                        append((DE(units[u], ip), match_start))
                if start_ops:
                    for u, moves in start_ops:
                        old = starts[u]
                        starts[u] = tuple(
                            (
                                old[srcs[0]]
                                if len(srcs) == 1
                                else min(old[j] for j in srcs)
                            )
                            if srcs
                            else ip
                            for srcs in moves
                        )
        st.tid8 = tid8
        st.pos = pos + n


# ----------------------------------------------------------------------
class BatchScanner:
    """Advance many independent flow sessions in lockstep.

    ``feed_many`` takes parallel lists of streaming sessions (from
    ``tagger.stream()``) and chunks. With at least ``min_flows``
    distinct flows and feasible batch tables it runs the composed-class
    lockstep kernel; below the crossover (or without NumPy) it
    dispatches per flow through the wide loop, so callers never lose by
    routing everything here. Per-flow event/error order is identical
    to per-flow feeding — the lockstep kernel replays effectful
    columns through the same wide-step memo the per-flow loop uses.
    """

    def __init__(
        self,
        tagger: VectorTagger,
        min_flows: int = 24,
        metrics=None,
    ) -> None:
        self.tagger = tagger
        self.min_flows = min_flows
        self.metrics = metrics
        #: Lockstep batches run / flows dispatched per-flow (observability).
        self.batched = 0
        self.fallback = 0

    def session(self):
        """A fresh flow session compatible with :meth:`feed_many`."""
        return self.tagger.stream()

    # ------------------------------------------------------------------
    def feed_many(self, sessions: list, chunks: list) -> list[list]:
        """Feed ``chunks[i]`` into ``sessions[i]``; return each flow's
        completed :class:`DetectEvent` list (submission order)."""
        return [
            [event for event, _start in pairs]
            for pairs in self.feed_scan_many(sessions, chunks)
        ]

    def feed_scan_many(self, sessions: list, chunks: list) -> list[list]:
        """Like :meth:`feed_many` but with (event, match start) pairs."""
        tagger = self.tagger
        vt = tagger._vt
        bt = None
        # With the native kernel live, the per-flow C loop beats the
        # NumPy lockstep gather at any batch size, so "fallback" per-flow
        # dispatch is the fast path and lockstep is never engaged.
        if (
            vt is not None
            and len(sessions) >= self.min_flows
            and not getattr(tagger, "native_active", False)
        ):
            bt = vt.batch_tables()
        if self.metrics is not None:
            self.metrics.histogram(
                "batch.size", bounds=_BATCH_SIZE_BOUNDS
            ).observe(len(sessions))
        if bt is None:
            self.fallback += len(sessions)
            return [
                session.feed_scan(chunk)
                for session, chunk in zip(sessions, chunks)
            ]
        self.batched += 1
        return self._lockstep(bt, sessions, chunks)

    # ------------------------------------------------------------------
    def _lockstep(self, bt: _BatchTables, sessions: list, chunks: list):
        np = _np
        tagger = self.tagger
        vt = tagger._vt
        recovery = tagger.tables.recovery
        tagger.bytes_scanned += sum(len(chunk) for chunk in chunks)
        F = len(sessions)
        outs: list[list] = [[] for _ in range(F)]
        class_table = vt.class_table
        clss = [chunk.translate(class_table) for chunk in chunks]
        ncols_f = [len(chunk) >> 3 for chunk in chunks]
        ncols = max(ncols_f)
        states = [session.state for session in sessions]
        if ncols:
            S = vt.n_states
            P = bt.n_pair
            Q = bt.n_quad
            lut16, lut_quad, lut_oct = bt.lut16, bt.lut_quad, bt.lut_oct
            # Lower every flow's chunk to oct-class codes (premultiplied
            # by S), one column per 8 bytes; short flows pad with the
            # identity row.
            oct_codes = np.full((ncols, F), bt.pad, dtype=np.int32)
            for f, cls in enumerate(clss):
                nc = ncols_f[f]
                if nc:
                    pair = lut16.take(
                        np.frombuffer(cls, dtype="<u2", count=nc * 4)
                    )
                    pm = pair[0::2] * P
                    pm += pair[1::2]
                    quad = lut_quad.take(pm)
                    qm = quad[0::2] * Q
                    qm += quad[1::2]
                    oct_codes[:nc, f] = lut_oct.take(qm)
            # Lockstep: two array ops per 8-byte column advance every
            # flow's state at once.
            state_vec = np.array(
                [state.tid8 >> 8 for state in states], dtype=np.int32
            )
            idx = np.empty((ncols, F), dtype=np.int32)
            step_ext = bt.step_ext
            add = np.add
            for k in range(ncols):
                row = idx[k]
                add(oct_codes[k], state_vec, out=row)
                step_ext.take(row, out=state_vec, mode="clip")
            # Sparse exact replay of effectful columns, grouped by flow,
            # through the shared wide-window memo.
            effect = bt.eff_ext.take(idx, mode="clip")
            flows_hit, cols_hit = effect.T.nonzero()
            if len(flows_hit):
                pre_states = (idx[cols_hit, flows_hit] % S).tolist()
                flows_hit = flows_hit.tolist()
                cols_hit = cols_hit.tolist()
                memo_get = vt.memo8.get
                build_window = vt.build_window
                int_ = int
                current = -1
                windows = pos = starts = append = errors = None
                for j, f in enumerate(flows_hit):
                    if f != current:
                        current = f
                        state = states[f]
                        pos = state.pos
                        starts = state.starts
                        append = outs[f].append
                        errors = sessions[f].errors if recovery else None
                        # Lazy view: only the effectful columns' windows
                        # are materialized to Python ints.
                        windows = np.frombuffer(
                            clss[f], dtype="<u8", count=ncols_f[f]
                        )
                    k = cols_hit[j]
                    key = (pre_states[j] << 64) | int(windows[k])
                    entry = memo_get(key)
                    if entry is None:
                        entry = build_window(key)
                    if entry.__class__ is not int_ and entry is not _SKIP:
                        entry(pos + (k << 3), starts, append, errors)
            new_states = state_vec.tolist()
            for f, state in enumerate(states):
                state.tid8 = new_states[f] << 8
        # Trailing bytes per flow through the compiled loop.
        tables = tagger.tables
        memo_get = tables.memo.get
        build_step = tables.build_step
        units = tagger.units
        DE = DetectEvent
        int_ = int
        for f, state in enumerate(states):
            data = chunks[f]
            n = len(data)
            done = ncols_f[f] << 3
            pos = state.pos
            if done < n:
                tid8 = state.tid8
                starts = state.starts
                append = outs[f].append
                errors = sessions[f].errors if recovery else None
                for i in range(done, n):
                    step = memo_get(tid8 | data[i])
                    if step is None:
                        step = build_step(tid8 >> 8, data[i])
                    if step.__class__ is int_:
                        tid8 = step
                        continue
                    tid8, events, start_ops, err = step
                    ip = pos + i
                    if err and errors is not None:
                        errors.append(ip)
                    if events:
                        for u, q in events:
                            values = starts[u]
                            match_start = values[q[0]]
                            for j in q[1:]:
                                if values[j] < match_start:
                                    match_start = values[j]
                            append((DE(units[u], ip), match_start))
                    if start_ops:
                        for u, moves in start_ops:
                            old = starts[u]
                            starts[u] = tuple(
                                (
                                    old[srcs[0]]
                                    if len(srcs) == 1
                                    else min(old[j] for j in srcs)
                                )
                                if srcs
                                else ip
                                for srcs in moves
                            )
                state.tid8 = tid8
            state.pos = pos + n
        return outs


#: Batch-size histogram bounds: powers of two up to a large shard.
_BATCH_SIZE_BOUNDS = tuple(float(1 << i) for i in range(9))
