"""Back-end processor interface (the paper's §3.5).

"The back-end processor is customizable logic where many different
data processing functions can be implemented." Back-ends consume the
tagged-token stream; the applications in :mod:`repro.apps` (the XML-RPC
router, the content filter, the NIDS tagger) implement this protocol.
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

from repro.core.tagger import BehavioralTagger, GateLevelTagger
from repro.core.tokens import TaggedToken


@runtime_checkable
class Backend(Protocol):
    """A consumer of tagged tokens."""

    def on_token(self, token: TaggedToken, data: bytes) -> None:
        """Called once per detected token, in stream order."""

    def on_end(self, data: bytes) -> None:
        """Called after the final byte of the stream has been tagged."""


class TaggingPipeline:
    """Couples a tagger front end with one or more back-ends.

    Example
    -------
    >>> from repro.grammar.examples import if_then_else
    >>> class Collect:
    ...     def __init__(self): self.seen = []
    ...     def on_token(self, token, data): self.seen.append(token.token)
    ...     def on_end(self, data): pass
    >>> sink = Collect()
    >>> pipeline = TaggingPipeline(BehavioralTagger(if_then_else()), [sink])
    >>> _ = pipeline.process(b"go")
    >>> sink.seen
    ['go']
    """

    def __init__(
        self,
        tagger: BehavioralTagger | GateLevelTagger,
        backends: Iterable[Backend],
    ) -> None:
        self.tagger = tagger
        self.backends = list(backends)

    def process(self, data: bytes) -> list[TaggedToken]:
        """Tag ``data`` and dispatch every token to every back-end."""
        tokens = self.tagger.tag(data)
        for token in tokens:
            for backend in self.backends:
                backend.on_token(token, data)
        for backend in self.backends:
            backend.on_end(data)
        return tokens
