"""Ahead-of-time compiled scan artifacts.

The paper's deployment model compiles the grammar once, offline, and
loads the resulting tables into the device; the software engines here
instead materialize their tables lazily in every process.  This module
closes that gap: :func:`build_artifact` runs the full compilation
pipeline — :class:`~repro.core.scanplan.ScanPlan`, the compiled
product-automaton tables, and the vector engine's dense closure (byte
classes, edges, skip prefilters) — and serializes the result to one
self-describing binary blob; :func:`load_artifact` restores it into
the per-(grammar, wiring) caches so every engine on the ladder starts
warm without paying the closure again.  The native kernel's flattened
int32 tables re-lower from the restored dense closure (a few
milliseconds) rather than being stored: they embed a C capsule that
cannot round-trip, and lowering is three orders of magnitude cheaper
than the closure it consumes.

Blob layout::

    b"RART" | u32 header length | JSON header | marshal payload

The header carries everything needed to *identify* the artifact
(format ABI, interpreter tag, grammar name, wiring fields, content
key); the payload carries the tables as pure-builtin structures.
``marshal`` (not pickle) keeps loads fast and free of arbitrary code
execution, at the price of being interpreter-version specific — which
is why :func:`interpreter_tag` is part of the object key and a
mismatched blob raises :class:`ArtifactError` instead of loading.

Keying is two-level:

* :func:`content_id` — sha256 of the canonical grammar source
  (:func:`~repro.grammar.writer.write_yacc_grammar`) plus the wiring
  key.  This identifies the *logical* compilation input: two parses of
  the same source under the same wiring share one content id (the
  on-disk analogue of the in-process ``WeakKeyDictionary`` caches,
  which miss for structurally-equal grammar objects).
* :func:`object_key` — content id plus :func:`interpreter_tag` (format
  ABI + ``sys.implementation.cache_tag``).  This addresses the stored
  blob: bumping :data:`ARTIFACT_ABI` or changing interpreters
  invalidates old objects without touching the logical identity.
"""

from __future__ import annotations

import hashlib
import json
import marshal
import sys

from repro.core.compiled import _TABLE_CACHE, _CompiledTables
from repro.core.generator import TaggerOptions
from repro.core.scanplan import _wiring_key, build_scan_plan
from repro.core.tokenizer import TokenizerTemplateOptions
from repro.core.wiring import WiringOptions
from repro.errors import ReproError
from repro.grammar.cfg import Grammar
from repro.grammar.writer import write_yacc_grammar
from repro.grammar.yacc_parser import parse_yacc_grammar

__all__ = [
    "ARTIFACT_ABI",
    "ArtifactError",
    "CompiledArtifact",
    "build_artifact",
    "content_id",
    "interpreter_tag",
    "load_artifact",
    "object_key",
    "options_from_wiring_fields",
    "read_header",
    "wiring_fields",
]

#: Bumped whenever the serialized table layout changes; part of the
#: object key, so old blobs are simply never looked up again.
ARTIFACT_ABI = 1

_MAGIC = b"RART"

#: Field order matching ``scanplan._wiring_key``.
_WIRING_FIELDS = (
    "context_duplication",
    "start_mode",
    "loop_on_accept",
    "error_recovery",
    "longest_match",
    "keyword_boundary",
)


class ArtifactError(ReproError):
    """A blob is corrupt, truncated, or built for another interpreter."""


# ----------------------------------------------------------------------
# keying
# ----------------------------------------------------------------------
def wiring_fields(wiring: WiringOptions) -> list:
    """The wiring as a JSON-safe list (``_wiring_key`` order)."""
    return list(_wiring_key(wiring))


def options_from_wiring_fields(fields) -> TaggerOptions:
    """Rebuild :class:`TaggerOptions` from :func:`wiring_fields`."""
    if len(fields) != len(_WIRING_FIELDS):
        raise ArtifactError(
            f"wiring key has {len(fields)} fields, "
            f"expected {len(_WIRING_FIELDS)}"
        )
    cd, start_mode, loop, recovery, longest, boundary = fields
    return TaggerOptions(
        wiring=WiringOptions(
            context_duplication=bool(cd),
            start_mode=str(start_mode),
            loop_on_accept=bool(loop),
            error_recovery=bool(recovery),
            tokenizer=TokenizerTemplateOptions(
                longest_match=bool(longest),
                keyword_boundary=bool(boundary),
            ),
        )
    )


def content_id(source: str, wiring: WiringOptions) -> str:
    """sha256 of the logical compilation input: source + wiring."""
    digest = hashlib.sha256()
    digest.update(source.encode("utf-8"))
    digest.update(repr(_wiring_key(wiring)).encode("utf-8"))
    return digest.hexdigest()


def interpreter_tag() -> str:
    """The ABI half of the object key: blob format + marshal format."""
    return f"abi{ARTIFACT_ABI}-{sys.implementation.cache_tag}"


def object_key(source: str, wiring: WiringOptions) -> str:
    """sha256 addressing the stored blob (content id + engine ABI)."""
    digest = hashlib.sha256()
    digest.update(content_id(source, wiring).encode("ascii"))
    digest.update(interpreter_tag().encode("ascii"))
    return digest.hexdigest()


# ----------------------------------------------------------------------
# build
# ----------------------------------------------------------------------
def build_artifact(
    grammar: Grammar, options: TaggerOptions | None = None
) -> bytes:
    """Compile ``grammar`` fully and serialize the tables to one blob.

    Runs the compiled product automaton *and* the dense closure the
    vector/native engines share.  When the closure bails out (product
    automaton past the state cap) the blob degrades to source + wiring
    only and loading falls back to lazy compilation — correctness over
    cold-start speed, same ladder discipline as the engines themselves.
    """
    from repro.core.compiled import CompiledTagger
    from repro.core.vectorscan import _dense_tables_for

    options = options or TaggerOptions()
    source = write_yacc_grammar(grammar)
    tagger = CompiledTagger(grammar, options)
    vt = _dense_tables_for(tagger)
    header = {
        "format": _MAGIC.decode("ascii"),
        "abi": ARTIFACT_ABI,
        "interpreter": interpreter_tag(),
        "grammar": grammar.name,
        "wiring": wiring_fields(options.wiring),
        "content": content_id(source, options.wiring),
        "dense": vt is not None,
    }
    if vt is None:
        payload: dict = {"source": source}
    else:
        tables = tagger.tables
        # One DFA per token *name* (occurrences share them); store the
        # interned subset states in interning order so the load-time
        # replay reproduces identical state ids.
        dfa_states: dict[str, list] = {}
        for unit, dfa in zip(tagger.plan.units, tables.unit_dfas):
            name = unit.terminal.name
            if name not in dfa_states:
                dfa_states[name] = list(dfa.state_positions)
        payload = {
            "source": source,
            "tstates": list(tables.tstates),
            "dfa_states": dfa_states,
            "edges": vt.edges,
            "class_table": vt.class_table,
            "repr_byte": list(vt.repr_byte),
            "skip_live": vt.skip_live,
            "n_states": vt.n_states,
        }
        header["states"] = vt.n_states
        header["classes"] = len(vt.repr_byte)
    head = json.dumps(header, sort_keys=True).encode("utf-8")
    return (
        _MAGIC + len(head).to_bytes(4, "big") + head + marshal.dumps(payload)
    )


# ----------------------------------------------------------------------
# load
# ----------------------------------------------------------------------
def read_header(blob: bytes) -> dict:
    """Parse and validate the JSON header without unmarshalling tables
    (safe across interpreter versions; used by ``registry inspect``)."""
    if blob[:4] != _MAGIC:
        raise ArtifactError("not a scan artifact (bad magic)")
    head_len = int.from_bytes(blob[4:8], "big")
    if len(blob) < 8 + head_len:
        raise ArtifactError("truncated artifact header")
    try:
        header = json.loads(blob[8 : 8 + head_len])
    except ValueError as exc:
        raise ArtifactError(f"corrupt artifact header: {exc}") from None
    return header


class CompiledArtifact:
    """A loaded artifact: the grammar, its options, and warm caches.

    Constructing taggers from an artifact is cheap — the plan, compiled
    tables and dense closure are already installed in the engine caches
    keyed by :attr:`grammar`, so :meth:`tagger` skips straight to
    (at most) the native kernel's fast re-lowering.
    """

    __slots__ = ("grammar", "options", "header", "nbytes", "ref")

    def __init__(
        self,
        grammar: Grammar,
        options: TaggerOptions,
        header: dict,
        nbytes: int = 0,
    ) -> None:
        self.grammar = grammar
        self.options = options
        self.header = header
        self.nbytes = nbytes
        #: ``name@version`` when loaded through a registry, else None.
        self.ref: str | None = None

    @property
    def content(self) -> str:
        return self.header["content"]

    @property
    def dense(self) -> bool:
        return bool(self.header.get("dense"))

    def tagger(self, engine: str = "auto"):
        """A :class:`~repro.core.tagger.BehavioralTagger` over the
        restored tables (``engine`` accepts the same names as
        :func:`~repro.core.capabilities.resolve_engine`)."""
        from repro.core.tagger import BehavioralTagger

        return BehavioralTagger(self.grammar, self.options, engine=engine)


def load_artifact(blob: bytes) -> CompiledArtifact:
    """Deserialize a blob and install its tables into the engine caches.

    Raises :class:`ArtifactError` for corrupt blobs or blobs built
    under a different interpreter/ABI tag (callers holding the grammar
    source — the registry does — recompile and republish instead).
    """
    header = read_header(blob)
    if header.get("interpreter") != interpreter_tag():
        raise ArtifactError(
            f"artifact built for {header.get('interpreter')!r}, "
            f"this interpreter is {interpreter_tag()!r}"
        )
    head_len = int.from_bytes(blob[4:8], "big")
    try:
        payload = marshal.loads(blob[8 + head_len :])
    except (ValueError, EOFError, TypeError) as exc:
        raise ArtifactError(f"corrupt artifact payload: {exc}") from None
    grammar = parse_yacc_grammar(
        payload["source"], name=header.get("grammar", "grammar")
    )
    options = options_from_wiring_fields(header["wiring"])
    if header.get("dense"):
        _install(grammar, options, payload)
    artifact = CompiledArtifact(grammar, options, header, nbytes=len(blob))
    return artifact


def _install(grammar: Grammar, options: TaggerOptions, payload: dict) -> None:
    """Rebuild the compiled tables and dense closure from a payload and
    install them into the per-(grammar, wiring) engine caches.

    The replay relies on interning determinism: token-DFA subset
    states and global product states are appended in stored order, so
    every integer id in the serialized edges/memo lands on the same
    object it was derived from (the cold-start differential test pins
    this across processes and engine-gate permutations).
    """
    from repro.core import vectorscan

    plan = build_scan_plan(grammar, options.wiring)
    key = _wiring_key(options.wiring)
    tables = _CompiledTables(plan)
    name_to_dfa = {}
    for unit, dfa in zip(plan.units, tables.unit_dfas):
        name_to_dfa.setdefault(unit.terminal.name, dfa)
    for name, states in payload["dfa_states"].items():
        dfa = name_to_dfa.get(name)
        if dfa is None:
            raise ArtifactError(f"artifact names unknown token {name!r}")
        for positions in states[1:]:
            dfa._state_id(tuple(positions))
    for t in payload["tstates"][1:]:
        tables._intern(t)
    n_states = payload["n_states"]
    if len(tables.tstates) < n_states:
        raise ArtifactError(
            f"artifact closure has {n_states} states but only "
            f"{len(tables.tstates)} restored"
        )
    # The compiled engine's step memo is the dense edge set re-shifted
    # (both are keyed ``tid << 8 | byte``), so one stored table serves
    # both engines.
    edges = payload["edges"]
    memo = tables.memo
    for k, sig in edges.items():
        if sig.__class__ is int:
            memo[k] = sig << 8
        else:
            memo[k] = (sig[0] << 8, sig[1], sig[2], sig[3])

    vt = vectorscan._VectorTables.__new__(vectorscan._VectorTables)
    vt.tables = tables
    vt.units = plan.units
    vt.ok = True
    vt.n_states = n_states
    vt.edges = edges
    vt.class_table = payload["class_table"]
    vt.repr_byte = payload["repr_byte"]
    vt.skip_live = payload["skip_live"]
    vt.memo8 = {}
    vt._prog_cache = {}
    vt._batch = None

    per_tables = _TABLE_CACHE.get(grammar)
    if per_tables is None:
        per_tables = {}
        _TABLE_CACHE[grammar] = per_tables
    per_tables[key] = tables
    per_vector = vectorscan._VECTOR_CACHE.get(grammar)
    if per_vector is None:
        per_vector = {}
        vectorscan._VECTOR_CACHE[grammar] = per_vector
    per_vector[key] = vt
