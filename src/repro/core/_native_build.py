"""Build and load the native scan kernel.

The kernel ships as C source (``_nativescan.c``) next to this module.
It can be built two ways:

* ahead of time, by ``pip install`` / ``python setup.py build_ext``
  (the optional extension declared in ``setup.py``), which drops
  ``_nativescan.*.so`` next to the source; or
* just in time, here: if no prebuilt extension is importable we invoke
  the platform C compiler once and cache the shared object under a
  user cache directory, so a source checkout run via ``PYTHONPATH=src``
  still gets the native loop without any install step.

Everything degrades to ``None`` — no compiler, sandboxed filesystem,
``REPRO_DISABLE_NATIVE=1`` — and callers fall back down the engine
ladder (native → vector → compiled).
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import shlex
import subprocess
import sys
import sysconfig
import tempfile

_SOURCE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_nativescan.c")

#: Bumped when the kernel's Python-visible contract changes, to key the
#: build cache alongside the source hash.
_ABI_TAG = "1"

_cached_module = None
_attempted = False


def _disabled() -> bool:
    return os.environ.get("REPRO_DISABLE_NATIVE", "") not in ("", "0")


def _compiler() -> list[str] | None:
    """The C compiler command, or None if none is available."""
    cc = sysconfig.get_config_var("CC") or os.environ.get("CC") or "cc"
    argv = shlex.split(cc)
    if not argv:
        return None
    from shutil import which

    return argv if which(argv[0]) else None


def compiler_available() -> bool:
    return _compiler() is not None


def _cache_dir() -> str:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return override
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro-native")


def _cache_key() -> str:
    with open(_SOURCE, "rb") as fh:
        digest = hashlib.sha256(fh.read())
    digest.update(_ABI_TAG.encode())
    digest.update(sys.implementation.cache_tag.encode())
    return digest.hexdigest()[:16]


def _ext_suffix() -> str:
    return sysconfig.get_config_var("EXT_SUFFIX") or ".so"


def _jit_build() -> str | None:
    """Compile the kernel into the cache; return the .so path or None."""
    argv = _compiler()
    if argv is None:
        return None
    cache = _cache_dir()
    target = os.path.join(cache, f"_nativescan-{_cache_key()}{_ext_suffix()}")
    if os.path.exists(target):
        return target
    include = sysconfig.get_path("include")
    if not include:
        return None
    try:
        os.makedirs(cache, exist_ok=True)
        # Build into a private temp name, then atomically publish, so
        # concurrent workers racing on a cold cache never load a
        # half-written object.
        fd, tmp = tempfile.mkstemp(
            dir=cache, prefix="_nativescan-build-", suffix=_ext_suffix()
        )
        os.close(fd)
    except OSError:
        return None
    cmd = argv + [
        "-O2",
        "-fPIC",
        "-shared",
        "-fno-strict-aliasing",
        f"-I{include}",
        _SOURCE,
        "-o",
        tmp,
    ]
    platinclude = sysconfig.get_path("platinclude")
    if platinclude and platinclude != include:
        cmd.insert(-3, f"-I{platinclude}")
    try:
        proc = subprocess.run(
            cmd,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            timeout=120,
            check=False,
        )
        if proc.returncode != 0:
            os.unlink(tmp)
            return None
        os.replace(tmp, target)
        return target
    except (OSError, subprocess.SubprocessError):
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return None


def _load_from(path: str):
    spec = importlib.util.spec_from_file_location("repro.core._nativescan", path)
    if spec is None or spec.loader is None:
        return None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def load_kernel(probe: bool = True):
    """Return the loaded ``_nativescan`` module, or None.

    With ``probe=False`` only an already-loaded or prebuilt module is
    returned; the JIT compiler is never invoked (used by capability
    reporting, which must stay cheap and side-effect free).
    """
    global _cached_module, _attempted
    if _disabled():
        return None
    if _cached_module is not None:
        return _cached_module
    # Prebuilt extension installed next to the package?
    try:
        from repro.core import _nativescan  # type: ignore[attr-defined]

        _cached_module = _nativescan
        return _cached_module
    except ImportError:
        pass
    try:
        # A previous JIT build in the cache loads without a compiler, so
        # even probe=False (capability reporting) may use it: loading a
        # built artifact is cheap and side-effect free.
        target = os.path.join(
            _cache_dir(), f"_nativescan-{_cache_key()}{_ext_suffix()}"
        )
        if os.path.exists(target):
            _cached_module = _load_from(target)
            if _cached_module is not None:
                return _cached_module
    except Exception:
        pass
    if not probe or _attempted:
        return None
    _attempted = True
    try:
        path = _jit_build()
        if path is None:
            return None
        _cached_module = _load_from(path)
    except Exception:
        _cached_module = None
    return _cached_module


def kernel_source() -> str | None:
    """Where the active kernel came from: 'prebuilt', 'jit', or None."""
    module = load_kernel(probe=False)
    if module is None:
        return None
    path = getattr(module, "__file__", "") or ""
    return "jit" if _cache_dir() in path else "prebuilt"


# ----------------------------------------------------------------------
# Generic plain-C JIT: same cache/publish discipline as the scan
# kernel, for auxiliary kernels loaded via ctypes (no Python.h, so the
# artifact is interpreter-independent and needs no EXT_SUFFIX).
# ----------------------------------------------------------------------
def jit_shared_library(source: str, abi_tag: str) -> str | None:
    """Compile ``source`` (plain C, no CPython API) into the native
    build cache and return the shared-object path, or None.

    Degrades exactly like the scan kernel: ``REPRO_DISABLE_NATIVE=1``,
    a missing compiler, or an unwritable cache all yield None and the
    caller falls back down its engine ladder.  The cache key is the
    source hash plus ``abi_tag``, and the object is published
    atomically so racing workers never load a half-written file.
    """
    if _disabled():
        return None
    argv = _compiler()
    if argv is None:
        return None
    try:
        with open(source, "rb") as fh:
            digest = hashlib.sha256(fh.read())
    except OSError:
        return None
    digest.update(abi_tag.encode())
    key = digest.hexdigest()[:16]
    cache = _cache_dir()
    name = os.path.splitext(os.path.basename(source))[0]
    target = os.path.join(cache, f"{name}-{key}.so")
    if os.path.exists(target):
        return target
    try:
        os.makedirs(cache, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=cache, prefix=f"{name}-build-", suffix=".so"
        )
        os.close(fd)
    except OSError:
        return None
    cmd = argv + [
        "-O2",
        "-fPIC",
        "-shared",
        "-fno-strict-aliasing",
        source,
        "-o",
        tmp,
    ]
    try:
        proc = subprocess.run(
            cmd,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            timeout=120,
            check=False,
        )
        if proc.returncode != 0:
            os.unlink(tmp)
            return None
        os.replace(tmp, target)
        return target
    except (OSError, subprocess.SubprocessError):
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return None
