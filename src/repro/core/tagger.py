"""Tagger front ends: behavioral (fast) and gate-level (exact).

:class:`BehavioralTagger` is an event-driven software implementation of
*exactly* the hardware semantics — the same parallel per-occurrence
detection, arming across delimiter runs, longest-match look-ahead and
Follow-set gating — expressed over byte indices instead of pipeline
cycles. The test suite proves it equivalent to the gate-level netlist
simulation; applications and large benchmarks use it for speed.

By default the scan itself is executed by the compiled table-driven
engine (:class:`~repro.core.compiled.CompiledTagger`), which
precomputes the per-byte work into integer transition tables; the
original interpreted loop remains available as
``engine="interpreted"`` and is the executable reference semantics
the compiled engine is differentially tested against.

:class:`GateLevelTagger` drives the generated netlist through the
cycle-accurate simulator and decodes the detect/index output pins back
into tagged tokens. It is the ground truth.
"""

from __future__ import annotations

from typing import Literal
from weakref import WeakKeyDictionary

from repro.core.api import BufferedSession, StreamSession, warn_deprecated
from repro.core.compiled import CompiledTagger
from repro.core.generator import TaggerCircuit, TaggerOptions
from repro.core.scanplan import DetectEvent, build_scan_plan
from repro.core.tokens import TaggedToken
from repro.grammar.analysis import Occurrence
from repro.grammar.cfg import Grammar
from repro.grammar.regex import ast as rx
from repro.grammar.regex.glushkov import Glushkov
from repro.grammar.regex.nfa import NFA, compile_nfa

from repro.rtl.simulator import Simulator, stimulus_with_valid

__all__ = [
    "BehavioralTagger",
    "DetectEvent",
    "GateLevelTagger",
]


class BehavioralTagger:
    """Software twin of the generated hardware.

    ``engine`` selects the scan implementation: ``"compiled"`` (the
    default) runs the precompiled table-driven engine, bit-exact with
    the interpreted loop; ``"vector"`` runs the wide-datapath NumPy
    engine (:class:`~repro.core.vectorscan.VectorTagger`, which
    degrades to the compiled loop when NumPy is absent); ``"native"``
    runs the C inner loop over the same dense tables
    (:class:`~repro.core.nativescan.NativeTagger`, which degrades down
    the same ladder without a compiler or with
    ``REPRO_DISABLE_NATIVE=1``); ``"interpreted"`` runs the original
    per-byte Python loop (the reference semantics).

    Example
    -------
    >>> from repro.grammar.examples import if_then_else
    >>> tagger = BehavioralTagger(if_then_else())
    >>> [str(t) for t in tagger.tag(b"if true then go else stop")]  # doctest: +ELLIPSIS
    [...]
    """

    def __init__(
        self,
        grammar: Grammar,
        options: TaggerOptions | None = None,
        engine: Literal[
            "compiled", "interpreted", "vector", "native", "auto", "interp"
        ] = "compiled",
    ) -> None:
        from repro.core.capabilities import resolve_engine

        self.grammar = grammar
        self.options = options or TaggerOptions()
        #: Canonical engine name (``"auto"``/``"interp"`` resolved).
        engine = resolve_engine(engine)
        self.engine = engine
        plan = build_scan_plan(grammar, self.options.wiring)
        self.plan = plan
        self.units: list[Occurrence] = list(plan.units)
        self.starts = set(plan.starts)
        self.accepting = set(plan.accepting)
        self.successors = plan.successors
        self.automata: dict[str, Glushkov] = plan.automata
        self.delimiters = plan.delimiters
        self.longest_match = plan.longest_match
        self._boundary = plan.boundary
        self._index_of = plan.index_of
        #: stable unit ordering, so same-byte events come out in the
        #: same order as the hardware's detect port scan.
        self._unit_order = plan.unit_order
        if engine == "native":
            from repro.core.nativescan import NativeTagger

            self.compiled: CompiledTagger | None = NativeTagger(
                grammar, self.options, plan=plan
            )
        elif engine == "vector":
            from repro.core.vectorscan import VectorTagger

            self.compiled = VectorTagger(grammar, self.options, plan=plan)
        else:
            self.compiled = (
                CompiledTagger(grammar, self.options, plan=plan)
                if engine == "compiled"
                else None
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_ref(
        cls,
        ref: str,
        engine: str = "auto",
        registry=None,
    ) -> "BehavioralTagger":
        """Construct a tagger from a registry reference (``"xmlrpc@2"``).

        The referenced artifact's precompiled tables are loaded from
        the content-addressed store and installed into the engine
        caches, so construction skips plan building and the dense
        product-automaton closure entirely.  ``registry`` may be a
        :class:`~repro.service.registry.Registry`, a store root path,
        or None for the default store.
        """
        from repro.service.registry import Registry

        if registry is None:
            registry = Registry()
        elif not isinstance(registry, Registry):
            registry = Registry(registry)
        artifact = registry.load(ref)
        return cls(artifact.grammar, artifact.options, engine=engine)

    # ------------------------------------------------------------------
    def __reduce__(self):
        # Compact rebuild spec (see CompiledTagger.__reduce__): the
        # unpickling process re-derives plan and tables through the
        # shared caches instead of shipping materialized structure.
        return (BehavioralTagger, (self.grammar, self.options, self.engine))

    # ------------------------------------------------------------------
    def index_of(self, unit: Occurrence) -> int:
        """Default (or-tree) encoder index for a unit."""
        return self._index_of[unit]

    def stream(self) -> StreamSession:
        """A fresh incremental session (buffered for the interpreted
        engine, which has no incremental scan)."""
        if self.compiled is not None:
            return self.compiled.stream()
        return BufferedSession(self)

    # ------------------------------------------------------------------
    def events(self, data: bytes) -> list[DetectEvent]:
        """Raw detection events, bit-exact with the hardware detects."""
        if self.compiled is not None:
            return self.compiled.events(data)
        return [event for event, _starts in self._scan(data)]

    def events_and_errors(
        self, data: bytes
    ) -> tuple[list[DetectEvent], list[int]]:
        """Detection events plus §5.2 error positions.

        An error position ``j`` means the parser had lost all state
        when byte ``j`` arrived and the recovery logic re-armed the
        start tokenizers there. Requires
        ``options.wiring.error_recovery``.
        """
        if not self.options.wiring.error_recovery:
            raise ValueError("tagger built without error_recovery")
        if self.compiled is not None:
            return self.compiled.events_and_errors(data)
        errors: list[int] = []
        events = [e for e, _s in self._scan(data, error_sink=errors)]
        return events, errors

    def error_positions(self, data: bytes) -> list[int]:
        """Deprecated alias: the error half of :meth:`events_and_errors`."""
        warn_deprecated(
            "BehavioralTagger.error_positions", "events_and_errors"
        )
        return self.events_and_errors(data)[1]

    def tag(self, data: bytes) -> list[TaggedToken]:
        """Tagged tokens with lexemes (earliest-start reconstruction)."""
        if self.compiled is not None:
            return self.compiled.tag(data)
        tokens: list[TaggedToken] = []
        for event, start in self._scan(data):
            tokens.append(
                TaggedToken(
                    token=event.occurrence.terminal.name,
                    occurrence=event.occurrence,
                    lexeme=data[start : event.end],
                    start=start,
                    end=event.end,
                    index=self._index_of[event.occurrence],
                )
            )
        return tokens

    # ------------------------------------------------------------------
    def _scan(self, data: bytes, error_sink: list[int] | None = None):
        """Yield (DetectEvent, match_start) pairs in stream order.

        State per live unit mirrors the hardware registers: the arming
        bit and the set of lit position registers (mapped to the
        earliest start index that lit them). With error recovery on,
        a byte processed while *no* register anywhere holds state
        re-arms the starts (and is reported through ``error_sink``).
        """
        starts_cond_always = self.options.wiring.start_mode == "always"
        recovery = self.options.wiring.error_recovery
        delimiters = self.delimiters
        longest = self.longest_match

        armed: set[Occurrence] = set()
        active: dict[Occurrence, dict[int, int]] = {}
        detected_last: list[Occurrence] = []
        lost = False

        for i, byte in enumerate(data):
            next_byte = data[i + 1] if i + 1 < len(data) else None
            # Units enabled this byte by last byte's detections.
            enabled: set[Occurrence] = set()
            for unit in detected_last:
                enabled |= self.successors[unit]
            if starts_cond_always or i == 0:
                enabled |= self.starts
            if recovery and lost:
                enabled |= self.starts
                if error_sink is not None:
                    error_sink.append(i)

            is_delim = byte in delimiters
            detected_now: list[Occurrence] = []
            results: list[tuple[DetectEvent, int]] = []

            live = set(active) | armed | enabled
            new_armed: set[Occurrence] = set()
            for unit in live:
                entry = unit in enabled or unit in armed
                if entry and is_delim:
                    new_armed.add(unit)
                auto = self.automata[unit.terminal.name]
                previous = active.get(unit)
                lit: dict[int, int] = {}
                if previous:
                    for position, start in previous.items():
                        for successor in auto.follow[position]:
                            if byte in auto.position_bytes[successor]:
                                best = lit.get(successor)
                                if best is None or start < best:
                                    lit[successor] = start
                if entry:
                    for position in auto.first:
                        if byte in auto.position_bytes[position]:
                            best = lit.get(position)
                            if best is None or i < best:
                                lit[position] = i
                if lit:
                    active[unit] = lit
                elif previous:
                    del active[unit]

                # Detection with the Fig. 7 longest-match look-ahead.
                match_start: int | None = None
                boundary = self._boundary[unit.terminal.name]
                for position, start in lit.items():
                    if position not in auto.last:
                        continue
                    extension = (
                        auto.extension_bytes(position) if longest else frozenset()
                    )
                    extension |= boundary
                    if (
                        extension
                        and next_byte is not None
                        and next_byte in extension
                    ):
                        continue
                    if match_start is None or start < match_start:
                        match_start = start
                if match_start is not None:
                    detected_now.append(unit)
                    results.append(
                        (DetectEvent(unit, i + 1), match_start)
                    )

            if recovery:
                # Mirrors the hardware liveness cut exactly: position
                # D inputs and arming of *this* byte, plus the
                # registered detect of the *previous* byte.
                lost = not (active or new_armed or detected_last)
            armed = new_armed
            detected_last = detected_now
            results.sort(key=lambda pair: self._unit_order[pair[0].occurrence])
            yield from results


#: Reversed-pattern NFAs for start recovery, shared per grammar: every
#: GateLevelTagger over the same grammar reuses one token-name -> NFA
#: map instead of recompiling per instance.
_REVERSE_NFA_CACHE: WeakKeyDictionary = WeakKeyDictionary()


def _reverse_nfas_for(grammar: Grammar) -> dict[str, NFA]:
    cached = _REVERSE_NFA_CACHE.get(grammar)
    if cached is None:
        cached = {}
        _REVERSE_NFA_CACHE[grammar] = cached
    return cached


class GateLevelTagger:
    """Runs the generated netlist and decodes its outputs.

    ``run`` feeds one byte per cycle (plus flush cycles to drain the
    pipeline) and converts detect-pin pulses back to byte positions
    using the known pipeline latency.
    """

    def __init__(self, circuit: TaggerCircuit) -> None:
        self.circuit = circuit
        self.simulator = Simulator(circuit.netlist)
        self._occurrence_of_port = {
            port: occurrence
            for occurrence, port in circuit.detect_ports.items()
        }
        self._reverse_nfas: dict[str, NFA] = _reverse_nfas_for(
            circuit.grammar
        )

    # ------------------------------------------------------------------
    def _flush_cycles(self) -> int:
        latency = self.circuit.detect_latency
        if self.circuit.encoder is not None:
            latency += self.circuit.encoder.latency
        return latency + 2

    def events(self, data: bytes) -> list[DetectEvent]:
        """Detection events recovered from the detect output pins."""
        events, _errors = self._simulate(data, collect_errors=False)
        return events

    def events_and_errors(
        self, data: bytes
    ) -> tuple[list[DetectEvent], list[int]]:
        """Detection events plus §5.2 error positions, in one
        simulation pass (detect pins and the parse_error pin are read
        off the same cycles). Bit-exact with
        :meth:`BehavioralTagger.events_and_errors`.
        """
        if "parse_error" not in self.circuit.netlist.outputs:
            raise ValueError("circuit generated without error_recovery")
        return self._simulate(data, collect_errors=True)

    def stream(self) -> StreamSession:
        """A buffered session (the cycle-accurate simulation cannot
        scan incrementally; chunks are scanned at ``finish()``)."""
        return BufferedSession(self)

    def _simulate(
        self, data: bytes, collect_errors: bool
    ) -> tuple[list[DetectEvent], list[int]]:
        """One pass over the netlist reading detect (and optionally
        parse_error) pins, converting cycles to byte positions."""
        self.simulator.reset()
        frames = stimulus_with_valid(data, self._flush_cycles())
        latency = self.circuit.detect_latency
        events: list[DetectEvent] = []
        errors: list[int] = []
        for cycle, frame in enumerate(frames):
            outputs = self.simulator.step(frame)
            end = cycle - latency + 1  # exclusive end position
            if (
                collect_errors
                and outputs["parse_error"]
                and 0 <= end < len(data)
            ):
                errors.append(end)
            if end < 1:
                continue
            for port, occurrence in self._occurrence_of_port.items():
                if outputs[port]:
                    events.append(DetectEvent(occurrence, end))
        return events, errors

    def index_stream(self, data: bytes) -> list[tuple[int, int]]:
        """(end, index) pairs read off the encoder output pins.

        A pin-level probe of the Fig. 13 encoder, outside the
        :class:`~repro.core.api.TokenTagger` protocol (the portable
        equivalent is :meth:`tag`, whose tokens carry ``index``); kept
        for hardware validation, which must see the actual pins.
        """
        if self.circuit.encoder is None:
            raise ValueError("circuit has no encoder")
        self.simulator.reset()
        frames = stimulus_with_valid(data, self._flush_cycles())
        latency = self.circuit.index_latency
        width = self.circuit.encoder.width
        stream: list[tuple[int, int]] = []
        for cycle, frame in enumerate(frames):
            outputs = self.simulator.step(frame)
            end = cycle - latency + 1
            if end < 1 or not outputs["match_valid"]:
                continue
            index = sum(outputs[f"index{bit}"] << bit for bit in range(width))
            stream.append((end, index))
        return stream

    def error_positions(self, data: bytes) -> list[int]:
        """Deprecated alias: the error half of :meth:`events_and_errors`."""
        warn_deprecated(
            "GateLevelTagger.error_positions", "events_and_errors"
        )
        return self.events_and_errors(data)[1]

    def tag(self, data: bytes) -> list[TaggedToken]:
        """Tagged tokens; lexemes recovered by reversed-pattern match."""
        tokens: list[TaggedToken] = []
        for event in self.events(data):
            start = self._recover_start(data, event)
            tokens.append(
                TaggedToken(
                    token=event.occurrence.terminal.name,
                    occurrence=event.occurrence,
                    lexeme=data[start : event.end],
                    start=start,
                    end=event.end,
                    index=self.circuit.index_of(event.occurrence),
                )
            )
        return tokens

    def _recover_start(self, data: bytes, event: DetectEvent) -> int:
        """Earliest start of a match ending at ``event.end``.

        The hardware reports only ends; the longest match of the
        reversed pattern over the reversed prefix gives the start.
        """
        name = event.occurrence.terminal.name
        nfa: NFA | None = self._reverse_nfas.get(name)
        if nfa is None:
            pattern = self.circuit.grammar.lexspec.get(name).pattern
            nfa = compile_nfa(rx.reverse(pattern))
            self._reverse_nfas[name] = nfa
        reversed_prefix = bytes(reversed(data[: event.end]))
        length = nfa.longest_match(reversed_prefix, 0)
        if not length:
            return event.end - 1
        return event.end - length
