"""Compiled table-driven scan engine.

The hardware runs at line rate because every per-byte decision is
precompiled into parallel structure; the interpreted software twin
(:meth:`~repro.core.tagger.BehavioralTagger._scan`) re-derives that
work every byte from live Python dicts and frozensets. This module
performs the same precompilation in software, in two fused layers:

* **Per-token product machines.** Each token's Glushkov position
  automaton is fused with its entry input (the Follow-set enable /
  delimiter arming signal of Figs. 6–7 and 11) into a subset machine
  whose transitions are memoized as ``(state, entry, byte) ->
  (next_state, start-propagation moves, detect mask)`` integer-keyed
  rows. The longest-match look-ahead of Fig. 7 (plus the optional
  keyword boundary) is folded into a per-state 257-bit *detect mask* —
  bit ``b`` says "a match ends here if the next byte is ``b``" (bit
  256 is end-of-data) — and the unit-level Follow wiring becomes
  integer bitmasks: the units enabled by a detection are the OR of
  precomputed successor masks.

* **A global product automaton, materialized lazily.** The whole
  tagger's control state — every unit's subset state, the armed set,
  the previous detect set and the §5.2 liveness flag — is interned to
  one integer id, and each ``(id, byte)`` step is memoized as either a
  bare next id (no observable effect: the overwhelmingly common case
  inside a token) or a short program: events to emit, earliest-start
  propagations to apply, an error position to record. The per-byte
  hot loop is then a single dict lookup plus, rarely, a tiny program.
  Match *positions* (earliest starts) are data, not state — they are
  carried in per-unit lists and touched only when a program says so,
  which is what keeps the state space finite.

Detection needs one byte of look-ahead (Fig. 7), so the step for byte
``j`` first resolves byte ``j-1``'s detections; end-of-data resolves
the final byte. The engine is bit-exact with the interpreted one —
same events, same order, same error-recovery positions, same
earliest-start lexemes — which the differential test suite enforces
against the gate-level netlist simulation as well.

A streaming front end (:meth:`CompiledTagger.feed` /
:meth:`CompiledTagger.finish`, or independent :class:`CompiledStream`
sessions) carries the scan state across chunk boundaries, so packet
payloads can be tagged incrementally instead of re-scanning
concatenated buffers. Compiled tables are memoized per (grammar,
wiring) alongside the shared :class:`~repro.core.scanplan.ScanPlan`,
so constructing many taggers for the same grammar costs one build —
and the lazily-materialized rows warmed by one tagger are reused by
every later one.
"""

from __future__ import annotations

from weakref import WeakKeyDictionary

from repro.core.api import StreamSession, warn_deprecated
from repro.core.generator import TaggerOptions
from repro.core.scanplan import (
    DetectEvent,
    ScanPlan,
    _wiring_key,
    build_scan_plan,
)
from repro.core.tokens import TaggedToken
from repro.grammar.cfg import Grammar
from repro.grammar.regex.glushkov import Glushkov

#: Next-byte index used for "end of data" in detect masks and qual keys.
EOF = 256

_ALL_NEXT = (1 << 257) - 1

#: Safety valve for adversarial inputs: past this many memoized global
#: steps, further steps are computed on the fly without being cached
#: (correctness is unaffected — only the memo stops growing).
_MEMO_CAP = 1 << 18


class _TokenDFA:
    """Lazy subset DFA of one token pattern, fused with the entry input.

    States are subsets of Glushkov positions (state 0 = empty). The
    automaton is materialized on demand: the first time a ``(state,
    entry, byte)`` combination is exercised its full table row — next
    state, start-propagation *moves* and the next state's detect mask
    — is built and memoized, keyed by the packed integer
    ``state << 9 | entry << 8 | byte``. Rows are shared by every unit
    (grammar occurrence) of the same token.
    """

    __slots__ = (
        "auto",
        "first",
        "qual_masks",
        "state_ids",
        "state_positions",
        "detect_masks",
        "progs",
        "quals",
    )

    def __init__(
        self, auto: Glushkov, boundary: frozenset[int], longest: bool
    ) -> None:
        self.auto = auto
        self.first = tuple(sorted(auto.first))
        #: per-position 257-bit mask of next bytes for which a match
        #: ending at that position is *reported* (Fig. 7 look-ahead
        #: inverted); 0 for non-last positions. Bit 256: end of data
        #: never suppresses.
        boundary_mask = sum(1 << b for b in boundary)
        self.qual_masks: list[int] = []
        for p in range(auto.n_positions):
            if p in auto.last:
                suppress = boundary_mask
                if longest:
                    suppress |= auto.extension_mask(p)
                self.qual_masks.append(_ALL_NEXT & ~suppress)
            else:
                self.qual_masks.append(0)
        self.state_ids: dict[tuple[int, ...], int] = {(): 0}
        self.state_positions: list[tuple[int, ...]] = [()]
        self.detect_masks: list[int] = [0]
        #: (state<<9 | entry<<8 | byte) -> (next, moves, carry, detect)
        self.progs: dict[int, tuple] = {}
        #: (state<<9 | next_byte) -> indices of qualifying positions
        self.quals: dict[int, tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    def _state_id(self, positions: tuple[int, ...]) -> int:
        sid = self.state_ids.get(positions)
        if sid is None:
            sid = len(self.state_positions)
            self.state_ids[positions] = sid
            self.state_positions.append(positions)
            mask = 0
            for p in positions:
                mask |= self.qual_masks[p]
            self.detect_masks.append(mask)
        return sid

    def build_prog(self, key: int) -> tuple:
        """Materialize one table row (memoized under ``key``)."""
        state, entry, byte = key >> 9, (key >> 8) & 1, key & 0xFF
        src = self.state_positions[state]
        follow = self.auto.follow
        position_bytes = self.auto.position_bytes
        #: newly lit position -> source indices into ``src`` whose
        #: earliest-start values propagate to it (min); an empty tuple
        #: means entry-lit (start = current byte index).
        lit: dict[int, tuple[int, ...]] = {}
        for j, p in enumerate(src):
            for q in follow[p]:
                if byte in position_bytes[q]:
                    lit[q] = lit.get(q, ()) + (j,)
        if entry:
            for q in self.first:
                if byte in position_bytes[q]:
                    lit.setdefault(q, ())
        positions = tuple(sorted(lit))
        nst = self._state_id(positions)
        moves = tuple(lit[q] for q in positions)
        # carry: the move is an index-wise identity, so the earliest-
        # start list is unchanged and can be reused as-is.
        carry = bool(src) and moves == tuple((j,) for j in range(len(src)))
        prog = (nst, moves, carry, self.detect_masks[nst])
        self.progs[key] = prog
        return prog

    def build_qual(self, key: int) -> tuple[int, ...]:
        """Indices (into the state's position tuple) of positions whose
        match is reported given the next-byte index in ``key``."""
        state, nb = key >> 9, key & 0x1FF
        qual_masks = self.qual_masks
        q = tuple(
            j
            for j, p in enumerate(self.state_positions[state])
            if qual_masks[p] >> nb & 1
        )
        self.quals[key] = q
        return q


class _CompiledTables:
    """Flattened whole-tagger tables plus the lazily-built global
    product automaton, shared by every tagger over one (grammar,
    wiring) pair.

    A global control state is the tuple ``(states_items, armed, pdet,
    first)``: the non-empty per-unit subset states (ascending unit
    order), the armed bitmask, the *previous* byte's detect bitmask
    (needed one step later by the §5.2 liveness cut) and the
    start-of-data flag. States are interned to integer ids; the step
    memo maps ``id << 8 | byte`` to either a bare pre-shifted next id
    (no side effects) or ``(next_id << 8, events, start_ops, err)``.
    """

    __slots__ = (
        "n_units",
        "unit_dfas",
        "succ_masks",
        "start_mask",
        "delim",
        "always",
        "recovery",
        "tids",
        "tstates",
        "memo",
    )

    def __init__(self, plan: ScanPlan) -> None:
        dfas: dict[str, _TokenDFA] = {}
        for name, auto in plan.automata.items():
            dfas[name] = _TokenDFA(auto, plan.boundary[name], plan.longest_match)
        order = plan.unit_order
        self.n_units = len(plan.units)
        # Occurrences of the same token share one DFA, so a row warmed
        # by one context is free for every other.
        self.unit_dfas = [dfas[u.terminal.name] for u in plan.units]
        self.succ_masks = [
            sum(1 << order[t] for t in plan.successors[u]) for u in plan.units
        ]
        self.start_mask = sum(1 << order[u] for u in plan.starts)
        self.delim = tuple(b in plan.delimiters for b in range(256))
        self.always = plan.wiring.start_mode == "always"
        self.recovery = plan.wiring.error_recovery
        self.tids: dict[tuple, int] = {}
        self.tstates: list[tuple] = []
        self.memo: dict[int, object] = {}
        self._intern(((), 0, 0, True))  # id 0: start of data

    # ------------------------------------------------------------------
    def _intern(self, t: tuple) -> int:
        tid = self.tids.get(t)
        if tid is None:
            tid = len(self.tstates)
            self.tids[t] = tid
            self.tstates.append(t)
        return tid

    def build_step(self, tid: int, byte: int):
        """Materialize (and memoize) one global step.

        Mirrors one iteration of the interpreted per-byte loop, with
        byte ``j-1``'s detections resolved now that their look-ahead
        byte is known.
        """
        states_items, armed, pdet, first = self.tstates[tid]
        unit_dfas = self.unit_dfas

        # 1. Detections of the previous byte (its position registers
        #    are this state; ``byte`` is their look-ahead).
        det = 0
        events: tuple = ()
        for u, s in states_items:
            dfa = unit_dfas[u]
            dmask = dfa.detect_masks[s]
            if dmask and dmask >> byte & 1:
                det |= 1 << u
                qkey = (s << 9) | byte
                q = dfa.quals.get(qkey)
                if q is None:
                    q = dfa.build_qual(qkey)
                events += ((u, q),)

        # 2. §5.2 liveness cut of the previous byte: position state,
        #    arming, or the byte before's registered detects.
        lost = (
            self.recovery
            and not first
            and not (states_items or armed or pdet)
        )

        # 3. Enables: one OR of precomputed successor masks.
        em = 0
        dm = det
        succ_masks = self.succ_masks
        while dm:
            lsb = dm & -dm
            em |= succ_masks[lsb.bit_length() - 1]
            dm -= lsb
        if self.always or first:
            em |= self.start_mask
        if lost:
            em |= self.start_mask
        entry = em | armed
        new_armed = entry if self.delim[byte] else 0

        # 4. Per-unit product transitions.
        state_of = dict(states_items)
        active = 0
        for u, _s in states_items:
            active |= 1 << u
        new_items: list[tuple[int, int]] = []
        start_ops: tuple = ()
        m = active | entry
        while m:
            lsb = m & -m
            m -= lsb
            u = lsb.bit_length() - 1
            dfa = unit_dfas[u]
            key = (
                (state_of.get(u, 0) << 9) | (256 if entry & lsb else 0) | byte
            )
            pr = dfa.progs.get(key)
            if pr is None:
                pr = dfa.build_prog(key)
            nst, moves, carry, _dmask = pr
            if nst:
                new_items.append((u, nst))
                if not carry:
                    start_ops += ((u, moves),)

        ntid = self._intern((tuple(new_items), new_armed, det, False))
        err = self.recovery and lost
        if events or start_ops or err:
            step: object = (ntid << 8, events or None, start_ops or None, err)
        else:
            step = ntid << 8
        if len(self.memo) < _MEMO_CAP:
            self.memo[(tid << 8) | byte] = step
        return step


_TABLE_CACHE: WeakKeyDictionary = WeakKeyDictionary()


def _tables_for(grammar: Grammar, plan: ScanPlan) -> _CompiledTables:
    per_grammar = _TABLE_CACHE.get(grammar)
    if per_grammar is None:
        per_grammar = {}
        _TABLE_CACHE[grammar] = per_grammar
    key = _wiring_key(plan.wiring)
    tables = per_grammar.get(key)
    if tables is None:
        tables = _CompiledTables(plan)
        per_grammar[key] = tables
    return tables


class _ScanState:
    """Mutable per-scan registers: the interned global control state
    (pre-shifted by 8 for direct memo keying), the per-unit
    earliest-start lists, and the absolute stream position."""

    __slots__ = ("tid8", "starts", "pos")

    def __init__(self, n_units: int) -> None:
        self.tid8 = 0
        # One shared empty list is safe: start lists are replaced, never
        # mutated in place.
        self.starts: list[list[int]] = [[]] * n_units
        self.pos = 0

    def copy(self) -> "_ScanState":
        other = _ScanState.__new__(_ScanState)
        other.tid8 = self.tid8
        other.starts = list(self.starts)
        other.pos = self.pos
        return other


class CompiledTagger:
    """Table-driven tagger, bit-exact with the interpreted engine.

    Example
    -------
    >>> from repro.grammar.examples import if_then_else
    >>> tagger = CompiledTagger(if_then_else())
    >>> [str(t) for t in tagger.tag(b"if true then go else stop")]  # doctest: +ELLIPSIS
    [...]
    """

    def __init__(
        self,
        grammar: Grammar,
        options: TaggerOptions | None = None,
        plan: ScanPlan | None = None,
    ) -> None:
        self.grammar = grammar
        self.options = options or TaggerOptions()
        if plan is None:
            plan = build_scan_plan(grammar, self.options.wiring)
        self.plan = plan
        self.units = plan.units
        self.starts = plan.starts
        self.accepting = plan.accepting
        self.tables = _tables_for(grammar, plan)
        self._index_of = plan.index_of
        self._session: CompiledStream | None = None

    # ------------------------------------------------------------------
    def __reduce__(self):
        # Pickle as a compact rebuild spec — (grammar, options) — not
        # the materialized tables: the payload stays small and the
        # unpickling process rebuilds through the shared plan/table
        # caches, so every tagger shipped to one worker pays one build.
        return (CompiledTagger, (self.grammar, self.options))

    # ------------------------------------------------------------------
    def index_of(self, unit) -> int:
        """Default (or-tree) encoder index for a unit."""
        return self._index_of[unit]

    def new_state(self) -> _ScanState:
        return _ScanState(self.tables.n_units)

    # ------------------------------------------------------------------
    # one-shot API (mirrors BehavioralTagger)
    # ------------------------------------------------------------------
    def scan(self, data: bytes) -> list[tuple[DetectEvent, int]]:
        """(event, earliest match start) pairs in stream order."""
        out: list[tuple[DetectEvent, int]] = []
        state = self.new_state()
        self._run(data, state, None, out)
        self._flush(state, out)
        return out

    def events(self, data: bytes) -> list[DetectEvent]:
        """Raw detection events, bit-exact with the hardware detects."""
        return [event for event, _start in self.scan(data)]

    def events_and_errors(
        self, data: bytes
    ) -> tuple[list[DetectEvent], list[int]]:
        """Detection events plus §5.2 error positions."""
        if not self.tables.recovery:
            raise ValueError("tagger built without error_recovery")
        errors: list[int] = []
        out: list[tuple[DetectEvent, int]] = []
        state = self.new_state()
        self._run(data, state, errors, out)
        self._flush(state, out)
        return [event for event, _start in out], errors

    def error_positions(self, data: bytes) -> list[int]:
        """Deprecated alias: the error half of :meth:`events_and_errors`."""
        warn_deprecated(
            "CompiledTagger.error_positions", "events_and_errors"
        )
        return self.events_and_errors(data)[1]

    def tag(self, data: bytes) -> list[TaggedToken]:
        """Tagged tokens with lexemes (earliest-start reconstruction)."""
        index_of = self._index_of
        return [
            TaggedToken(
                token=event.occurrence.terminal.name,
                occurrence=event.occurrence,
                lexeme=data[start : event.end],
                start=start,
                end=event.end,
                index=index_of[event.occurrence],
            )
            for event, start in self.scan(data)
        ]

    # ------------------------------------------------------------------
    # streaming API
    # ------------------------------------------------------------------
    def stream(self) -> "CompiledStream":
        """A fresh independent streaming session."""
        return CompiledStream(self)

    def feed(self, chunk: bytes) -> list[DetectEvent]:
        """Feed one chunk into the tagger's default streaming session.

        Events are reported with absolute stream positions; a token
        ending on the chunk's final byte is reported by the next
        ``feed`` (or :meth:`finish`), once its look-ahead byte exists.
        """
        if self._session is None:
            self._session = self.stream()
        return self._session.feed(chunk)

    def finish(self) -> list[DetectEvent]:
        """Flush the default session and reset it for the next stream."""
        if self._session is None:
            return []
        events = self._session.finish()
        self._session = None
        return events

    # ------------------------------------------------------------------
    # the compiled per-byte loop
    # ------------------------------------------------------------------
    def _run(
        self,
        data: bytes,
        st: _ScanState,
        error_sink: list[int] | None,
        out: list[tuple[DetectEvent, int]],
    ) -> None:
        """Scan ``data``, mutating ``st`` and appending results.

        Each step resolves the *previous* byte's detections (their
        look-ahead byte is now known), so a final :meth:`_flush` is
        needed to resolve the last byte against end-of-data.
        """
        tables = self.tables
        memo_get = tables.memo.get
        build_step = tables.build_step
        units = self.units
        starts = st.starts
        append = out.append
        tid8 = st.tid8
        # Hoist every name the loop body touches out of global scope:
        # at ~10 bytecodes per quiet byte, LOAD_GLOBAL vs LOAD_FAST on
        # the event/start paths is a measurable slice of the loop.
        int_ = int
        DE = DetectEvent
        min_ = min
        len_ = len
        for i, byte in enumerate(data, st.pos):
            step = memo_get(tid8 | byte)
            if step is None:
                step = build_step(tid8 >> 8, byte)
            if step.__class__ is int_:
                tid8 = step
                continue
            tid8, events, start_ops, err = step
            if err and error_sink is not None:
                error_sink.append(i)
            if events:
                for u, q in events:
                    s = starts[u]
                    match_start = s[q[0]]
                    for j in q[1:]:
                        value = s[j]
                        if value < match_start:
                            match_start = value
                    append((DE(units[u], i), match_start))
            if start_ops:
                for u, moves in start_ops:
                    old = starts[u]
                    starts[u] = [
                        (
                            old[srcs[0]]
                            if len_(srcs) == 1
                            else min_(old[j] for j in srcs)
                        )
                        if srcs
                        else i
                        for srcs in moves
                    ]
        st.tid8 = tid8
        st.pos += len(data)

    def _flush(
        self, st: _ScanState, out: list[tuple[DetectEvent, int]]
    ) -> None:
        """Resolve the final byte's detections against end-of-data."""
        states_items = self.tables.tstates[st.tid8 >> 8][0]
        unit_dfas = self.tables.unit_dfas
        units = self.units
        starts = st.starts
        end = st.pos
        for u, s in states_items:
            dfa = unit_dfas[u]
            if dfa.detect_masks[s] >> EOF & 1:
                qkey = (s << 9) | EOF
                q = dfa.quals.get(qkey)
                if q is None:
                    q = dfa.build_qual(qkey)
                values = starts[u]
                match_start = values[q[0]]
                for j in q[1:]:
                    value = values[j]
                    if value < match_start:
                        match_start = value
                out.append((DetectEvent(units[u], end), match_start))


class CompiledStream(StreamSession):
    """One incremental scan over a chunked byte stream.

    ``feed`` accepts arbitrary chunk boundaries and returns the events
    (or ``(event, start)`` pairs via :meth:`feed_scan`) completed so
    far, with absolute stream positions; a token ending on a chunk's
    final byte is reported on the next call, once its Fig. 7
    look-ahead byte exists (:meth:`finish` resolves it against
    end-of-data). Error-recovery positions accumulate in
    :attr:`errors`.
    """

    def __init__(self, tagger: CompiledTagger) -> None:
        self.tagger = tagger
        self.state = tagger.new_state()
        self.errors: list[int] = []
        self._finished = False

    # ------------------------------------------------------------------
    def feed_scan(self, chunk: bytes) -> list[tuple[DetectEvent, int]]:
        """Feed a chunk; return completed (event, match start) pairs."""
        self._check_open()
        out: list[tuple[DetectEvent, int]] = []
        sink = self.errors if self.tagger.tables.recovery else None
        self.tagger._run(chunk, self.state, sink, out)
        return out

    def finish_scan(self) -> list[tuple[DetectEvent, int]]:
        """Resolve the final byte against end-of-data; end the stream."""
        self._check_open()
        out = self.finish_scan_snapshot()
        self.close()
        return out

    def close(self) -> None:
        """End the stream without flushing (feeding afterwards raises)."""
        self._finished = True

    def feed(self, chunk: bytes) -> list[DetectEvent]:
        return [event for event, _start in self.feed_scan(chunk)]

    def finish(self) -> list[DetectEvent]:
        return [event for event, _start in self.finish_scan()]

    # ------------------------------------------------------------------
    def low_watermark(self) -> int:
        """Earliest absolute position a future event can still start at.

        Callers buffering stream data for lexeme extraction may drop
        everything before this position.
        """
        state = self.state
        watermark = state.pos
        starts = state.starts
        for u, _s in self.tagger.tables.tstates[state.tid8 >> 8][0]:
            for value in starts[u]:
                if value < watermark:
                    watermark = value
        return watermark

    def finish_scan_snapshot(self) -> list[tuple[DetectEvent, int]]:
        """Like :meth:`finish_scan` but without consuming the stream:
        the flush runs on a snapshot, so feeding can continue
        afterwards. Used by back-ends that must report results
        mid-stream (e.g. per-flow inspection points)."""
        if self._finished:
            return []
        out: list[tuple[DetectEvent, int]] = []
        self.tagger._flush(self.state.copy(), out)
        return out
