"""The paper's primary contribution: the grammar-to-hardware token tagger.

* :mod:`repro.core.decoder` — character/class decoders (Figs. 4–5);
* :mod:`repro.core.tokenizer` — regex tokenizer templates (Figs. 6–7);
* :mod:`repro.core.wiring` — Follow-set syntactic control flow (Fig. 11);
* :mod:`repro.core.encoder` — token index encoder (eqs. 1–5);
* :mod:`repro.core.generator` — whole-tagger generation (Fig. 3);
* :mod:`repro.core.tagger` — behavioral and gate-level tagger front ends;
* :mod:`repro.core.api` — the unified TokenTagger/StreamSession surface;
* :mod:`repro.core.backend` — back-end processor interface (§3.5).
"""

from repro.core.api import BufferedSession, StreamSession, TokenTagger
from repro.core.tokens import TaggedToken
from repro.core.generator import TaggerCircuit, TaggerGenerator, TaggerOptions
from repro.core.compiled import CompiledStream, CompiledTagger
from repro.core.scanplan import DetectEvent, ScanPlan, build_scan_plan
from repro.core.tagger import BehavioralTagger, GateLevelTagger
from repro.core.vectorscan import BatchScanner, VectorTagger
from repro.core.nativescan import NativeTagger
from repro.core.capabilities import engine_capabilities

__all__ = [
    "BatchScanner",
    "BehavioralTagger",
    "BufferedSession",
    "CompiledStream",
    "CompiledTagger",
    "DetectEvent",
    "GateLevelTagger",
    "NativeTagger",
    "ScanPlan",
    "StreamSession",
    "TaggedToken",
    "TaggerCircuit",
    "TaggerGenerator",
    "TaggerOptions",
    "TokenTagger",
    "VectorTagger",
    "build_scan_plan",
    "engine_capabilities",
]
