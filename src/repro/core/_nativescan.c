/* Native scan kernel: the dense product-automaton tables lowered to a
 * flat C inner loop.
 *
 * This file is the checked-in native form of the scan engine (the
 * artifact a Cython lowering of the wide-datapath tables would emit,
 * maintained directly as CPython-API C so no Cython toolchain is ever
 * required to build or rebuild it).  The Python side
 * (repro.core.nativescan) flattens the closed product automaton that
 * repro.core.vectorscan computes into four read-only tables:
 *
 *   class_table[256]        byte -> byte-equivalence class
 *   step[state*C + class]   (next_state*C) << 2 | skip << 1 | eff
 *   prog_idx[state*C+class] offset of the edge's effect program
 *   progs[]                 int32 bytecode replaying an edge's effects
 *
 * plus per-state inert-byte prefilters for dead-region skipping
 * (skip_ofs / live_all) and the per-unit earliest-start register
 * capacities.  scan_chunk() then consumes an entire chunk in one call:
 * the quiet path is a two-load table walk with the GIL released, skip
 * edges fast-forward over inert bytes memchr-style, and effectful
 * edges run their tiny program against C-resident earliest-start
 * registers, appending (unit, end, match_start) triples to a spill
 * buffer.  Only those sparse triples ever surface to Python, where
 * they are materialized as the exact DetectEvent pairs the compiled
 * engine would have produced (same events, same order, same error
 * positions — enforced by tests/core/test_nativescan.py).
 *
 * Effect-program bytecode (all int32):
 *   OP_END                        end of program
 *   OP_ERR                        record a §5.2 error position
 *   OP_EVENT u k j0..j(k-1)       emit unit u ending here; match start
 *                                 is min over starts[u][j..]
 *   OP_STARTS u m (c s0..s(c-1))*m  replace starts[u] with m values,
 *                                 each min over old starts[u][s..]
 *                                 (c == 0 means "current position")
 *
 * The program order (ERR, EVENTs, STARTS) mirrors one iteration of the
 * compiled per-byte loop, which is what makes bit-exactness structural.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdint.h>
#include <string.h>

#define CAPSULE_NAME "repro.core._nativescan.tables"

enum { OP_END = 0, OP_ERR = 1, OP_EVENT = 2, OP_STARTS = 3 };

/* Spill-buffer capacity in (unit, end, start) triples: drained (with
 * the GIL re-acquired) whenever fewer than max_per_edge slots remain,
 * so one edge's program can never overflow it. */
#define HITS_CAP 4096

typedef struct {
    int32_t n_states;
    int32_t n_classes;
    int32_t n_units;
    int32_t n_progs;        /* int32 slots in progs */
    int32_t n_skip_rows;    /* 256-byte rows in live_all */
    int32_t total_cap;      /* sum of unit register capacities */
    int32_t max_cap;        /* largest single unit capacity */
    int32_t max_per_edge;   /* most triples one program can emit */
    uint8_t class_table[256];
    int32_t *step;          /* n_states * n_classes */
    int32_t *prog_idx;      /* n_states * n_classes */
    int32_t *progs;
    int32_t *skip_ofs;      /* n_states; row index into live_all or -1 */
    uint8_t *live_all;      /* n_skip_rows * 256 */
    int32_t *unit_ofs;      /* n_units + 1 prefix offsets */
    int32_t *unit_caps;     /* n_units */
    PyObject *units;        /* tuple of unit objects (strong ref) */
    PyTypeObject *det_type; /* DetectEvent, a tuple subclass (strong) */
} NativeTables;

static void
tables_free(NativeTables *t)
{
    if (t == NULL)
        return;
    PyMem_Free(t->step);
    PyMem_Free(t->prog_idx);
    PyMem_Free(t->progs);
    PyMem_Free(t->skip_ofs);
    PyMem_Free(t->live_all);
    PyMem_Free(t->unit_ofs);
    PyMem_Free(t->unit_caps);
    Py_XDECREF(t->units);
    Py_XDECREF((PyObject *)t->det_type);
    PyMem_Free(t);
}

static void
tables_destructor(PyObject *capsule)
{
    tables_free(PyCapsule_GetPointer(capsule, CAPSULE_NAME));
}

static void *
copy_buffer(const Py_buffer *view)
{
    void *mem = PyMem_Malloc(view->len ? (size_t)view->len : 1);
    if (mem == NULL) {
        PyErr_NoMemory();
        return NULL;
    }
    memcpy(mem, view->buf, (size_t)view->len);
    return mem;
}

/* ------------------------------------------------------------------ */
/* build_tables: validate + copy the flat tables into a capsule        */
/* ------------------------------------------------------------------ */

static int
validate_progs(const int32_t *progs, Py_ssize_t n_progs,
               const int32_t *caps, int32_t n_units, uint8_t *starts_bitmap)
{
    /* One linear walk: the stream must be a well-formed concatenation
     * of programs, and every op's unit/register indices must stay in
     * bounds, so the interpreter can never read outside the register
     * block even if handed a hostile table. Marks valid program start
     * offsets in the bitmap. */
    Py_ssize_t q = 0;
    int at_start = 1;
    while (q < n_progs) {
        if (at_start)
            starts_bitmap[q >> 3] |= (uint8_t)(1u << (q & 7));
        at_start = 0;
        int32_t op = progs[q++];
        if (op == OP_END) {
            at_start = 1;
        }
        else if (op == OP_ERR) {
            /* no operands */
        }
        else if (op == OP_EVENT) {
            if (q + 2 > n_progs)
                return -1;
            int32_t u = progs[q++];
            int32_t k = progs[q++];
            if (u < 0 || u >= n_units || k < 1 || q + k > n_progs)
                return -1;
            for (int32_t x = 0; x < k; x++) {
                int32_t j = progs[q++];
                if (j < 0 || j >= caps[u])
                    return -1;
            }
        }
        else if (op == OP_STARTS) {
            if (q + 2 > n_progs)
                return -1;
            int32_t u = progs[q++];
            int32_t m = progs[q++];
            if (u < 0 || u >= n_units || m < 0 || m > caps[u])
                return -1;
            for (int32_t x = 0; x < m; x++) {
                if (q >= n_progs)
                    return -1;
                int32_t c = progs[q++];
                if (c < 0 || q + c > n_progs)
                    return -1;
                for (int32_t r = 0; r < c; r++) {
                    int32_t s = progs[q++];
                    if (s < 0 || s >= caps[u])
                        return -1;
                }
            }
        }
        else {
            return -1;
        }
    }
    return at_start ? 0 : -1; /* must end exactly on a program boundary */
}

static PyObject *
build_tables(PyObject *self, PyObject *args)
{
    int n_states, n_classes, n_units, max_per_edge;
    Py_buffer class_table = {0}, step = {0}, prog_idx = {0}, progs = {0};
    Py_buffer skip_ofs = {0}, live_all = {0}, unit_caps = {0};
    PyObject *units, *det;
    NativeTables *t = NULL;
    uint8_t *bitmap = NULL;

    if (!PyArg_ParseTuple(
            args, "iiiy*y*y*y*y*y*y*O!Oi:build_tables",
            &n_states, &n_classes, &n_units,
            &class_table, &step, &prog_idx, &progs,
            &skip_ofs, &live_all, &unit_caps,
            &PyTuple_Type, &units, &det, &max_per_edge))
        return NULL;

#define FAIL(msg)                                                     \
    do {                                                              \
        if (!PyErr_Occurred())                                        \
            PyErr_SetString(PyExc_ValueError, msg);                   \
        goto error;                                                   \
    } while (0)

    if (n_states < 1 || n_classes < 1 || n_classes > 256 || n_units < 0)
        FAIL("bad table dimensions");
    if ((int64_t)n_states * n_classes > (int64_t)1 << 28)
        FAIL("step table too large");
    Py_ssize_t n_edges = (Py_ssize_t)n_states * n_classes;
    if (class_table.len != 256)
        FAIL("class_table must be 256 bytes");
    if (step.len != n_edges * 4 || prog_idx.len != n_edges * 4)
        FAIL("step/prog_idx size mismatch");
    if (progs.len % 4 || skip_ofs.len != (Py_ssize_t)n_states * 4)
        FAIL("progs/skip_ofs size mismatch");
    if (live_all.len % 256 || unit_caps.len != (Py_ssize_t)n_units * 4)
        FAIL("live_all/unit_caps size mismatch");
    if (PyTuple_GET_SIZE(units) != n_units)
        FAIL("units tuple size mismatch");
    if (!PyType_Check(det) ||
        !PyType_IsSubtype((PyTypeObject *)det, &PyTuple_Type) ||
        ((PyTypeObject *)det)->tp_itemsize != (Py_ssize_t)sizeof(PyObject *) ||
        ((PyTypeObject *)det)->tp_basicsize != PyTuple_Type.tp_basicsize)
        FAIL("event type must be a plain tuple subclass");
    if (max_per_edge < 1 || max_per_edge > HITS_CAP / 2)
        FAIL("bad max_per_edge");

    t = PyMem_Calloc(1, sizeof(NativeTables));
    if (t == NULL) {
        PyErr_NoMemory();
        goto error;
    }
    t->n_states = n_states;
    t->n_classes = n_classes;
    t->n_units = n_units;
    t->n_progs = (int32_t)(progs.len / 4);
    t->n_skip_rows = (int32_t)(live_all.len / 256);
    t->max_per_edge = max_per_edge;
    memcpy(t->class_table, class_table.buf, 256);
    if ((t->step = copy_buffer(&step)) == NULL ||
        (t->prog_idx = copy_buffer(&prog_idx)) == NULL ||
        (t->progs = copy_buffer(&progs)) == NULL ||
        (t->skip_ofs = copy_buffer(&skip_ofs)) == NULL ||
        (t->live_all = copy_buffer(&live_all)) == NULL ||
        (t->unit_caps = copy_buffer(&unit_caps)) == NULL)
        goto error;
    t->unit_ofs = PyMem_Malloc(((size_t)n_units + 1) * sizeof(int32_t));
    if (t->unit_ofs == NULL) {
        PyErr_NoMemory();
        goto error;
    }

    for (int i = 0; i < 256; i++)
        if (t->class_table[i] >= n_classes)
            FAIL("class_table entry out of range");

    int64_t total = 0;
    t->max_cap = 1;
    for (int u = 0; u < n_units; u++) {
        int32_t cap = t->unit_caps[u];
        if (cap < 1 || cap > 1 << 16)
            FAIL("unit capacity out of range");
        t->unit_ofs[u] = (int32_t)total;
        total += cap;
        if (cap > t->max_cap)
            t->max_cap = cap;
    }
    t->unit_ofs[n_units] = (int32_t)total;
    if (total > (int64_t)1 << 24)
        FAIL("register file too large");
    t->total_cap = (int32_t)total;

    bitmap = PyMem_Calloc(((size_t)t->n_progs >> 3) + 1, 1);
    if (bitmap == NULL) {
        PyErr_NoMemory();
        goto error;
    }
    if (validate_progs(t->progs, t->n_progs, t->unit_caps, n_units, bitmap))
        FAIL("malformed effect program stream");

    for (Py_ssize_t e = 0; e < n_edges; e++) {
        uint32_t v = (uint32_t)t->step[e];
        uint32_t next = v >> 2;
        if ((v & 3u) == 3u)
            FAIL("edge cannot be both effectful and skippable");
        if (next >= (uint32_t)n_edges || next % (uint32_t)n_classes)
            FAIL("step target out of range");
        if (v & 1u) {
            int32_t off = t->prog_idx[e];
            if (off < 0 || off >= t->n_progs ||
                !(bitmap[off >> 3] & (1u << (off & 7))))
                FAIL("prog_idx does not address a program start");
        }
        if (v & 2u) {
            /* skip edges must be bare self-loops of a state that has
             * an inert-byte prefilter row */
            Py_ssize_t state_row = e - e % n_classes;
            if (next != (uint32_t)state_row)
                FAIL("skip edge is not a self-loop");
            int32_t row = t->skip_ofs[e / n_classes];
            if (row < 0 || row >= t->n_skip_rows)
                FAIL("skip edge without a live-byte row");
        }
    }

    PyMem_Free(bitmap);
    bitmap = NULL;
    Py_INCREF(units);
    t->units = units;
    Py_INCREF(det);
    t->det_type = (PyTypeObject *)det;

    PyBuffer_Release(&class_table);
    PyBuffer_Release(&step);
    PyBuffer_Release(&prog_idx);
    PyBuffer_Release(&progs);
    PyBuffer_Release(&skip_ofs);
    PyBuffer_Release(&live_all);
    PyBuffer_Release(&unit_caps);

    PyObject *capsule = PyCapsule_New(t, CAPSULE_NAME, tables_destructor);
    if (capsule == NULL) {
        tables_free(t);
        return NULL;
    }
    return capsule;

error:
    PyMem_Free(bitmap);
    tables_free(t);
    PyBuffer_Release(&class_table);
    PyBuffer_Release(&step);
    PyBuffer_Release(&prog_idx);
    PyBuffer_Release(&progs);
    PyBuffer_Release(&skip_ofs);
    PyBuffer_Release(&live_all);
    PyBuffer_Release(&unit_caps);
    return NULL;
#undef FAIL
}

/* ------------------------------------------------------------------ */
/* the effect-program interpreter (runs with the GIL released)         */
/* ------------------------------------------------------------------ */

static inline int
run_prog(const NativeTables *t, const int32_t *pc,
         long long pos, int64_t *starts, int32_t *lens, int64_t *scratch,
         int64_t *hits, Py_ssize_t *ph, int rec_err)
{
    const int32_t *pe = t->progs + t->n_progs;
    Py_ssize_t h = *ph;
    for (;;) {
        if (pc >= pe)
            return -1;
        int32_t op = *pc++;
        if (op == OP_END)
            break;
        if (op == OP_ERR) {
            if (rec_err) {
                hits[3 * h] = -1;
                hits[3 * h + 1] = pos;
                hits[3 * h + 2] = 0;
                h++;
            }
        }
        else if (op == OP_EVENT) {
            int32_t u = *pc++;
            int32_t k = *pc++;
            const int64_t *su = starts + t->unit_ofs[u];
            int64_t m = su[*pc++];
            for (int32_t x = 1; x < k; x++) {
                int64_t v = su[*pc++];
                if (v < m)
                    m = v;
            }
            hits[3 * h] = u;
            hits[3 * h + 1] = pos;
            hits[3 * h + 2] = m;
            h++;
        }
        else { /* OP_STARTS (validated at build time) */
            int32_t u = *pc++;
            int32_t m = *pc++;
            int64_t *su = starts + t->unit_ofs[u];
            for (int32_t x = 0; x < m; x++) {
                int32_t c = *pc++;
                int64_t val;
                if (c == 0)
                    val = pos;
                else {
                    val = su[*pc++];
                    for (int32_t r = 1; r < c; r++) {
                        int64_t v = su[*pc++];
                        if (v < val)
                            val = v;
                    }
                }
                scratch[x] = val;
            }
            memcpy(su, scratch, (size_t)m * sizeof(int64_t));
            lens[u] = m;
        }
    }
    *ph = h;
    return 0;
}

/* ------------------------------------------------------------------ */
/* drain: materialize spill-buffer triples as Python objects           */
/* ------------------------------------------------------------------ */

static int
drain_hits(const NativeTables *t, const int64_t *hits, Py_ssize_t h,
           PyObject *out, PyObject *errors, int pairs)
{
    for (Py_ssize_t i = 0; i < h; i++) {
        int64_t u = hits[3 * i];
        long long pos = (long long)hits[3 * i + 1];
        if (u < 0) {
            PyObject *p = PyLong_FromLongLong(pos);
            if (p == NULL)
                return -1;
            int r = PyList_Append(errors, p);
            Py_DECREF(p);
            if (r < 0)
                return -1;
            continue;
        }
        /* DetectEvent(unit, end): allocated directly as the tuple
         * subclass (what tuple.__new__ would do), skipping the
         * namedtuple's Python-level __new__. */
        PyObject *event = t->det_type->tp_alloc(t->det_type, 2);
        if (event == NULL)
            return -1;
        PyObject *unit = PyTuple_GET_ITEM(t->units, (Py_ssize_t)u);
        Py_INCREF(unit);
        PyTuple_SET_ITEM(event, 0, unit);
        PyObject *end = PyLong_FromLongLong(pos);
        if (end == NULL) {
            Py_DECREF(event);
            return -1;
        }
        PyTuple_SET_ITEM(event, 1, end);
        if (!pairs) {
            /* events-only mode: the caller wants the bare DetectEvent
             * stream (CompiledTagger.events()), so skip the (event,
             * match_start) pair it would immediately strip. */
            int r0 = PyList_Append(out, event);
            Py_DECREF(event);
            if (r0 < 0)
                return -1;
            continue;
        }
        PyObject *start = PyLong_FromLongLong((long long)hits[3 * i + 2]);
        if (start == NULL) {
            Py_DECREF(event);
            return -1;
        }
        PyObject *pair = PyTuple_New(2);
        if (pair == NULL) {
            Py_DECREF(event);
            Py_DECREF(start);
            return -1;
        }
        PyTuple_SET_ITEM(pair, 0, event);
        PyTuple_SET_ITEM(pair, 1, start);
        int r = PyList_Append(out, pair);
        Py_DECREF(pair);
        if (r < 0)
            return -1;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* scan_chunk                                                          */
/* ------------------------------------------------------------------ */

static PyObject *
scan_chunk(PyObject *self, PyObject *args)
{
    PyObject *capsule, *starts_list, *out, *errors;
    int state;
    int pairs = 1;
    long long base;
    Py_buffer data;

    if (!PyArg_ParseTuple(args, "OiLy*O!O!O|p:scan_chunk",
                          &capsule, &state, &base, &data,
                          &PyList_Type, &starts_list,
                          &PyList_Type, &out, &errors, &pairs))
        return NULL;

    NativeTables *t = PyCapsule_GetPointer(capsule, CAPSULE_NAME);
    if (t == NULL)
        goto arg_error;
    if (state < 0 || state >= t->n_states) {
        PyErr_SetString(PyExc_ValueError, "state id out of range");
        goto arg_error;
    }
    if (PyList_GET_SIZE(starts_list) != t->n_units) {
        PyErr_SetString(PyExc_ValueError, "starts list size mismatch");
        goto arg_error;
    }
    if (errors != Py_None && !PyList_Check(errors)) {
        PyErr_SetString(PyExc_TypeError, "errors must be a list or None");
        goto arg_error;
    }

    int64_t *starts = NULL, *scratch = NULL, *hits = NULL;
    int32_t *lens = NULL;
    starts = PyMem_Malloc(((size_t)t->total_cap + 1) * sizeof(int64_t));
    lens = PyMem_Malloc(((size_t)t->n_units + 1) * sizeof(int32_t));
    scratch = PyMem_Malloc((size_t)t->max_cap * sizeof(int64_t));
    hits = PyMem_Malloc((size_t)HITS_CAP * 3 * sizeof(int64_t));
    if (starts == NULL || lens == NULL || scratch == NULL || hits == NULL) {
        PyErr_NoMemory();
        goto mem_error;
    }

    /* Load the per-unit earliest-start registers. */
    for (int32_t u = 0; u < t->n_units; u++) {
        PyObject *row = PyList_GET_ITEM(starts_list, u);
        PyObject **items;
        Py_ssize_t nrow;
        if (PyList_Check(row)) {
            items = ((PyListObject *)row)->ob_item;
            nrow = PyList_GET_SIZE(row);
        }
        else if (PyTuple_Check(row)) {
            items = ((PyTupleObject *)row)->ob_item;
            nrow = PyTuple_GET_SIZE(row);
        }
        else {
            PyErr_SetString(PyExc_TypeError,
                            "starts rows must be lists or tuples");
            goto mem_error;
        }
        if (nrow > t->unit_caps[u]) {
            PyErr_SetString(PyExc_ValueError,
                            "starts row exceeds unit capacity");
            goto mem_error;
        }
        lens[u] = (int32_t)nrow;
        int64_t *su = starts + t->unit_ofs[u];
        for (Py_ssize_t j = 0; j < nrow; j++) {
            su[j] = PyLong_AsLongLong(items[j]);
            if (su[j] == -1 && PyErr_Occurred())
                goto mem_error;
        }
    }

    {
        const uint8_t *dp = (const uint8_t *)data.buf;
        const uint8_t *ct = t->class_table;
        const int32_t *steps = t->step;
        const int32_t C = t->n_classes;
        Py_ssize_t n = data.len, i = 0, h = 0;
        int32_t sp = state * C; /* premultiplied state */
        long long skipped = 0;
        int rec_err = (errors != Py_None);
        Py_ssize_t drain_mark = HITS_CAP - t->max_per_edge;
        int fail = 0, corrupt = 0;

        Py_BEGIN_ALLOW_THREADS
        while (i < n) {
            uint32_t c = ct[dp[i]];
            uint32_t v = (uint32_t)steps[sp + c];
            if (v & 3u) {
                if (v & 1u) {
                    if (run_prog(t, t->progs + t->prog_idx[sp + c],
                                 base + i, starts, lens, scratch,
                                 hits, &h, rec_err)) {
                        corrupt = 1;
                        break;
                    }
                    if (h >= drain_mark) {
                        Py_BLOCK_THREADS
                        if (drain_hits(t, hits, h, out, errors, pairs) < 0)
                            fail = 1;
                        h = 0;
                        Py_UNBLOCK_THREADS
                        if (fail)
                            break;
                    }
                }
                else {
                    /* Inert self-loop in a dead state: fast-forward to
                     * the next live byte through the state's prefilter
                     * (one load per byte, no table step). */
                    const uint8_t *lv =
                        t->live_all +
                        ((size_t)t->skip_ofs[sp / C] << 8);
                    Py_ssize_t j = i + 1;
                    while (j < n && !lv[dp[j]])
                        j++;
                    skipped += j - i;
                    i = j;
                    continue;
                }
            }
            sp = (int32_t)(v >> 2);
            i++;
        }
        Py_END_ALLOW_THREADS

        if (corrupt) {
            PyErr_SetString(PyExc_RuntimeError,
                            "native effect program out of bounds");
            goto mem_error;
        }
        if (fail || (h && drain_hits(t, hits, h, out, errors, pairs) < 0))
            goto mem_error;

        /* Write the registers back as fresh Python lists. */
        for (int32_t u = 0; u < t->n_units; u++) {
            PyObject *row = PyList_New(lens[u]);
            if (row == NULL)
                goto mem_error;
            const int64_t *su = starts + t->unit_ofs[u];
            for (int32_t j = 0; j < lens[u]; j++) {
                PyObject *v2 = PyLong_FromLongLong((long long)su[j]);
                if (v2 == NULL) {
                    Py_DECREF(row);
                    goto mem_error;
                }
                PyList_SET_ITEM(row, j, v2);
            }
            PyList_SetItem(starts_list, u, row); /* steals row */
        }

        PyMem_Free(starts);
        PyMem_Free(lens);
        PyMem_Free(scratch);
        PyMem_Free(hits);
        PyBuffer_Release(&data);
        return Py_BuildValue("iL", sp / C, skipped);
    }

mem_error:
    PyMem_Free(starts);
    PyMem_Free(lens);
    PyMem_Free(scratch);
    PyMem_Free(hits);
arg_error:
    PyBuffer_Release(&data);
    return NULL;
}

/* ------------------------------------------------------------------ */

static PyMethodDef nativescan_methods[] = {
    {"build_tables", build_tables, METH_VARARGS,
     "Validate and intern the flat scan tables; returns a capsule."},
    {"scan_chunk", scan_chunk, METH_VARARGS,
     "Scan one chunk through the native loop; returns (state, skipped)."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef nativescan_module = {
    PyModuleDef_HEAD_INIT,
    "_nativescan",
    "C inner loop over the dense product-automaton tables.",
    -1,
    nativescan_methods,
};

PyMODINIT_FUNC
PyInit__nativescan(void)
{
    PyObject *mod = PyModule_Create(&nativescan_module);
    if (mod == NULL)
        return NULL;
    if (PyModule_AddIntConstant(mod, "HITS_CAP", HITS_CAP) ||
        PyModule_AddStringConstant(mod, "KERNEL", "c")) {
        Py_DECREF(mod);
        return NULL;
    }
    return mod;
}
