"""Unified engine-capability reporting.

Every optional engine has its own ``capability()`` — the vector
engine's NumPy gate (:func:`repro.core.vectorscan.capability`) and the
native engine's kernel/compiler gate
(:func:`repro.core.nativescan.capability`).  This module is the one
place that composes them into the block surfaced everywhere a consumer
asks "what is this process actually running": the CLI ``capabilities``
command and ``--version`` banner, ``ScanService.stats()``, and the
server admin ``/stats`` endpoint.

``probe=False`` (the default everywhere observability calls this)
never triggers a just-in-time kernel build — it reports what is
already loaded or prebuilt, so a stats scrape stays cheap and
side-effect free.
"""

from __future__ import annotations

__all__ = ["describe_capabilities", "engine_capabilities"]

#: Every engine name BehavioralTagger accepts, fallback ladder order.
ENGINES = ("interpreted", "compiled", "vector", "native")


def engine_capabilities(
    engine: str | None = None, probe: bool = False
) -> dict:
    """One dict with every optional engine's runtime flags.

    ``engine`` (when given) names the engine the caller has selected —
    e.g. a service's configured worker engine — and is echoed under
    ``"name"`` so stats consumers see both the choice and the
    environment it lands in.
    """
    from repro.core import nativescan, vectorscan

    caps: dict = {
        "engines": list(ENGINES),
        "vector": vectorscan.capability(),
        "native": nativescan.capability(probe=probe),
    }
    if engine is not None:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        caps["name"] = engine
    return caps


def describe_capabilities(probe: bool = False) -> str:
    """Human-readable flag listing (the CLI ``capabilities`` command)."""
    caps = engine_capabilities(probe=probe)
    lines = [f"engines: {', '.join(caps['engines'])}"]
    for name in ("vector", "native"):
        flags = ", ".join(f"{k}={v}" for k, v in caps[name].items())
        lines.append(f"{name}: {flags}")
    return "\n".join(lines)


def capability_summary() -> str:
    """One-line summary for the ``--version`` banner."""
    caps = engine_capabilities()
    vector = "numpy" if caps["vector"]["numpy"] else "no-numpy"
    native = caps["native"]
    if native["native"]:
        kernel = native["source"] or "loaded"
    elif native["disabled_by_env"]:
        kernel = "disabled"
    elif native["compiler"]:
        kernel = "buildable"
    else:
        kernel = "no-compiler"
    return f"vector: {vector}; native: {kernel}"
