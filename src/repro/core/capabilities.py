"""Unified engine-capability reporting.

Every optional engine has its own ``capability()`` — the vector
engine's NumPy gate (:func:`repro.core.vectorscan.capability`) and the
native engine's kernel/compiler gate
(:func:`repro.core.nativescan.capability`).  This module is the one
place that composes them into the block surfaced everywhere a consumer
asks "what is this process actually running": the CLI ``capabilities``
command and ``--version`` banner, ``ScanService.stats()``, and the
server admin ``/stats`` endpoint.

``probe=False`` (the default everywhere observability calls this)
never triggers a just-in-time kernel build — it reports what is
already loaded or prebuilt, so a stats scrape stays cheap and
side-effect free.
"""

from __future__ import annotations

__all__ = [
    "ENGINE_CHOICES",
    "describe_capabilities",
    "engine_capabilities",
    "resolve_engine",
]

#: Every engine name BehavioralTagger accepts, fallback ladder order.
ENGINES = ("interpreted", "compiled", "vector", "native")

#: Spellings :func:`resolve_engine` accepts (CLI ``--engine`` choices).
ENGINE_CHOICES = ("auto", "native", "vector", "compiled", "interpreted", "interp")

_ALIASES = {"interp": "interpreted"}


def resolve_engine(
    name: str = "auto", *, streaming: bool = False, probe: bool = False
) -> str:
    """Canonicalize an engine selection to one of :data:`ENGINES`.

    This is the single engine-name dispatch point shared by
    ``BehavioralTagger``, the CLI ``--engine`` flags, ``ScanService``
    and ``ScanServer`` (each module used to validate its own strings,
    and the accepted sets had drifted).  Accepts the canonical names,
    the ``"interp"`` shorthand, and ``"auto"`` — which walks the
    fallback ladder top-down using the capability gates: native when a
    kernel is loaded/prebuilt or a compiler could build one (and the
    env gate allows it), else vector when NumPy imports, else
    compiled.  ``probe=True`` lets the native check trigger a one-time
    JIT build; the default stays side-effect free.

    ``streaming=True`` additionally rejects ``"interpreted"``, whose
    whole-buffer scan cannot carry state across chunk boundaries —
    the services and server require an incremental engine.
    """
    canonical = _ALIASES.get(name, name)
    if canonical == "auto":
        from repro.core import nativescan, vectorscan

        native = nativescan.capability(probe=probe)
        vector = vectorscan.capability()
        if not native["disabled_by_env"] and (
            native["native"] or native["compiler"]
        ):
            canonical = "native"
        elif vector["numpy"] and not vector["disabled_by_env"]:
            canonical = "vector"
        else:
            canonical = "compiled"
    if canonical not in ENGINES:
        raise ValueError(
            f"unknown engine {name!r}; expected one of "
            f"{ENGINES + ('auto', 'interp')}"
        )
    if streaming and canonical == "interpreted":
        raise ValueError(
            "engine 'interpreted' has no incremental scan; streaming "
            "consumers need 'compiled', 'vector', 'native' or 'auto'"
        )
    return canonical


def engine_capabilities(
    engine: str | None = None, probe: bool = False
) -> dict:
    """One dict with every optional engine's runtime flags.

    ``engine`` (when given) names the engine the caller has selected —
    e.g. a service's configured worker engine — and is echoed under
    ``"name"`` so stats consumers see both the choice and the
    environment it lands in.
    """
    from repro.core import nativescan, vectorscan

    caps: dict = {
        "engines": list(ENGINES),
        "vector": vectorscan.capability(),
        "native": nativescan.capability(probe=probe),
    }
    if engine is not None:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        caps["name"] = engine
    return caps


def describe_capabilities(probe: bool = False) -> str:
    """Human-readable flag listing (the CLI ``capabilities`` command)."""
    caps = engine_capabilities(probe=probe)
    lines = [f"engines: {', '.join(caps['engines'])}"]
    for name in ("vector", "native"):
        flags = ", ".join(f"{k}={v}" for k, v in caps[name].items())
        lines.append(f"{name}: {flags}")
    return "\n".join(lines)


def capability_summary() -> str:
    """One-line summary for the ``--version`` banner."""
    caps = engine_capabilities()
    vector = "numpy" if caps["vector"]["numpy"] else "no-numpy"
    native = caps["native"]
    if native["native"]:
        kernel = native["source"] or "loaded"
    elif native["disabled_by_env"]:
        kernel = "disabled"
    elif native["compiler"]:
        kernel = "buildable"
    else:
        kernel = "no-compiler"
    return f"vector: {vector}; native: {kernel}"
