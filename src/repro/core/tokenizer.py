"""Hardware tokenizer templates (the paper's Figs. 6–7).

Every terminal occurrence gets a *tokenizer*: a register per pattern
position (the Glushkov construction realizes exactly the paper's
sequential / Not / One-or-None / One-or-More / Zero-or-More templates),
plus:

* an **arming register** implementing the delimiter stall of §3.2 —
  "the delimiter detection output is inverted and connected to the
  enable signals of the first registers in the token detection chains.
  It is necessary that only the first register of each token is
  stalled": once a predecessor enables this tokenizer, the armed bit
  holds through a run of delimiters and is consumed by the first
  non-delimiter character;
* the **longest-match look-ahead** of Fig. 7 — a detection is
  suppressed while the next character could extend the match, using
  the stage-2 (one-earlier) decoded bits as the "future" character.

Cycle contract (with the aligned decode pipeline of
:class:`~repro.core.decoder.DecoderBank`): a detect output registered
high at cycle ``u`` means the token's last byte was the input byte
presented at cycle ``u - DETECT_LATENCY``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.decoder import CUR_STAGE, DecoderBank
from repro.grammar.lexspec import TokenDef
from repro.grammar.regex import ast as rx
from repro.grammar.regex.glushkov import Glushkov, build_glushkov
from repro.rtl.netlist import Net, Netlist

#: Cycles from a byte on the input pins to a registered detect output
#: whose token ends at that byte (the aligned decode pipeline plus the
#: detect/position register).
DETECT_LATENCY = CUR_STAGE + 1


@dataclass
class TokenizerTemplateOptions:
    """Per-tokenizer construction options."""

    #: Fig. 7 look-ahead: report only the longest match of trailing
    #: repeats. Disabling reproduces the "detection at every cycle"
    #: behaviour the paper describes for a+ on a run of 'a's.
    longest_match: bool = True
    #: Require a non-token character after literal keyword tokens whose
    #: last byte is alphanumeric (prevents "go" firing inside "gone").
    #: Off by default — the paper instead assumes conforming input.
    keyword_boundary: bool = False
    #: Build the per-tokenizer liveness net consumed by the §5.2 error
    #: detector (set automatically when error recovery is enabled).
    track_liveness: bool = False


@dataclass
class TokenizerInstance:
    """The nets of one generated tokenizer."""

    name: str
    token: TokenDef
    glushkov: Glushkov
    enable: Net
    armed: Net
    entry: Net
    position_regs: list[Net]
    detect: Net
    #: High while this tokenizer holds any state for the current char —
    #: a position about to light, the arming bit holding, or a detect.
    #: Used by the §5.2 error detector: when no tokenizer is live the
    #: parse has died.
    liveness: Net | None = None
    #: Registers consumed by this tokenizer (area accounting).
    n_registers: int = 0
    notes: list[str] = field(default_factory=list)


def build_tokenizer(
    netlist: Netlist,
    decoders: DecoderBank,
    token: TokenDef,
    enable: Net,
    name: str,
    options: TokenizerTemplateOptions | None = None,
    glushkov: Glushkov | None = None,
) -> TokenizerInstance:
    """Instantiate the tokenizer hardware for one terminal occurrence.

    ``enable`` is the (possibly placeholder) net carrying the OR of the
    predecessor detections per the Follow-set wiring; it is consumed
    here but driven by :mod:`repro.core.wiring` in a later pass.
    """
    options = options or TokenizerTemplateOptions()
    auto = glushkov if glushkov is not None else build_glushkov(token.pattern)
    nl = netlist
    registers_before = nl.n_registers

    # Arming register (delimiter stall). armed_D is high only while the
    # current character is a delimiter (or the stream idle), so the
    # pending enable survives a delimiter run and dies otherwise. A
    # tokenizer that is enabled at all times ("starting tokenizers can
    # be enabled at all times", §3.3) needs no arming.
    if nl.is_const(enable) == 1:
        armed = nl.const(0)
        entry = enable
    else:
        armed = nl.placeholder(f"{name}_armed")
        entry = nl.or_(enable, armed, name=f"{name}_entry")
        nl.close_reg(
            armed,
            nl.and_(
                entry, decoders.cur_delim_or_idle(), name=f"{name}_armed_d"
            ),
        )

    # One register per pattern position; self/loop edges are sequential
    # (they pass through the position register), so placeholders first.
    position_qs = [
        nl.placeholder(f"{name}_p{p}") for p in range(auto.n_positions)
    ]
    position_ds: list[Net] = []
    # Invert the follow map: sources feeding each position.
    feeders: dict[int, list[int]] = {p: [] for p in range(auto.n_positions)}
    for source, targets in auto.follow.items():
        for target in targets:
            feeders[target].append(source)

    for p in range(auto.n_positions):
        sources: list[Net] = [position_qs[q] for q in sorted(feeders[p])]
        if p in auto.first:
            sources.append(entry)
        if not sources:
            # Unreachable position (possible in odd alternations).
            position_ds.append(nl.const(0))
            nl.drive_const(position_qs[p], 0)
            continue
        activation = (
            sources[0]
            if len(sources) == 1
            else nl.or_tree(sources, name=f"{name}_p{p}_src")
        )
        d = nl.and_(
            activation,
            decoders.cur(auto.position_bytes[p]),
            name=f"{name}_p{p}_d",
        )
        position_ds.append(d)
        nl.close_reg(position_qs[p], d)

    detect_terms: list[Net] = []
    notes: list[str] = []
    boundary_bytes = _keyword_boundary_bytes(token, options)
    for p in sorted(auto.last):
        extension = auto.extension_bytes(p) if options.longest_match else frozenset()
        extension |= boundary_bytes
        if extension:
            # Fig. 7: fire only when the *next* character cannot extend
            # the match. Registered from the D-side so the timing of
            # suppressed and plain detections is identical.
            suppressed = nl.and_(
                position_ds[p],
                nl.not_(decoders.nxt(extension), name=f"{name}_p{p}_next"),
                name=f"{name}_p{p}_lm",
            )
            detect_terms.append(nl.reg(suppressed, name=f"{name}_p{p}_det"))
            notes.append(f"position {p}: longest-match over {len(extension)} bytes")
        else:
            detect_terms.append(position_qs[p])
    detect = (
        detect_terms[0]
        if len(detect_terms) == 1
        else nl.or_tree(detect_terms, name=f"{name}_det")
    )

    # Liveness for the §5.2 error detector: any position about to
    # light, the arming bit about to hold, or a detection firing.
    liveness: Net | None = None
    if options.track_liveness:
        liveness_terms = [d for d in position_ds if nl.is_const(d) is None]
        armed_driver = armed.driver
        if hasattr(armed_driver, "d"):
            liveness_terms.append(armed_driver.d)
        liveness_terms.append(detect)
        liveness = nl.or_tree(liveness_terms, name=f"{name}_live")

    return TokenizerInstance(
        name=name,
        token=token,
        glushkov=auto,
        enable=enable,
        armed=armed,
        entry=entry,
        position_regs=position_qs,
        detect=detect,
        liveness=liveness,
        n_registers=nl.n_registers - registers_before,
        notes=notes,
    )


def _keyword_boundary_bytes(
    token: TokenDef, options: TokenizerTemplateOptions
) -> frozenset[int]:
    """Extension set enforcing a boundary after keyword-like literals."""
    if not options.keyword_boundary or not token.is_literal:
        return frozenset()
    text = token.fixed_text()
    if not text:
        return frozenset()
    if chr(text[-1]).isalnum():
        return rx.ALNUM.matched_bytes()
    return frozenset()
