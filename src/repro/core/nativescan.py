"""Native scan engine: the dense tables stepped by a C inner loop.

Fourth engine in the ladder (interpreted → compiled → vector →
native).  The paper's datapath sustains line rate because the product
automaton is lowered into flat hardware tables; this module performs
the same lowering in software.  The closed product automaton that
:mod:`repro.core.vectorscan` computes — byte-equivalence classes,
per-``(state, class)`` edges, dead-region inert masks and effect
signatures — is flattened into four contiguous arrays:

* ``step[state * C + class]``: the premultiplied next state with a
  2-bit tag (effectful / skippable) folded into the low bits, so the
  quiet path is two loads and a shift per byte;
* ``prog_idx`` + ``progs``: every effectful edge's replay program
  (error position, events with earliest-start folds, start-register
  moves) lowered to a tiny int32 bytecode executed inside the C loop;
* ``skip_ofs`` + ``live_all``: per-dead-state raw-byte prefilters the
  loop uses to fast-forward over inert regions memchr-style.

:func:`_nativescan.scan_chunk` then consumes an entire chunk in one
call with the GIL released, surfacing only the sparse effectful
results (events, error positions) back to Python — bit-exact with the
other three engines, enforced by the 4-way differential suite in
``tests/core/test_nativescan.py``.

The kernel builds on demand from the checked-in C source (see
:mod:`repro.core._native_build`); without a compiler, with
``REPRO_DISABLE_NATIVE=1``, or for automata that resist densification,
:class:`NativeTagger` degrades transparently down the ladder to the
vector or compiled loop.  :func:`capability` reports which rung is
live.  NumPy is *not* required: the dense closure is pure Python, so
the native engine stays available under ``REPRO_DISABLE_NUMPY=1``.
"""

from __future__ import annotations

import os
from array import array
from weakref import WeakKeyDictionary

from repro.core import _native_build
from repro.core.scanplan import DetectEvent, _wiring_key
from repro.core.vectorscan import VectorTagger, _dense_tables_for

__all__ = ["NativeTagger", "capability"]

#: Effect-program opcodes (mirrored by the C interpreter).
_OP_END = 0
_OP_ERR = 1
_OP_EVENT = 2
_OP_STARTS = 3


def capability(probe: bool = False) -> dict:
    """The native engine's runtime capability flags (for ``/stats``).

    With ``probe=False`` (the default) this never invokes the C
    compiler — ``native`` then reports whether a kernel is *already*
    loaded or prebuilt. Pass ``probe=True`` to attempt (and cache) a
    just-in-time build.
    """
    ext = _native_build.load_kernel(probe=probe)
    return {
        "native": ext is not None,
        "disabled_by_env": bool(os.environ.get("REPRO_DISABLE_NATIVE")),
        "compiler": _native_build.compiler_available(),
        "source": _native_build.kernel_source(),
    }


# ----------------------------------------------------------------------
# Lowering the dense closure to flat C tables
# ----------------------------------------------------------------------
class _NativeTables:
    """Flat native tables for one (grammar, wiring) pair, interned in a
    validated capsule owned by the C module; shared by every
    :class:`NativeTagger` over that pair."""

    __slots__ = ("ext", "capsule")

    def __init__(self, ext, vt, tables, units: tuple) -> None:
        n_states = vt.n_states
        repr_byte = vt.repr_byte
        n_classes = len(repr_byte)
        class_table = vt.class_table
        edges = vt.edges
        skip_live = vt.skip_live
        n_units = len(units)
        unit_caps = array(
            "i",
            (max(1, dfa.auto.n_positions) for dfa in tables.unit_dfas),
        )

        step = array("i")
        prog_idx = array("i")
        progs = array("i", [_OP_END])  # offset 0: the empty program
        prog_offsets: dict[tuple, int] = {}
        max_per_edge = 1

        # Dead-state prefilters: one 256-entry raw-byte row per skip
        # state (the class-indexed mask composed with the class map, so
        # the C loop tests input bytes directly).
        skip_ofs = array("i", [-1]) * n_states
        rows: list[bytes] = []
        for tid, live in skip_live.items():
            skip_ofs[tid] = len(rows)
            rows.append(bytes(live[class_table[b]] for b in range(256)))
        live_all = b"".join(rows)

        for tid in range(n_states):
            base = tid << 8
            for byte in repr_byte:
                sig = edges[base | byte]
                if sig.__class__ is int:
                    skip = sig == tid and skip_ofs[tid] >= 0
                    step.append((sig * n_classes) << 2 | (2 if skip else 0))
                    prog_idx.append(0)
                    continue
                ntid, events, start_ops, err = sig
                code = [_OP_ERR] if err else []
                emitted = 1 if err else 0
                for u, q in events or ():
                    code += (_OP_EVENT, u, len(q))
                    code += q
                    emitted += 1
                for u, moves in start_ops or ():
                    code += (_OP_STARTS, u, len(moves))
                    for srcs in moves:
                        code.append(len(srcs))
                        code += srcs
                code.append(_OP_END)
                key = tuple(code)
                offset = prog_offsets.get(key)
                if offset is None:
                    offset = len(progs)
                    progs.extend(code)
                    prog_offsets[key] = offset
                if emitted > max_per_edge:
                    max_per_edge = emitted
                step.append((ntid * n_classes) << 2 | 1)
                prog_idx.append(offset)

        self.ext = ext
        self.capsule = ext.build_tables(
            n_states,
            n_classes,
            n_units,
            class_table,
            step,
            prog_idx,
            progs,
            skip_ofs,
            live_all,
            unit_caps,
            tuple(units),
            DetectEvent,
            max_per_edge,
        )


_NATIVE_CACHE: WeakKeyDictionary = WeakKeyDictionary()
_UNBUILDABLE = object()


def _native_tables_for(tagger) -> _NativeTables | None:
    """The per-(grammar, wiring) native tables, or None when the kernel
    is unavailable or the automaton resists densification."""
    ext = _native_build.load_kernel()
    if ext is None:
        return None
    vt = _dense_tables_for(tagger)
    if vt is None:
        return None
    per_grammar = _NATIVE_CACHE.get(tagger.grammar)
    if per_grammar is None:
        per_grammar = {}
        _NATIVE_CACHE[tagger.grammar] = per_grammar
    key = _wiring_key(tagger.plan.wiring)
    nt = per_grammar.get(key)
    if nt is None:
        if array("i").itemsize == 4:
            try:
                nt = _NativeTables(ext, vt, tagger.tables, tagger.plan.units)
            except (ValueError, MemoryError, OverflowError):
                nt = _UNBUILDABLE
        else:  # pragma: no cover - exotic int width
            nt = _UNBUILDABLE
        per_grammar[key] = nt
    return None if nt is _UNBUILDABLE else nt


# ----------------------------------------------------------------------
class NativeTagger(VectorTagger):
    """Native-loop tagger: the vector engine with its per-window Python
    loop replaced by one C call per chunk. Streaming sessions,
    end-of-data flush and pickling discipline are inherited from the
    compiled engine, which keeps bit-exactness structural.

    Falls back transparently down the ladder — to the vector loop when
    only the kernel is missing, to the compiled loop when the dense
    tables are too — and :attr:`native_active` says which loop is
    live.

    Example
    -------
    >>> from repro.grammar.examples import if_then_else
    >>> tagger = NativeTagger(if_then_else())
    >>> [str(t) for t in tagger.tag(b"if true then go else stop")]  # doctest: +ELLIPSIS
    [...]
    """

    def __init__(self, grammar, options=None, plan=None) -> None:
        super().__init__(grammar, options, plan)
        self._nt = _native_tables_for(self)

    @property
    def native_active(self) -> bool:
        return self._nt is not None

    def __reduce__(self):
        return (NativeTagger, (self.grammar, self.options))

    # ------------------------------------------------------------------
    def events(self, data):
        """Raw detection events, bit-exact with the other engines.

        Native fast path: the kernel appends bare :class:`DetectEvent`
        objects, skipping the (event, match start) pairs ``scan()``
        carries and ``events()`` would immediately strip.
        """
        nt = self._nt
        if nt is None:
            return super().events(data)
        st = self.new_state()
        out: list = []
        self.bytes_scanned += len(data)
        state, skipped = nt.ext.scan_chunk(
            nt.capsule, 0, 0, data, st.starts, out, None, False
        )
        self.bytes_skipped += skipped
        st.tid8 = state << 8
        st.pos = len(data)
        tail: list = []
        self._flush(st, tail)
        out += [event for event, _start in tail]
        return out

    def _run(self, data, st, error_sink, out) -> None:
        nt = self._nt
        if nt is None:
            return super()._run(data, st, error_sink, out)
        self.bytes_scanned += len(data)
        state, skipped = nt.ext.scan_chunk(
            nt.capsule,
            st.tid8 >> 8,
            st.pos,
            data,
            st.starts,
            out,
            error_sink,
        )
        self.bytes_skipped += skipped
        st.tid8 = state << 8
        st.pos += len(data)
