"""Token-mask lowering for constrained decoding.

The paper's tagger consults a precompiled automaton once per input
byte; constrained LLM decoding consults a grammar once per *token* —
"which of the vocabulary's tokens may the model emit from the current
parse state?".  This module lowers the compiled product automaton
(:mod:`repro.core.compiled`) into exactly that query, reusing the
dense closure the vector and native engines already build
(:func:`repro.core.vectorscan._dense_tables_for`):

* **Class-reduced step tables.** The closure's byte-equivalence
  classes collapse each token's bytes into a short class string
  (``bytes.translate``), and stepping happens over a per-state
  ``n_classes``-wide next-state row — the paper's character-class
  decoder applied to token walking.  Distinct tokens with the same
  class string are indistinguishable to the automaton, which is the
  "token space compression" observation from PAPERS.md: the walk is
  done once per class string, not once per token.

* **Doomed-state analysis.** A mask bit must be 0 not only when a
  token's bytes step through an error, but when they strand the
  automaton where no detection can ever fire again (the §5.2 dead
  state, or a lost state under error recovery whose every outgoing
  edge would report an error).  ``doomed`` is the complement of the
  backward closure of the event-emitting/EOF-detecting states over
  error-free edges; it is forward-closed, so a single check on the
  token's final state suffices — and it prunes whole trie subtrees
  during precompute.

* **Shared-prefix trie walk.** Per-state validity for the whole
  vocabulary is computed by one DFS over a trie of class strings, so
  shared prefixes ("<met", "<method", "<methodName>") are stepped
  once per state instead of once per token.

Everything here is pure Python over the NumPy-free closure, so mask
lowering works under ``REPRO_DISABLE_NUMPY=1`` and in the pool
workers.  The packed-row format, the context-independent vs
context-dependent token split and the on-disk artifact live one layer
up in :mod:`repro.apps.structgen.masks`.
"""

from __future__ import annotations

from hashlib import sha256

from repro.core.compiled import EOF, CompiledTagger

__all__ = ["MaskInfeasible", "MaskLowering"]

#: Cap on the token-walk memo (advance + context-dependent checks).
_WALK_MEMO_CAP = 1 << 18


class MaskInfeasible(RuntimeError):
    """The product automaton resisted densification (state cap), so
    per-state mask tables cannot be built for this grammar/wiring."""


class MaskLowering:
    """Class-reduced step tables + doomed/EOF analysis for one
    (grammar, wiring) pair.

    A token is *valid* in state ``s`` iff walking its byte classes
    from ``s`` crosses no error edge and its final state is not
    doomed.  Under error recovery a lost state reports the error on
    its *next* step (the §5.2 liveness cut looks one byte back), so
    the error flag is a property of the source state — precomputed
    into :attr:`err_state` — and lost states are doomed by
    construction (every outgoing edge is an error edge).
    """

    __slots__ = (
        "tables",
        "n_states",
        "n_classes",
        "class_table",
        "step",
        "err_state",
        "doomed",
        "eos",
        "_walk_memo",
        "memo_hits",
        "memo_misses",
        "memo_capped",
    )

    def __init__(self, tagger: CompiledTagger) -> None:
        from repro.core.vectorscan import _dense_tables_for

        vt = _dense_tables_for(tagger)
        if vt is None:
            raise MaskInfeasible(
                "product automaton too large to densify; no mask tables"
            )
        self.tables = tagger.tables
        n = vt.n_states
        self.n_states = n
        self.class_table = vt.class_table
        self.n_classes = len(vt.repr_byte)
        edges = vt.edges
        repr_byte = vt.repr_byte

        # Per-state class-indexed next-state rows; remember which
        # states have an event-emitting outgoing edge (liveness seeds).
        step: list[list[int]] = []
        emits = [False] * n
        for tid in range(n):
            base = tid << 8
            row = []
            for byte in repr_byte:
                sig = edges[base | byte]
                if sig.__class__ is int:
                    row.append(sig)
                else:
                    row.append(sig[0])
                    if sig[1]:
                        emits[tid] = True
            step.append(row)
        self.step = step

        # Lost states (§5.2): the liveness cut depends only on the
        # source state, so "this step reports an error" is per-state.
        tstates = self.tables.tstates
        recovery = self.tables.recovery
        err = [False] * n
        for tid in range(n):
            items, armed, pdet, first = tstates[tid]
            if recovery and not first and not (items or armed or pdet):
                err[tid] = True
        self.err_state = err

        # EOF detection (mirrors CompiledTagger._flush): some pending
        # unit detects with the end-of-data look-ahead.
        unit_dfas = self.tables.unit_dfas
        eos = [False] * n
        for tid in range(n):
            for u, s in tstates[tid][0]:
                if unit_dfas[u].detect_masks[s] >> EOF & 1:
                    eos[tid] = True
                    break
        self.eos = eos

        # Doomed = cannot reach an event or a valid EOF over
        # error-free edges.  Backward BFS from the seeds; edges out of
        # lost states are error edges and do not propagate liveness.
        rev: list[list[int]] = [[] for _ in range(n)]
        for tid in range(n):
            if err[tid]:
                continue
            for ntid in set(step[tid]):
                rev[ntid].append(tid)
        live = [False] * n
        frontier = []
        for tid in range(n):
            if (emits[tid] or eos[tid]) and not err[tid]:
                live[tid] = True
                frontier.append(tid)
        while frontier:
            nxt = []
            for tid in frontier:
                for pred in rev[tid]:
                    if not live[pred]:
                        live[pred] = True
                        nxt.append(pred)
            frontier = nxt
        self.doomed = [not ok for ok in live]
        self._walk_memo: dict = {}
        # CD-memo telemetry (surfaced on /metrics and /stats): how
        # often the context-dependent path hit the memo, missed it, or
        # was refused admission because the memo is at capacity.
        self.memo_hits = 0
        self.memo_misses = 0
        self.memo_capped = 0

    # ------------------------------------------------------------------
    def codes(self, token: bytes) -> bytes:
        """The token's byte-class string (what every walk consumes)."""
        return token.translate(self.class_table)

    def walk(self, tid: int, codes: bytes) -> int:
        """Step a class string from ``tid``; -1 on an error edge."""
        step = self.step
        err = self.err_state
        for c in codes:
            if err[tid]:
                return -1
            tid = step[tid][c]
        return tid

    def valid(self, tid: int, codes: bytes) -> bool:
        """Token validity: error-free walk ending in a live state."""
        end = self.walk(tid, codes)
        return end >= 0 and not self.doomed[end]

    def valid_memo(self, tid: int, codes: bytes) -> bool:
        """`valid` with a capped memo — the context-dependent
        query-time path, where the same (state, token) pair repeats
        across steps of one decode."""
        key = (tid, codes)
        hit = self._walk_memo.get(key)
        if hit is None:
            self.memo_misses += 1
            hit = self.valid(tid, codes)
            if len(self._walk_memo) < _WALK_MEMO_CAP:
                self._walk_memo[key] = hit
            else:
                self.memo_capped += 1
        else:
            self.memo_hits += 1
        return hit

    # ------------------------------------------------------------------
    def build_trie(self, groups: dict[bytes, list[int]]) -> tuple[list, int]:
        """Trie over class strings.  ``groups`` maps a class string to
        the token ids sharing it (token space compression: one walk
        per class string).  A node is ``[children: dict, ends: list]``.
        Returns (root, node_count)."""
        root: list = [{}, []]
        count = 1
        for codes, ids in groups.items():
            node = root
            for c in codes:
                child = node[0].get(c)
                if child is None:
                    child = [{}, []]
                    node[0][c] = child
                    count += 1
                node = child
            node[1].extend(ids)
        return root, count

    def rows_from_trie(self, root: list, n_tokens: int) -> bytearray:
        """Packed per-state validity rows over the trie's tokens.

        One DFS per start state, pruning on error states (every
        continuation reports an error) and doomed next states (doomed
        is forward-closed, so the whole subtree is invalid).  Bit
        ``i`` of state ``s``'s row (LSB-first within each byte) is
        token ``i``'s validity from ``s``.
        """
        n = self.n_states
        row_bytes = (n_tokens + 7) // 8
        rows = bytearray(n * row_bytes)
        step = self.step
        err = self.err_state
        doomed = self.doomed
        for s0 in range(n):
            if doomed[s0]:
                continue
            base = s0 * row_bytes
            stack = [(root, s0)]
            push = stack.append
            pop = stack.pop
            while stack:
                node, s = pop()
                for tok in node[1]:
                    rows[base + (tok >> 3)] |= 1 << (tok & 7)
                if err[s]:
                    continue
                row = step[s]
                for c, child in node[0].items():
                    ns = row[c]
                    if not doomed[ns]:
                        push((child, ns))
        return rows

    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Content hash of the lowered tables.

        State ids come from the interning order of the compiled
        tables; a mask artifact built against one interning order is
        meaningless against another (e.g. a tagger that scanned data
        before the closure ran).  The loader compares fingerprints and
        rebuilds on mismatch instead of serving misaligned rows.
        """
        h = sha256()
        h.update(b"maskgen-fp1")
        h.update(bytes((self.n_states & 0xFF, self.n_states >> 8 & 0xFF)))
        h.update(self.class_table)
        pack = int.to_bytes
        for row in self.step:
            for ntid in row:
                h.update(pack(ntid, 2, "little"))
        h.update(bytes(self.err_state))
        h.update(bytes(self.doomed))
        h.update(bytes(self.eos))
        return h.hexdigest()
