"""The unified tagger surface: one protocol, one session interface.

Three tagger back-ends grew three subtly different APIs: the
behavioral tagger had ``events_and_errors``, the gate-level tagger had
bespoke ``index_stream``/``error_positions``, and the streaming
wrappers split between ``feed``/``finish`` and ``push_frame``/
``results``. This module pins down the two shared surfaces every
back-end now implements:

* :class:`TokenTagger` — the whole-buffer scanning protocol
  (``events``, ``events_and_errors``, ``tag``) plus a ``stream()``
  factory for incremental sessions. Implemented by
  :class:`~repro.core.tagger.BehavioralTagger`,
  :class:`~repro.core.compiled.CompiledTagger` and
  :class:`~repro.core.tagger.GateLevelTagger`.

* :class:`StreamSession` — the incremental session contract:
  ``feed(chunk)`` returns the results the chunk completed,
  ``finish()`` flushes the tail against end-of-data, and the context
  manager auto-finishes (the flushed tail lands in :attr:`tail`).
  Implemented by :class:`~repro.core.compiled.CompiledStream`,
  :class:`~repro.apps.xmlrpc.router.RouterSession` and the netstack
  :class:`~repro.apps.netstack.wrapper.TaggingWrapper`.

Back-ends that cannot scan incrementally (the cycle-accurate
gate-level simulation, the interpreted reference loop) satisfy the
session contract through :class:`BufferedSession`, which buffers
chunks and runs one whole-buffer scan at ``finish()`` — degenerate but
contract-true, so application code can be written once against the
protocol and handed any engine.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.errors import BackendError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.scanplan import DetectEvent
    from repro.core.tokens import TaggedToken

__all__ = [
    "BufferedSession",
    "StreamSession",
    "TokenTagger",
]


#: The release in which the deprecated pre-1.0 aliases are deleted
#: (``error_positions``, ``push_frame``, ``push_packet`` — see the
#: DESIGN.md §7 migration table).
ALIAS_REMOVAL_VERSION = "2.0"


def warn_deprecated(old: str, new: str) -> None:
    """Emit the standard deprecation warning for a renamed API."""
    warnings.warn(
        f"{old} is deprecated and will be removed in repro "
        f"{ALIAS_REMOVAL_VERSION}; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


@runtime_checkable
class TokenTagger(Protocol):
    """What every tagger back-end exposes, whole-buffer and streaming.

    The three engines differ in *how* they scan (interpreted loop,
    compiled tables, cycle-accurate netlist) but not in what they
    answer; code written against this protocol runs on any of them.
    """

    def events(self, data: bytes) -> "list[DetectEvent]":
        """Raw detection events in stream order."""

    def events_and_errors(
        self, data: bytes
    ) -> "tuple[list[DetectEvent], list[int]]":
        """Detection events plus §5.2 error-recovery positions."""

    def tag(self, data: bytes) -> "list[TaggedToken]":
        """Tagged tokens with lexemes and encoder indices."""

    def stream(self) -> "StreamSession":
        """A fresh incremental scanning session."""


class StreamSession:
    """Base class / contract for incremental scanning sessions.

    ``feed(chunk)`` consumes one chunk (arbitrary boundaries) and
    returns the results it completed; ``finish()`` resolves the tail
    against end-of-data and ends the session — feeding afterwards
    raises :class:`~repro.errors.BackendError`. Used as a context
    manager the session auto-finishes on exit, stashing the flushed
    tail in :attr:`tail` so no result is silently dropped:

    .. code-block:: python

        with tagger.stream() as session:
            for chunk in chunks:
                handle(session.feed(chunk))
        handle(session.tail)
    """

    _finished = False

    #: Results flushed by the context manager's implicit ``finish()``.
    tail: list | None = None

    # ------------------------------------------------------------------
    def feed(self, chunk: bytes) -> list:
        """Consume one chunk; return the results it completed."""
        raise NotImplementedError

    def finish(self) -> list:
        """Flush against end-of-data and end the session."""
        raise NotImplementedError

    @property
    def finished(self) -> bool:
        """True once :meth:`finish` has run (feeding now raises)."""
        return self._finished

    def _check_open(self) -> None:
        if self._finished:
            raise BackendError("stream already finished")

    # ------------------------------------------------------------------
    def push_frame(self, chunk: bytes) -> list:
        """Deprecated alias of :meth:`feed` (pre-StreamSession name),
        honored by every session implementation."""
        warn_deprecated(f"{type(self).__name__}.push_frame", "feed")
        return self.feed(chunk)

    # ------------------------------------------------------------------
    def __enter__(self) -> "StreamSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._finished:
            self.tail = self.finish()
        return False


class BufferedSession(StreamSession):
    """Contract-true session for engines that cannot scan incrementally.

    Chunks are buffered; ``feed`` reports nothing and ``finish`` runs
    one whole-buffer scan over the concatenation. The gate-level
    simulator and the interpreted reference loop use this to satisfy
    the :class:`StreamSession` contract.
    """

    def __init__(self, tagger: "TokenTagger") -> None:
        self.tagger = tagger
        self._buffer = bytearray()

    def feed(self, chunk: bytes) -> list:
        self._check_open()
        self._buffer += chunk
        return []

    def finish(self) -> list:
        self._check_open()
        self._finished = True
        return self.tagger.events(bytes(self._buffer))
