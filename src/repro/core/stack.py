"""Stack-augmented tagger: the paper's §5.2 extension, realized.

"Additionally, a stack can be added to the architecture to give the
hardware parser all the power of a software parser."

The stack-less tagger collapses the push-down automaton into a finite
automaton (Fig. 2) and therefore accepts a *superset* of the language
— ``((0)`` streams through the Fig. 1 grammar's tagger. This module
restores the recursive state: a recursive-transition-network (RTN)
machine over the grammar whose stack frames are *continuations*
(production, position of the non-terminal being expanded). Matching is
still tokenizer-style — per-occurrence Glushkov longest match with
delimiter skipping — so the output is the same tagged-token stream,
now with exact nesting:

* unbalanced input is rejected (:class:`~repro.errors.ParseError`);
* a token's context tag can include its recursion depth.

Nondeterministic grammars fork parallel threads (each with its own
stack), mirroring how the paper's parallel engines "can be executed in
parallel" (§3.3); thread count is capped to keep the machine honest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tokens import TaggedToken
from repro.errors import GrammarError, ParseError
from repro.grammar.analysis import Occurrence, analyze_grammar
from repro.grammar.cfg import Grammar
from repro.grammar.regex.glushkov import Glushkov, build_glushkov
from repro.grammar.symbols import NonTerminal, Terminal

#: A stack frame: (production index, position of the non-terminal being
#: expanded). Popping resumes that production right after the position.
Frame = tuple[int, int]
Stack = tuple[Frame, ...]

#: Sentinel expectation meaning "a complete sentence just ended here".
_ACCEPT = None


@dataclass(frozen=True)
class StackedToken:
    """A tagged token plus the recursion depth at which it matched."""

    token: TaggedToken
    depth: int

    def __str__(self) -> str:
        return f"{self.token} depth={self.depth}"


@dataclass
class _Thread:
    position: int
    stack: Stack
    tokens: tuple[StackedToken, ...] = ()
    sentences: int = 0


class StackTagger:
    """RTN/PDA tagger with exact recursive state.

    Example
    -------
    >>> from repro.grammar.examples import balanced_parens
    >>> tagger = StackTagger(balanced_parens())
    >>> tagger.accepts(b"((0))"), tagger.accepts(b"((0)")
    (True, False)
    """

    def __init__(
        self,
        grammar: Grammar,
        max_depth: int = 64,
        max_threads: int = 64,
        stream: bool = False,
    ) -> None:
        grammar.validate()
        self.grammar = grammar
        self.analysis = analyze_grammar(grammar)
        self.max_depth = max_depth
        self.max_threads = max_threads
        #: Accept a stream of back-to-back sentences instead of one.
        self.stream = stream
        self.automata: dict[str, Glushkov] = {
            token.name: build_glushkov(token.pattern)
            for token in grammar.lexspec
        }
        self.delimiters = grammar.lexspec.delimiters.matched_bytes()

    # ------------------------------------------------------------------
    # epsilon-closure: expected next occurrences given a resume point
    # ------------------------------------------------------------------
    def _expectations(
        self, resume: tuple[int, int] | None, stack: Stack
    ) -> list[tuple[Occurrence | None, Stack]]:
        """Occurrences that may match next, each with its new stack.

        ``resume = (production, position)`` means "continue scanning
        that production *after* ``position``"; ``None`` means "begin a
        sentence". An entry with occurrence ``None`` signals that a
        complete sentence may end at this point (stack exhausted).
        """
        results: list[tuple[Occurrence | None, Stack]] = []
        seen: set[tuple[int, int, Stack]] = set()

        def scan(production_index: int, after: int, stack: Stack) -> None:
            key = (production_index, after, stack)
            if key in seen:
                return
            seen.add(key)
            production = self.grammar.productions[production_index]
            for j in range(after, len(production.rhs)):
                symbol = production.rhs[j]
                if isinstance(symbol, Terminal):
                    results.append(
                        (Occurrence(production_index, j, symbol), stack)
                    )
                    return
                enter(symbol, stack + ((production_index, j),))
                if not self.analysis.nullable[symbol]:
                    return
                # nullable non-terminal: also continue past it
            # Production complete: return to the caller frame.
            if stack:
                (caller, position) = stack[-1]
                scan(caller, position + 1, stack[:-1])
            else:
                results.append((_ACCEPT, ()))

        def enter(nonterminal: NonTerminal, stack: Stack) -> None:
            if len(stack) > self.max_depth:
                raise GrammarError(
                    f"epsilon-closure exceeded depth {self.max_depth}; "
                    "the grammar is left-recursive or too deeply nested "
                    "for this stack size"
                )
            for production in self.grammar.productions_for(nonterminal):
                scan(production.index, 0, stack)

        if resume is None:
            assert self.grammar.start is not None
            enter(self.grammar.start, stack)
        else:
            scan(resume[0], resume[1] + 1, stack)
        return results

    # ------------------------------------------------------------------
    def _skip_delimiters(self, data: bytes, position: int) -> int:
        while position < len(data) and data[position] in self.delimiters:
            position += 1
        return position

    def _match(self, data: bytes, position: int, occurrence: Occurrence) -> int | None:
        auto = self.automata[occurrence.terminal.name]
        return auto.longest_match(data, position)

    # ------------------------------------------------------------------
    def run(self, data: bytes) -> list[StackedToken]:
        """Tag a complete sentence (or stream); raise on violation.

        Raises :class:`ParseError` when no thread can consume the whole
        input with balanced recursion — this is exactly the error
        detection the stack buys (§3.1/§5.2).
        """
        # Threads are merged per round on (position, stack, resume):
        # two threads agreeing on those have identical futures, so only
        # the representative that would win the final tie-break — most
        # tokens, then fewest sentences — needs to survive. Without the
        # merge, ambiguous grammars fork exponentially many equivalent
        # threads and trip the cap on inputs the grammar accepts.
        start = self._skip_delimiters(data, 0)
        threads: dict[
            tuple[int, Stack, tuple[int, int] | None], _Thread
        ] = {(start, (), None): _Thread(position=start, stack=())}
        memo: dict[
            tuple[tuple[int, int] | None, Stack],
            list[tuple[Occurrence | None, Stack]],
        ] = {}
        best_error = 0

        def expect(
            resume: tuple[int, int] | None, stack: Stack
        ) -> list[tuple[Occurrence | None, Stack]]:
            cached = memo.get((resume, stack))
            if cached is None:
                cached = memo[(resume, stack)] = self._expectations(
                    resume, stack
                )
            return cached

        finished: list[_Thread] = []
        while threads:
            if len(threads) > self.max_threads:
                raise ParseError(
                    f"thread explosion (> {self.max_threads}); grammar "
                    "too ambiguous for the stack tagger"
                )
            next_threads: dict[
                tuple[int, Stack, tuple[int, int] | None], _Thread
            ] = {}

            def offer(
                key: tuple[int, Stack, tuple[int, int] | None],
                thread: _Thread,
            ) -> None:
                held = next_threads.get(key)
                if held is None or (
                    len(thread.tokens),
                    -thread.sentences,
                ) > (len(held.tokens), -held.sentences):
                    next_threads[key] = thread

            for (position, stack, resume), thread in threads.items():
                at_end = position >= len(data)
                for occurrence, new_stack in expect(resume, stack):
                    if occurrence is _ACCEPT:
                        if at_end:
                            finished.append(thread)
                        elif self.stream:
                            restart = _Thread(
                                position=position,
                                stack=(),
                                tokens=thread.tokens,
                                sentences=thread.sentences + 1,
                            )
                            offer((position, (), None), restart)
                        continue
                    if at_end:
                        continue
                    length = self._match(data, position, occurrence)
                    if not length:
                        continue
                    end = position + length
                    token = StackedToken(
                        token=TaggedToken(
                            token=occurrence.terminal.name,
                            occurrence=occurrence,
                            lexeme=data[position:end],
                            start=position,
                            end=end,
                        ),
                        depth=len(new_stack),
                    )
                    best_error = max(best_error, end)
                    advanced = _Thread(
                        position=self._skip_delimiters(data, end),
                        stack=new_stack,
                        tokens=thread.tokens + (token,),
                        sentences=thread.sentences,
                    )
                    offer(
                        (
                            advanced.position,
                            new_stack,
                            (occurrence.production, occurrence.position),
                        ),
                        advanced,
                    )
            threads = next_threads

        if not finished:
            raise ParseError(
                "input violates the grammar's recursive structure",
                position=best_error,
            )
        # Deterministic choice: most tokens, then fewest sentences.
        best = max(finished, key=lambda t: (len(t.tokens), -t.sentences))
        return list(best.tokens)

    # ------------------------------------------------------------------
    def tag(self, data: bytes) -> list[TaggedToken]:
        """Tagged tokens of a conforming input (strict recognition)."""
        return [stacked.token for stacked in self.run(data)]

    def accepts(self, data: bytes) -> bool:
        """Whole-input recognition — the full CFG membership test."""
        try:
            self.run(data)
            return True
        except ParseError:
            return False

    def max_observed_depth(self, data: bytes) -> int:
        """Deepest recursion used — sizes the §5.2 hardware stack."""
        return max((s.depth for s in self.run(data)), default=0)
