"""Wide-datapath tagger: W bytes per clock cycle (§5.2).

"Other improvements in speed can be gained by scaling the design to
process 32-bits or 64-bits per clock cycle."

The single-byte tagger advances every tokenizer's position registers
once per cycle. The wide variant presents ``W`` bytes ("lanes") per
cycle and chains ``W`` combinational copies of the transition logic
between the position registers:

* decoders are replicated per lane (area × W);
* within a beat, a detection at lane ``k`` enables its Follow-set
  successors at lane ``k+1`` *combinationally* — tokens may start,
  end, and chain inside a single beat;
* the longest-match look-ahead for lane ``k`` uses lane ``k+1`` of the
  same beat, and for the last lane the first lane of the *next* beat
  (one pipeline stage earlier, the same Fig. 7 trick as the byte
  design);
* arming (delimiter stall) carries lane to lane and beat to beat.

The cost is logic depth: the beat-internal chain is ~W gate levels
between registers, so frequency falls as W grows while bandwidth =
frequency × 8 × W (usually still a large net win) — exactly the
trade-off the paper's future work anticipates. The
``benchmarks/bench_wide.py`` experiment quantifies it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.decoder import DecoderBank, DecoderOptions
from repro.core.tagger import DetectEvent
from repro.core.tokenizer import DETECT_LATENCY
from repro.errors import GenerationError
from repro.grammar.analysis import (
    Occurrence,
    analyze_grammar,
    build_occurrence_graph,
)
from repro.grammar.cfg import Grammar
from repro.grammar.regex.glushkov import Glushkov, build_glushkov
from repro.rtl.netlist import Net, Netlist
from repro.rtl.simulator import Simulator


@dataclass
class WideTaggerCircuit:
    """A generated W-byte-per-cycle tagger."""

    grammar: Grammar
    netlist: Netlist
    lanes: int
    occurrences: list[Occurrence]
    #: (occurrence, lane) -> detect output port name
    detect_ports: dict[tuple[Occurrence, int], str]
    #: beats from a byte beat on the pins to its registered detects
    detect_latency: int = DETECT_LATENCY

    def describe(self) -> str:
        return (
            f"wide tagger[{self.grammar.name}] x{self.lanes} lanes: "
            f"{len(self.occurrences)} tokenizers, "
            f"{self.netlist.n_gates} gates, "
            f"{self.netlist.n_registers} registers"
        )


@dataclass
class _OccState:
    """Per-occurrence placeholders and per-lane nets during build."""

    auto: Glushkov
    pos_q: list[Net] = field(default_factory=list)
    armed_q: Net | None = None
    det_last_lane_q: Net | None = None
    #: per-lane: list of position nets "active after lane k"
    pos_lane: list[list[Net]] = field(default_factory=list)
    detect_lane: list[Net] = field(default_factory=list)
    armed_lane: list[Net] = field(default_factory=list)


class WideTaggerGenerator:
    """Generates W-lane taggers (context duplication, or-tree-free).

    The wide variant focuses on the datapath experiment: it exposes
    per-lane detect wires (no index encoder) and uses the default
    wiring policy (start-once, loop-on-accept).
    """

    def __init__(self, lanes: int, decoder: DecoderOptions | None = None) -> None:
        if lanes < 1:
            raise GenerationError("need at least one lane")
        self.lanes = lanes
        self.decoder_options = decoder or DecoderOptions()

    # ------------------------------------------------------------------
    def generate(self, grammar: Grammar) -> WideTaggerCircuit:
        analysis = analyze_grammar(grammar)
        graph = build_occurrence_graph(grammar, analysis)
        if not graph.occurrences:
            raise GenerationError("grammar has no terminal occurrences")
        nl = Netlist(f"wide{self.lanes}_{grammar.name}")
        W = self.lanes

        banks = [
            DecoderBank(
                nl,
                grammar.lexspec.delimiters.matched_bytes(),
                options=self.decoder_options,
                port_prefix=f"l{k}_data",
                valid_port=f"l{k}_valid",
            )
            for k in range(W)
        ]

        automata: dict[str, Glushkov] = {}
        states: dict[Occurrence, _OccState] = {}
        for occurrence in graph.occurrences:
            name = occurrence.terminal.name
            auto = automata.get(name)
            if auto is None:
                auto = build_glushkov(grammar.lexspec.get(name).pattern)
                automata[name] = auto
            prefix = f"w_{_sanitize(name)}_{occurrence.context_name()}"
            state = _OccState(auto=auto)
            state.pos_q = [
                nl.placeholder(f"{prefix}_p{p}") for p in range(auto.n_positions)
            ]
            state.armed_q = nl.placeholder(f"{prefix}_armed")
            state.det_last_lane_q = nl.placeholder(f"{prefix}_detq")
            states[occurrence] = state

        predecessors: dict[Occurrence, list[Occurrence]] = {
            o: [] for o in graph.occurrences
        }
        for source, targets in graph.edges.items():
            for target in targets:
                predecessors[target].append(source)
        for source in graph.accepting:  # loop_on_accept
            for target in graph.starts:
                if source not in predecessors[target]:
                    predecessors[target].append(source)

        # Per-lane delimiter-or-idle terms.
        lane_delim = [banks[k].cur_delim_or_idle() for k in range(W)]

        # Lane-by-lane construction across ALL tokenizers, so that a
        # lane-k detect can feed a successor's lane-(k+1) entry.
        for k in range(W):
            bank = banks[k]
            for occurrence in graph.occurrences:
                state = states[occurrence]
                auto = state.auto
                prefix = (
                    f"w_{_sanitize(occurrence.terminal.name)}"
                    f"_{occurrence.context_name()}_l{k}"
                )
                # Enable: predecessors' detect at the previous lane
                # (combinational within the beat) or, for lane 0, the
                # registered last-lane detect of the previous beat.
                sources: list[Net] = []
                for predecessor in predecessors[occurrence]:
                    pred = states[predecessor]
                    if k == 0:
                        sources.append(pred.det_last_lane_q)  # type: ignore[arg-type]
                    else:
                        sources.append(pred.detect_lane[k - 1])
                if occurrence in graph.starts and k == 0:
                    sources.append(banks[0].start_pulse)
                enable = (
                    nl.or_tree(sources, name=f"{prefix}_en")
                    if sources
                    else nl.const(0)
                )

                armed_before = (
                    state.armed_q if k == 0 else state.armed_lane[k - 1]
                )
                entry = nl.or_(enable, armed_before, name=f"{prefix}_entry")
                state.armed_lane.append(
                    nl.and_(entry, lane_delim[k], name=f"{prefix}_armed")
                )

                previous = (
                    state.pos_q if k == 0 else state.pos_lane[k - 1]
                )
                feeders: dict[int, list[int]] = {
                    p: [] for p in range(auto.n_positions)
                }
                for source_pos, targets in auto.follow.items():
                    for target in targets:
                        feeders[target].append(source_pos)
                lane_positions: list[Net] = []
                for p in range(auto.n_positions):
                    acts: list[Net] = [previous[q] for q in sorted(feeders[p])]
                    if p in auto.first:
                        acts.append(entry)
                    if not acts:
                        lane_positions.append(nl.const(0))
                        continue
                    activation = (
                        acts[0]
                        if len(acts) == 1
                        else nl.or_tree(acts, name=f"{prefix}_p{p}_src")
                    )
                    lane_positions.append(
                        nl.and_(
                            activation,
                            bank.cur(auto.position_bytes[p]),
                            name=f"{prefix}_p{p}",
                        )
                    )
                state.pos_lane.append(lane_positions)

                # Detection at this lane with Fig. 7 look-ahead from
                # lane k+1 (same beat) or lane 0 of the next beat.
                terms: list[Net] = []
                for p in sorted(auto.last):
                    extension = auto.extension_bytes(p)
                    term = lane_positions[p]
                    if extension:
                        if k + 1 < W:
                            next_in_ext = banks[k + 1].cur(extension)
                        else:
                            next_in_ext = banks[0].nxt(extension)
                        term = nl.and_(
                            term,
                            nl.not_(next_in_ext),
                            name=f"{prefix}_p{p}_lm",
                        )
                    terms.append(term)
                state.detect_lane.append(
                    terms[0]
                    if len(terms) == 1
                    else nl.or_tree(terms, name=f"{prefix}_det")
                )

        # Close the beat-boundary registers and expose outputs.
        detect_ports: dict[tuple[Occurrence, int], str] = {}
        for occurrence in graph.occurrences:
            state = states[occurrence]
            for p in range(state.auto.n_positions):
                nl.close_reg(state.pos_q[p], state.pos_lane[W - 1][p])
            assert state.armed_q is not None
            nl.close_reg(state.armed_q, state.armed_lane[W - 1])
            assert state.det_last_lane_q is not None
            nl.close_reg(state.det_last_lane_q, state.detect_lane[W - 1])
            for k in range(W):
                port = (
                    f"det_{_sanitize(occurrence.terminal.name)}"
                    f"_{occurrence.context_name()}_l{k}"
                )
                nl.output(port, nl.reg(state.detect_lane[k], name=f"{port}_q"))
                detect_ports[(occurrence, k)] = port

        nl.validate()
        return WideTaggerCircuit(
            grammar=grammar,
            netlist=nl,
            lanes=W,
            occurrences=list(graph.occurrences),
            detect_ports=detect_ports,
        )


class WideGateLevelTagger:
    """Drives a wide tagger netlist; reports byte-exact detect events."""

    def __init__(self, circuit: WideTaggerCircuit) -> None:
        self.circuit = circuit
        self.simulator = Simulator(circuit.netlist)

    def events(self, data: bytes) -> list[DetectEvent]:
        """Detection events; identical to the byte-serial tagger's."""
        W = self.circuit.lanes
        simulator = self.simulator
        simulator.reset()
        n_beats = (len(data) + W - 1) // W
        flush = self.circuit.detect_latency + 2
        events: list[DetectEvent] = []
        latency = self.circuit.detect_latency
        ports = self.circuit.detect_ports
        for beat in range(n_beats + flush):
            frame: dict[str, int] = {}
            for k in range(W):
                index = beat * W + k
                byte = data[index] if index < len(data) else 0
                valid = 1 if index < len(data) else 0
                for bit in range(8):
                    frame[f"l{k}_data{bit}"] = (byte >> bit) & 1
                frame[f"l{k}_valid"] = valid
            outputs = simulator.step(frame)
            data_beat = beat - latency
            if data_beat < 0:
                continue
            for (occurrence, lane), port in ports.items():
                if outputs[port]:
                    end = data_beat * W + lane + 1
                    if end <= len(data):
                        events.append(DetectEvent(occurrence, end))
        events.sort(key=lambda e: (e.end, str(e.occurrence)))
        return events


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() else "_" for c in name)
