"""Tagged-token data model: what the tagger reports to the back-end.

"The back-end receives the token index along with the pattern for
application level processing." (§3.1) A :class:`TaggedToken` carries
the token identity, its grammatical context (the duplicated-occurrence
tag), the matched lexeme, and stream positions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.grammar.analysis import Occurrence


@dataclass(frozen=True)
class TaggedToken:
    """One detected token with its grammatical context.

    ``end`` is exclusive: the lexeme is ``data[start:end]``. ``index``
    is the hardware token index emitted by the encoder (§3.4); it is
    ``None`` for behavioral runs configured without an encoder map.
    """

    token: str
    occurrence: Occurrence
    lexeme: bytes
    start: int
    end: int
    index: int | None = None

    @property
    def context(self) -> str:
        """Occurrence tag, e.g. ``p3.1`` = production 3, position 1."""
        return self.occurrence.context_name()

    def text(self) -> str:
        return self.lexeme.decode("utf-8", errors="replace")

    def __str__(self) -> str:
        return (
            f"{self.token}@{self.context}[{self.start}:{self.end}]"
            f"={self.text()!r}"
        )
