"""Shared scan plan: everything a software tagger needs per grammar.

Both tagger engines — the interpreted :class:`~repro.core.tagger.
BehavioralTagger` loop and the table-driven :class:`~repro.core.
compiled.CompiledTagger` — operate on the same derived structure: the
unit list (terminal occurrences, or collapsed terminals when context
duplication is off), the Follow-set successor wiring, the start and
accepting sets, one Glushkov automaton per token pattern, and the
per-token longest-match/boundary byte sets. This module derives that
structure once per (grammar, wiring) pair and memoizes it, so
applications that construct taggers repeatedly (one router per flow,
one tagger per benchmark round) stop paying the rebuild cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple
from weakref import WeakKeyDictionary

from repro.core.wiring import WiringOptions
from repro.grammar.analysis import (
    Occurrence,
    analyze_grammar_cached,
    build_occurrence_graph_cached,
)
from repro.grammar.cfg import Grammar
from repro.grammar.regex import ast as rx
from repro.grammar.regex.glushkov import Glushkov, build_glushkov_cached
from repro.grammar.symbols import END


class DetectEvent(NamedTuple):
    """A raw detection: ``occurrence`` matched ending at byte ``end - 1``.

    A named tuple (not a frozen dataclass) so the hot paths that emit
    events in bulk — the compiled loop and the vector engine's
    generated programs — can construct them at plain-tuple cost.
    """

    occurrence: Occurrence
    end: int  # exclusive


@dataclass(frozen=True)
class ScanPlan:
    """Derived scan structure for one (grammar, wiring) pair.

    The plan is immutable and shared: every tagger built for the same
    grammar object and equivalent wiring options receives the same
    instance (and therefore the same unit ordering — the hardware's
    detect-port scan order, which fixes same-byte event order).
    """

    grammar: Grammar
    wiring: WiringOptions
    units: tuple[Occurrence, ...]
    starts: frozenset[Occurrence]
    accepting: frozenset[Occurrence]
    #: unit -> units it enables (successor map, used sparsely).
    successors: dict[Occurrence, frozenset[Occurrence]]
    #: one position automaton per token pattern, shared across contexts.
    automata: dict[str, Glushkov]
    delimiters: frozenset[int]
    #: per-token extra longest-match suppression bytes (keyword boundary).
    boundary: dict[str, frozenset[int]]
    longest_match: bool
    #: default (or-tree) encoder index per unit.
    index_of: dict[Occurrence, int]
    #: stable unit ordering (hardware detect-port scan order).
    unit_order: dict[Occurrence, int]

    def __reduce__(self):
        # Ship the compact inputs, not the derived structure: the
        # unpickling process re-derives through build_scan_plan's
        # memo, so plans stay shared (one instance per grammar/wiring)
        # on the far side of a process boundary too.
        return (build_scan_plan, (self.grammar, self.wiring))


def _wiring_key(wiring: WiringOptions) -> tuple:
    """Hashable identity of the wiring options a scan depends on."""
    tmpl = wiring.tokenizer
    return (
        wiring.context_duplication,
        wiring.start_mode,
        wiring.loop_on_accept,
        wiring.error_recovery,
        tmpl.longest_match,
        tmpl.keyword_boundary,
    )


_PLAN_CACHE: WeakKeyDictionary = WeakKeyDictionary()


def build_scan_plan(grammar: Grammar, wiring: WiringOptions) -> ScanPlan:
    """Derive (or fetch the memoized) scan plan for a grammar."""
    per_grammar = _PLAN_CACHE.get(grammar)
    if per_grammar is None:
        per_grammar = {}
        _PLAN_CACHE[grammar] = per_grammar
    key = _wiring_key(wiring)
    plan = per_grammar.get(key)
    if plan is None:
        plan = _derive_plan(grammar, wiring)
        per_grammar[key] = plan
    return plan


def _derive_plan(grammar: Grammar, wiring: WiringOptions) -> ScanPlan:
    analysis = analyze_grammar_cached(grammar)
    graph = build_occurrence_graph_cached(grammar)

    if wiring.context_duplication:
        units: list[Occurrence] = list(graph.occurrences)
        edges = graph.edges
        starts = frozenset(graph.starts)
        accepting = frozenset(graph.accepting)
    else:
        representative: dict = {}
        for occurrence in graph.occurrences:
            representative.setdefault(occurrence.terminal, occurrence)
        units = list(representative.values())
        collapsed = graph.collapsed_edges()
        edges = {
            unit: frozenset(
                representative[t]
                for t in collapsed.get(unit.terminal, frozenset())
                if t in representative
            )
            for unit in units
        }
        starts = frozenset(representative[o.terminal] for o in graph.starts)
        accepting = frozenset(
            representative[t]
            for t in representative
            if END in analysis.follow[t]
        )

    unit_set = frozenset(units)
    successors: dict[Occurrence, frozenset[Occurrence]] = {
        unit: edges.get(unit, frozenset()) & unit_set for unit in units
    }
    if wiring.loop_on_accept:
        for unit in accepting:
            successors[unit] = successors[unit] | starts

    automata: dict[str, Glushkov] = {}
    for unit in units:
        name = unit.terminal.name
        if name not in automata:
            automata[name] = build_glushkov_cached(
                grammar.lexspec.get(name).pattern
            )

    tmpl = wiring.tokenizer
    boundary: dict[str, frozenset[int]] = {}
    for unit in units:
        token = grammar.lexspec.get(unit.terminal.name)
        extra: frozenset[int] = frozenset()
        if tmpl.keyword_boundary and token.is_literal:
            text = token.fixed_text()
            if text and chr(text[-1]).isalnum():
                extra = rx.ALNUM.matched_bytes()
        boundary[unit.terminal.name] = extra

    return ScanPlan(
        grammar=grammar,
        wiring=wiring,
        units=tuple(units),
        starts=starts,
        accepting=accepting,
        successors=successors,
        automata=automata,
        delimiters=grammar.lexspec.delimiters.matched_bytes(),
        boundary=boundary,
        longest_match=tmpl.longest_match,
        index_of={unit: i + 1 for i, unit in enumerate(units)},
        unit_order={unit: i for i, unit in enumerate(units)},
    )
