"""Character and character-class decoders (the paper's Figs. 4–5).

"In order to design a compact pattern matching engine, our design
decodes the input. … All the letters used in the tokens are decoded
uniquely. Each decoded character is assigned a wire to provide
succinct inputs to the tokenizers." (§3.2)

The bank is *fine-grain pipelined*: a register follows every gate
level, preserving the paper's one-LUT-between-registers discipline
("Such pipelining efficiently utilize the hardware resources while
obtaining low latency", §3.4). All decoded byte-sets are padded to a
common pipeline depth so the tokenizers see aligned signals:

* :meth:`nxt` — the *look-ahead* tap (stage ``NXT_STAGE``), used as
  the "future character" of the longest-match logic (Fig. 7);
* :meth:`cur` — the *current character* tap (one stage later),
  consumed by the tokenizer chains.

Two construction modes:

* ``nibble_sharing=True`` (default) — shared 4→16 one-hot nibble
  decoders, one AND per character, a registered two-level AND-OR per
  class. This sharing is what gives the paper its ~1 LUT per pattern
  byte density.
* ``nibble_sharing=False`` — per-character Fig. 4 decode without any
  sharing (ablation).

``replicas > 1`` implements the §5.2 fan-out mitigation: the final
pipeline registers are duplicated and consumers are dealt round-robin
across the copies, dividing the worst-case fan-out per decoded wire.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rtl.netlist import Net, Netlist

#: Pipeline stage (register count from the input pins) of the
#: look-ahead tap. Chosen to fit the deepest class decode: nibble (1),
#: low-nibble OR tree (2), group AND (1), group OR tree (2), valid
#: gate (1) — see :meth:`DecoderBank._decode_set`.
NXT_STAGE = 7
#: Stage of the current-character tap.
CUR_STAGE = NXT_STAGE + 1

#: A net paired with its pipeline depth (registers from the inputs).
_Timed = tuple[Net, int]


@dataclass
class DecoderOptions:
    """Construction options for :class:`DecoderBank`."""

    nibble_sharing: bool = True
    replicas: int = 1

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")


class DecoderBank:
    """Shared decoder bank with a depth-aligned register pipeline.

    Identical byte-sets share hardware — the decoder sharing the paper
    relies on for density and the source of the large fanouts its §4.3
    timing analysis discusses.
    """

    def __init__(
        self,
        netlist: Netlist,
        delimiters: frozenset[int],
        options: DecoderOptions | None = None,
        port_prefix: str = "data",
        valid_port: str = "in_valid",
    ) -> None:
        self.netlist = netlist
        self.options = options or DecoderOptions()
        nl = netlist
        self.port_prefix = port_prefix
        self.valid_port = valid_port
        self.data_bits = [nl.input(f"{port_prefix}{bit}") for bit in range(8)]
        self.in_valid = nl.input(valid_port)
        self._inverted_bits = [
            nl.not_(bit, name=f"ndata{i}") for i, bit in enumerate(self.data_bits)
        ]
        self._nibbles: dict[tuple[str, int], Net] = {}
        self._stage_raw: dict[frozenset[int], _Timed] = {}
        self._taps: dict[tuple[frozenset[int], int], list[Net]] = {}
        self._round_robin: dict[tuple[frozenset[int], int], int] = {}

        # Valid pipeline, one register per stage.
        self._valid_stages: list[Net] = [self.in_valid]
        for stage in range(1, CUR_STAGE + 1):
            self._valid_stages.append(
                nl.reg(self._valid_stages[-1], name=f"valid{stage}")
            )
        self.valid_nxt = self._valid_stages[NXT_STAGE]
        self.valid_cur = self._valid_stages[CUR_STAGE]

        self.delimiters = frozenset(delimiters)
        # Current char is a delimiter *or* the stream is idle — the
        # condition under which token arming is held (§3.2). One copy
        # per replica so §5.2 fanout balancing also covers this net
        # (it fans out to every tokenizer's arming gate).
        idle = nl.not_(self.valid_cur, name="idle")
        self._delim_or_idle_pool: list[Net] = []
        for replica in range(self.options.replicas):
            delim_cur = (
                self._tap_pool(self.delimiters, CUR_STAGE)[replica]
                if delimiters
                else nl.const(0)
            )
            self._delim_or_idle_pool.append(
                nl.or_(delim_cur, idle, name=f"delim_or_idle_r{replica}")
                if delimiters
                else idle
            )
        self._delim_rr = 0

        started = nl.placeholder("started")
        nl.close_reg(started, nl.or_(started, self.valid_cur, name="started_d"))
        #: One-cycle pulse on the first current-character cycle —
        #: "starting tokenizers can be enabled once at the beginning of
        #: the data" (§3.3).
        self.start_pulse = nl.and_(
            self.valid_cur, nl.not_(started), name="start_pulse"
        )

    # ------------------------------------------------------------------
    # pipelined construction helpers (register after every gate level)
    # ------------------------------------------------------------------
    def _rtree(self, op_name: str, timed: list[_Timed], name: str) -> _Timed:
        """4-ary registered gate tree over depth-aligned operands."""
        nl = self.netlist
        timed = self._align(timed)
        depth = timed[0][1]
        level = [net for net, _ in timed]
        op = nl.or_ if op_name == "or" else nl.and_
        while len(level) > 1:
            nxt: list[Net] = []
            for i in range(0, len(level), 4):
                chunk = level[i : i + 4]
                if len(chunk) == 1:
                    nxt.append(nl.reg(chunk[0], name=f"{name}_p"))
                else:
                    nxt.append(nl.reg(op(*chunk, name=name), name=f"{name}_r"))
            level = nxt
            depth += 1
        return level[0], depth

    def _align(self, timed: list[_Timed]) -> list[_Timed]:
        """Delay-pad operands to the deepest member's stage."""
        deepest = max(depth for _, depth in timed)
        return [
            (self.netlist.delay(net, deepest - depth, name="al"), deepest)
            for net, depth in timed
        ]

    def _pad_to(self, timed: _Timed, stage: int) -> Net:
        net, depth = timed
        if depth > stage:
            raise ValueError(
                f"decode cone deeper ({depth}) than pipeline stage {stage}"
            )
        return self.netlist.delay(net, stage - depth, name="pad")

    # ------------------------------------------------------------------
    # stage-1 nibble decode (shared)
    # ------------------------------------------------------------------
    def _nibble(self, half: str, value: int) -> Net:
        """Registered one-hot nibble decoder output (depth 1, shared)."""
        key = (half, value)
        cached = self._nibbles.get(key)
        if cached is not None:
            return cached
        offset = 0 if half == "lo" else 4
        terms = []
        for bit in range(4):
            wants_one = (value >> bit) & 1
            source = self.data_bits if wants_one else self._inverted_bits
            terms.append(source[offset + bit])
        net = self.netlist.reg(
            self.netlist.and_(*terms, name=f"{half}{value:x}"),
            name=f"{half}{value:x}_q",
        )
        self._nibbles[key] = net
        return net

    def _decode_char(self, byte: int) -> _Timed:
        """AND of the two nibble one-hots (depth 2)."""
        if self.options.nibble_sharing:
            hi = self._nibble("hi", byte >> 4)
            lo = self._nibble("lo", byte & 0xF)
        else:
            # Literal Fig. 4: an unshared 8-input AND, decomposed into
            # two registered 4-input halves to keep one level per stage.
            nl = self.netlist
            halves = []
            for offset in range(0, 8, 4):
                terms = []
                for bit in range(4):
                    wants_one = (byte >> (offset + bit)) & 1
                    source = self.data_bits if wants_one else self._inverted_bits
                    terms.append(source[offset + bit])
                halves.append(
                    nl.reg(nl.and_(*terms, name=f"chr{byte:02x}_h"), name="chrh_q")
                )
            hi, lo = halves[1], halves[0]
        net = self.netlist.reg(
            self.netlist.and_(hi, lo, name=f"chr{byte:02x}"),
            name=f"chr{byte:02x}_q",
        )
        return net, 2

    def _decode_set(self, byte_set: frozenset[int]) -> _Timed:
        """Pipelined decode of an arbitrary byte set (Fig. 5 style)."""
        nl = self.netlist
        if not byte_set:
            return nl.const(0), 0
        if len(byte_set) == 256:
            return nl.const(1), 0
        # Negated classes are cheaper as the complement's inverse
        # (inversion is absorbed into the consuming LUT).
        if len(byte_set) > 128:
            complement = frozenset(range(256)) - byte_set
            net, depth = self._raw(complement)
            return nl.not_(net, name="ncls"), depth
        if len(byte_set) == 1:
            return self._decode_char(next(iter(byte_set)))
        if not self.options.nibble_sharing:
            chars = [self._decode_char(b) for b in sorted(byte_set)]
            return self._rtree("or", chars, name="cls")
        # Group by high nibble: OR_h ( hi_h AND (OR of low nibbles) ).
        groups: dict[int, list[int]] = {}
        for byte in sorted(byte_set):
            groups.setdefault(byte >> 4, []).append(byte & 0xF)
        terms: list[_Timed] = []
        for high, lows in sorted(groups.items()):
            hi = (self._nibble("hi", high), 1)
            if len(lows) == 16:
                terms.append(hi)
                continue
            low_any = self._rtree(
                "or", [(self._nibble("lo", low), 1) for low in lows], name="clslo"
            )
            hi_net = self._pad_to(hi, low_any[1])
            terms.append(
                (
                    nl.reg(
                        nl.and_(hi_net, low_any[0], name="clst"), name="clst_q"
                    ),
                    low_any[1] + 1,
                )
            )
        return self._rtree("or", terms, name="cls")

    def _raw(self, byte_set: frozenset[int]) -> _Timed:
        cached = self._stage_raw.get(byte_set)
        if cached is None:
            cached = self._decode_set(byte_set)
            self._stage_raw[byte_set] = cached
        return cached

    # ------------------------------------------------------------------
    # aligned, replicated taps
    # ------------------------------------------------------------------
    def _tap_pool(self, byte_set: frozenset[int], stage: int) -> list[Net]:
        key = (byte_set, stage)
        pool = self._taps.get(key)
        if pool is not None:
            return pool
        nl = self.netlist
        if stage == NXT_STAGE:
            raw, depth = self._raw(byte_set)
            if nl.is_const(raw) is not None:
                base = raw
            else:
                # Gate with valid one level above the raw cone, then pad.
                valid = self._valid_stages[depth]
                gated = nl.reg(
                    nl.and_(raw, valid, name="dec_v"), name="dec_vq"
                )
                base = self._pad_to((gated, depth + 1), NXT_STAGE)
            sources = [base]
        else:  # CUR_STAGE: one register after the NXT tap, per replica
            sources = self._tap_pool(byte_set, NXT_STAGE)
        pool = []
        for replica in range(self.options.replicas):
            source = sources[replica % len(sources)]
            if stage == NXT_STAGE:
                pool.append(
                    source
                    if replica == 0 or nl.is_const(source) is not None
                    else nl.reg(
                        self._unpad(source), name=f"nxt_r{replica}"
                    )
                )
            else:
                pool.append(
                    source
                    if nl.is_const(source) is not None
                    else nl.reg(source, name=f"cur_r{replica}")
                )
        self._taps[key] = pool
        return pool

    def _unpad(self, net: Net) -> Net:
        """Source of the final pad register, for replica re-registering."""
        from repro.rtl.netlist import Register

        if isinstance(net.driver, Register):
            return net.driver.d
        return net

    def _pick(self, byte_set: frozenset[int], stage: int) -> Net:
        pool = self._tap_pool(byte_set, stage)
        key = (byte_set, stage)
        index = self._round_robin.get(key, 0)
        self._round_robin[key] = (index + 1) % len(pool)
        return pool[index]

    def cur(self, byte_set: frozenset[int]) -> Net:
        """Decoded bit for the *current* character (stage CUR_STAGE)."""
        return self._pick(frozenset(byte_set), CUR_STAGE)

    def cur_delim_or_idle(self) -> Net:
        """Arming-hold condition, dealt round-robin across replicas."""
        net = self._delim_or_idle_pool[self._delim_rr]
        self._delim_rr = (self._delim_rr + 1) % len(self._delim_or_idle_pool)
        return net

    def nxt(self, byte_set: frozenset[int]) -> Net:
        """Decoded bit for the *next* character (stage NXT_STAGE).

        This is the Fig. 7 look-ahead — "by using the decoded bits in
        the earlier stages of the pipeline, we can effectively look at
        the future characters to find the longest pattern."
        """
        return self._pick(frozenset(byte_set), NXT_STAGE)

    # ------------------------------------------------------------------
    @property
    def detect_latency(self) -> int:
        """Cycles from input byte to a registered tokenizer detect."""
        return CUR_STAGE + 1

    @property
    def n_decoded_sets(self) -> int:
        """Distinct byte sets decoded so far (decoder-sharing metric)."""
        return len(self._stage_raw)
