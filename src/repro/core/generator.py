"""Whole-tagger hardware generation (the paper's Fig. 3 architecture).

"For a given grammar description, the automatic hardware generator
builds high performance pattern detection engines. Then, the
syntactical structure is formed out of the pattern detection engines
using the First and Follow set algorithms." (§1)

:class:`TaggerGenerator` turns a :class:`~repro.grammar.cfg.Grammar`
into a :class:`TaggerCircuit`: a complete netlist with

* the shared decoder bank (Figs. 4–5),
* one tokenizer per terminal occurrence (Figs. 6–7),
* the Follow-set enable wiring (Fig. 11),
* a pipelined token index encoder (eqs. 1–5), and
* one detect output wire per occurrence for the back-end (§3.5),

plus the metadata needed to interpret the outputs (occurrence order,
encoder index map, pipeline latencies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.core.decoder import DecoderBank, DecoderOptions
from repro.core.encoder import (
    EncoderResult,
    assign_nested_indices,
    build_case_encoder,
    build_mask_encoder,
    build_or_tree_encoder,
)
from repro.core.tokenizer import DETECT_LATENCY
from repro.core.wiring import (
    WiredScanner,
    WiringOptions,
    build_scanner,
    estimate_conflict_groups,
)
from repro.errors import GenerationError
from repro.grammar.analysis import Occurrence
from repro.grammar.cfg import Grammar
from repro.rtl.netlist import Netlist


@dataclass
class TaggerOptions:
    """All generation options, grouped by subsystem."""

    wiring: WiringOptions = field(default_factory=WiringOptions)
    decoder: DecoderOptions = field(default_factory=DecoderOptions)
    #: "or-tree" (default, eqs. 1–4), "priority" (eq. 5 masks),
    #: "case" (naive chain, ablation) or "none" (detect wires only).
    encoder_style: Literal["or-tree", "priority", "case", "none"] = "or-tree"
    #: Also expose one output port per occurrence detect wire.
    expose_detects: bool = True
    #: Expose an "accept" port: OR of the accepting-occurrence detects
    #: (used by stream back-ends to find message boundaries).
    expose_accept: bool = True


@dataclass
class TaggerCircuit:
    """A generated tagger: netlist plus interpretation metadata."""

    grammar: Grammar
    netlist: Netlist
    scanner: WiredScanner
    encoder: EncoderResult | None
    options: TaggerOptions
    #: occurrence -> detect output port name
    detect_ports: dict[Occurrence, str]
    detect_latency: int = DETECT_LATENCY

    @property
    def occurrences(self) -> list[Occurrence]:
        """Encoder input order; position ``i`` maps to index ``i+1``
        for the or-tree encoder (see ``encoder.index_of_input``)."""
        return self.scanner.order

    @property
    def index_latency(self) -> int:
        """Input byte to encoded index latency, in cycles."""
        if self.encoder is None:
            raise GenerationError("tagger was generated without an encoder")
        return self.detect_latency + self.encoder.latency

    def index_of(self, occurrence: Occurrence) -> int | None:
        """The encoder index emitted when ``occurrence`` detects."""
        if self.encoder is None:
            return None
        position = self.occurrences.index(occurrence)
        return self.encoder.index_of_input[position]

    def occurrence_of_index(self, index: int) -> Occurrence | None:
        """Inverse of :meth:`index_of` (None for unassigned indices)."""
        if self.encoder is None:
            return None
        for position, value in self.encoder.index_of_input.items():
            if value == index:
                return self.occurrences[position]
        return None

    def pattern_bytes(self) -> int:
        """The Table 1 '# of Bytes' metric for this design."""
        lexspec = self.grammar.lexspec
        used = {t.name for t in self.grammar.used_terminals()}
        return sum(
            token.pattern_bytes() for token in lexspec if token.name in used
        )

    def describe(self) -> str:
        enc = self.encoder.style if self.encoder else "none"
        return (
            f"tagger[{self.grammar.name}]: "
            f"{len(self.occurrences)} tokenizers, "
            f"{self.pattern_bytes()} pattern bytes, "
            f"{self.netlist.n_gates} gates, "
            f"{self.netlist.n_registers} registers, encoder={enc}"
        )


class TaggerGenerator:
    """Generates tagger circuits from grammars.

    Example
    -------
    >>> from repro.grammar.examples import if_then_else
    >>> circuit = TaggerGenerator().generate(if_then_else())
    >>> circuit.netlist.validate()
    """

    def __init__(self, options: TaggerOptions | None = None) -> None:
        self.options = options or TaggerOptions()

    def generate(self, grammar: Grammar, name: str | None = None) -> TaggerCircuit:
        options = self.options
        netlist = Netlist(name or f"tagger_{_sanitize(grammar.name)}")
        decoders = DecoderBank(
            netlist,
            grammar.lexspec.delimiters.matched_bytes(),
            options=options.decoder,
        )
        scanner = build_scanner(netlist, decoders, grammar, options.wiring)

        detects = [scanner.instances[o].detect for o in scanner.order]
        encoder = self._build_encoder(netlist, scanner, detects)

        detect_ports: dict[Occurrence, str] = {}
        if options.expose_detects:
            for occurrence in scanner.order:
                port = f"det_{_sanitize(occurrence.terminal.name)}_{occurrence.context_name()}"
                netlist.output(port, scanner.instances[occurrence].detect)
                detect_ports[occurrence] = port

        if options.expose_accept:
            accepting = [
                scanner.instances[o].detect
                for o in scanner.order
                if o in scanner.graph.accepting
            ]
            accept = (
                netlist.or_tree(accepting, name="accept")
                if accepting
                else netlist.const(0)
            )
            netlist.output("accept", accept)

        if encoder is not None:
            for bit, net in enumerate(encoder.index_bits):
                netlist.output(f"index{bit}", net)
            netlist.output("match_valid", encoder.valid)

        if scanner.lost is not None:
            netlist.output("parse_error", scanner.lost)

        netlist.validate()
        return TaggerCircuit(
            grammar=grammar,
            netlist=netlist,
            scanner=scanner,
            encoder=encoder,
            options=options,
            detect_ports=detect_ports,
        )

    def _build_encoder(
        self, netlist: Netlist, scanner: WiredScanner, detects
    ) -> EncoderResult | None:
        style = self.options.encoder_style
        if style == "none":
            return None
        if style == "or-tree":
            return build_or_tree_encoder(netlist, detects)
        if style == "case":
            return build_case_encoder(netlist, detects)
        if style == "priority":
            groups = estimate_conflict_groups(scanner)
            indices = assign_nested_indices(len(detects), groups)
            return build_mask_encoder(netlist, detects, indices)
        raise GenerationError(f"unknown encoder style {style!r}")


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() else "_" for c in name)
