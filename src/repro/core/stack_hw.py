"""Gate-level recursion checking (§5.2 in actual hardware).

The full RTN stack machine lives in :mod:`repro.core.stack` as the
behavioral model; this module builds the piece of it that maps
directly onto gates today: a **depth checker** for self-embedding
recursion. For a grammar with a production ``X → α X β`` (the
balanced-parenthesis grammar of Fig. 1 being the canonical case), the
recursion frames carry no data, so the §5.2 stack degenerates to the
counter stack of :func:`repro.rtl.stack.build_counter_stack`:

* a detect of a terminal in ``α`` pushes;
* a detect of a terminal in ``β`` pops;
* popping an empty stack raises a sticky ``stack_error`` — input like
  ``(0))`` is now *caught by the hardware*;
* ``stack_empty`` low when the stream ends exposes unclosed recursion
  like ``((0)``.

This upgrades the Fig. 2b finite automaton back toward the Fig. 2a
push-down automaton without giving up the streaming architecture.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.generator import TaggerCircuit
from repro.errors import GenerationError
from repro.grammar.cfg import Grammar
from repro.grammar.symbols import NonTerminal, Terminal
from repro.rtl.stack import StackPorts, build_counter_stack


def self_embedding_pairs(
    grammar: Grammar,
) -> tuple[frozenset[Terminal], frozenset[Terminal]]:
    """Derive (push, pop) terminal sets from self-embedding productions.

    A production ``X → α X β`` with non-empty ``α`` and ``β`` embeds
    ``X`` in itself; its ``α`` terminals open a recursion level and its
    ``β`` terminals close one. Raises when the grammar has no such
    production (nothing for a counter stack to track).
    """
    pushes: set[Terminal] = set()
    pops: set[Terminal] = set()
    for production in grammar.productions:
        for position, symbol in enumerate(production.rhs):
            if not isinstance(symbol, NonTerminal) or symbol != production.lhs:
                continue
            before = production.rhs[:position]
            after = production.rhs[position + 1 :]
            if not before or not after:
                continue  # plain left/right recursion, no embedding
            pushes.update(s for s in before if isinstance(s, Terminal))
            pops.update(s for s in after if isinstance(s, Terminal))
    if not pushes or not pops:
        raise GenerationError(
            f"grammar {grammar.name!r} has no self-embedding production; "
            "the counter-stack checker does not apply"
        )
    return frozenset(pushes), frozenset(pops)


@dataclass
class DepthCheckerPorts:
    """Output port names added to the tagger circuit."""

    stack_error: str
    stack_empty: str
    stack: StackPorts
    depth: int


def attach_depth_checker(
    circuit: TaggerCircuit,
    depth: int = 16,
    push_terminals: frozenset[Terminal] | None = None,
    pop_terminals: frozenset[Terminal] | None = None,
) -> DepthCheckerPorts:
    """Wire a counter stack onto a generated tagger's detect nets.

    Must be called before simulating the circuit (it extends the
    netlist). Adds two output ports:

    * ``stack_error`` — sticky; a closing token arrived with no open
      recursion level (underflow) or nesting exceeded ``depth``
      (overflow);
    * ``stack_empty`` — high when no recursion level is open; sampled
      after the final token it distinguishes balanced from unclosed
      input.
    """
    if push_terminals is None or pop_terminals is None:
        auto_push, auto_pop = self_embedding_pairs(circuit.grammar)
        push_terminals = push_terminals or auto_push
        pop_terminals = pop_terminals or auto_pop

    nl = circuit.netlist
    scanner = circuit.scanner

    def detects_of(terminals: frozenset[Terminal]):
        nets = [
            scanner.instances[occurrence].detect
            for occurrence in scanner.order
            if occurrence.terminal in terminals
        ]
        if not nets:
            raise GenerationError(
                "no tokenizer detects for terminals "
                + ", ".join(sorted(t.name for t in terminals))
            )
        return nets

    push = nl.or_tree(detects_of(push_terminals), name="stk_push")
    pop = nl.or_tree(detects_of(pop_terminals), name="stk_pop")
    stack = build_counter_stack(nl, push, pop, depth=depth)

    error = nl.or_(stack.overflow, stack.underflow, name="stack_error")
    nl.output("stack_error", error)
    nl.output("stack_empty", stack.empty)
    nl.validate()
    return DepthCheckerPorts(
        stack_error="stack_error",
        stack_empty="stack_empty",
        stack=stack,
        depth=depth,
    )


@dataclass
class CheckedRun:
    """Outcome of a gate-level run with the depth checker attached."""

    events: list
    stack_error: bool
    balanced: bool

    @property
    def accepted(self) -> bool:
        """Balanced and error-free — the PDA verdict in hardware."""
        return self.balanced and not self.stack_error


def run_with_checker(circuit: TaggerCircuit, data: bytes) -> CheckedRun:
    """Simulate the checked circuit over ``data``; return the verdict."""
    from repro.core.tagger import GateLevelTagger
    from repro.rtl.simulator import stimulus_with_valid

    tagger = GateLevelTagger(circuit)
    simulator = tagger.simulator
    simulator.reset()
    frames = stimulus_with_valid(data, tagger._flush_cycles())
    latency = circuit.detect_latency
    events = []
    stack_error = False
    balanced = True
    for cycle, frame in enumerate(frames):
        outputs = simulator.step(frame)
        stack_error = bool(outputs["stack_error"])
        balanced = bool(outputs["stack_empty"])
        end = cycle - latency + 1
        if end < 1:
            continue
        for port, occurrence in tagger._occurrence_of_port.items():
            if outputs[port]:
                from repro.core.tagger import DetectEvent

                events.append(DetectEvent(occurrence, end))
    return CheckedRun(events=events, stack_error=stack_error, balanced=balanced)
