"""Token index encoders (the paper's §3.4, equations 1–5).

Three constructions:

* :func:`build_or_tree_encoder` — the paper's compact pipelined binary
  OR-tree. Input ``k`` (1-based; 0 means "no token") produces index
  ``k``: each index bit is the OR of the *odd* nodes of one tree level
  (equations 1–4 show the 15-input instance). Every gate level is
  registered, so "the critical path has maximum of (log n)-1 gate
  delays" and in our fully pipelined form exactly one gate level per
  stage.
* :func:`build_mask_encoder` — a direct OR-per-bit encoder for
  arbitrary index assignments; with :func:`assign_nested_indices` it
  realizes the priority scheme of equation 5 (simultaneous detections
  OR to the index of the highest-priority token).
* :func:`build_case_encoder` — the naive VHDL CASE-statement chain the
  paper warns about ("almost always the critical path"), kept as an
  ablation target for the timing model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import EncoderError
from repro.rtl.netlist import Net, Netlist


@dataclass
class EncoderResult:
    """Nets and metadata of a generated index encoder."""

    index_bits: list[Net]  # LSB first
    valid: Net
    latency: int
    #: input position (0-based) -> emitted index value
    index_of_input: dict[int, int]
    style: str = "or-tree"

    @property
    def width(self) -> int:
        return len(self.index_bits)


def _pipelined_or_tree(nl: Netlist, nets: list[Net], name: str) -> tuple[Net, int]:
    """Balanced OR tree with a register after every level.

    Returns (output net, number of register levels used).
    """
    level = list(nets)
    depth = 0
    while len(level) > 1:
        nxt: list[Net] = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(
                nl.reg(nl.or_(level[i], level[i + 1], name=name), name=f"{name}_r")
            )
        if len(level) % 2:
            nxt.append(nl.reg(level[-1], name=f"{name}_r"))
        level = nxt
        depth += 1
    return level[0], depth


def build_or_tree_encoder(
    nl: Netlist, inputs: list[Net], name: str = "enc"
) -> EncoderResult:
    """Pipelined binary-OR-tree encoder (equations 1–4).

    Assumes at most one input asserts per cycle ("we may assume that
    only one tokenizer output will be asserted at any given clock
    cycle"); when several assert, the output is the bitwise OR of
    their indices — exactly the hardware behaviour the priority scheme
    of equation 5 exploits.
    """
    if not inputs:
        raise EncoderError("encoder needs at least one input")
    n = len(inputs)
    width = max(1, math.ceil(math.log2(n + 1)))
    size = 1 << width

    # Leaves: position 0 is the reserved "no token" slot.
    leaves: list[Net] = [nl.const(0)] * size
    for position, net in enumerate(inputs, start=1):
        leaves[position] = net

    # Build the tree level by level, registering each level. levels[l]
    # holds the nodes of depth l from the root (levels[width] = leaves).
    levels: list[list[Net]] = [[]] * (width + 1)
    levels[width] = leaves
    for depth in range(width - 1, -1, -1):
        below = levels[depth + 1]
        levels[depth] = [
            nl.reg(
                nl.or_(below[2 * i], below[2 * i + 1], name=f"{name}_t{depth}"),
                name=f"{name}_t{depth}_r",
            )
            for i in range(len(below) // 2)
        ]

    # Nodes at depth d are registered d' = (width - d) times relative
    # to the leaves... they are registered (width - d) times: leaves 0,
    # depth width-1 once, ..., root `width` times.
    root = levels[0][0]
    total_latency = width  # root latency in cycles

    index_bits: list[Net] = []
    # Index bit for tree level l (1 = just below root): OR of odd nodes.
    # MSB comes from level 1, LSB from the leaf level.
    for level_number in range(width, 0, -1):  # leaf level .. top level
        nodes = levels[level_number]
        odd_nodes = [nodes[i] for i in range(1, len(nodes), 2)]
        reduced, depth_used = _pipelined_or_tree(
            nl, odd_nodes, name=f"{name}_ix{level_number}"
        )
        # Latency so far: (width - level_number) tree registers + OR
        # tree depth. Pad every bit to the root's latency.
        latency = (width - level_number) + depth_used
        if latency > total_latency:
            raise EncoderError("encoder bit latency exceeded root latency")
        index_bits.append(
            nl.delay(reduced, total_latency - latency, name=f"{name}_ixd{level_number}")
        )
    # index_bits currently MSB-last? level `width` (leaves) contributes
    # the LSB (equation 4), level 1 the MSB (equation 1) — we iterated
    # leaves first, so the list is LSB first already.

    return EncoderResult(
        index_bits=index_bits,
        valid=root,
        latency=total_latency,
        index_of_input={i: i + 1 for i in range(n)},
        style="or-tree",
    )


def assign_nested_indices(
    n_inputs: int,
    conflict_groups: list[list[int]],
    width: int | None = None,
) -> list[int]:
    """Equation-5 priority index assignment.

    Each conflict group lists input positions that may assert
    simultaneously, ordered lowest priority first. Within a group the
    assigned indices form a nested bit chain, so the bitwise OR of any
    subset equals the index of the highest-priority member:
    ``In | In-1 | … | I0 = In``. "The maximum number of indices for
    each set is equal to the number of index output pins."
    """
    minimum_width = max(1, math.ceil(math.log2(n_inputs + 1)))
    largest_group = max((len(g) for g in conflict_groups), default=0)
    if width is not None:
        # An explicit width is a hard cap — the number of index output
        # pins. Equation 5 limits each conflict set to that many members.
        if largest_group > width:
            raise EncoderError(
                f"conflict group of {largest_group} tokens exceeds the "
                f"{width}-bit index width (equation 5 limit)"
            )
        width = max(width, minimum_width)
    else:
        width = max(minimum_width, largest_group)

    assigned: dict[int, int] = {}
    used: set[int] = {0}

    for group in conflict_groups:
        if len(group) > width:
            raise EncoderError(
                f"conflict group of {len(group)} tokens exceeds the "
                f"{width}-bit index width (equation 5 limit)"
            )
        for position in group:
            if position in assigned:
                raise EncoderError(
                    f"input {position} appears in two conflict groups"
                )
        # Nested masks: lowest priority gets the smallest submask.
        # Choose a chain 2^a1-1 ⊂ ... avoiding collisions by shifting.
        chain = _nested_chain(len(group), width, used)
        for position, mask in zip(group, chain):
            assigned[position] = mask
            used.add(mask)

    next_try = 1
    for position in range(n_inputs):
        if position in assigned:
            continue
        while next_try in used:
            next_try += 1
        if next_try >= (1 << width):
            raise EncoderError("index space exhausted; widen the encoder")
        assigned[position] = next_try
        used.add(next_try)
    return [assigned[i] for i in range(n_inputs)]


def _nested_chain(length: int, width: int, used: set[int]) -> list[int]:
    """Find ``length`` unused nested masks of ``width`` bits."""
    # Greedy: build the chain by adding one bit at a time, preferring
    # masks not yet used. Bit order is permuted until all chain members
    # are fresh.
    import itertools

    for bit_order in itertools.permutations(range(width), width):
        chain: list[int] = []
        mask = 0
        for bit in bit_order:
            mask |= 1 << bit
            chain.append(mask)
            if len(chain) == length:
                break
        if len(chain) == length and not any(m in used for m in chain):
            return chain
    raise EncoderError(
        f"could not find {length} fresh nested masks in {width} bits"
    )


def build_mask_encoder(
    nl: Netlist,
    inputs: list[Net],
    indices: list[int],
    name: str = "enc",
) -> EncoderResult:
    """OR-per-bit encoder for an arbitrary index assignment.

    Pairs with :func:`assign_nested_indices` to realize equation 5.
    Fully pipelined: every bit is a registered OR tree padded to a
    common latency.
    """
    if len(inputs) != len(indices):
        raise EncoderError("one index per input required")
    if len(set(indices)) != len(indices):
        raise EncoderError("indices must be unique per input")
    width = max(1, max(indices).bit_length())

    raw_bits: list[tuple[Net, int]] = []
    for bit in range(width):
        contributors = [
            net for net, value in zip(inputs, indices) if (value >> bit) & 1
        ]
        if not contributors:
            raw_bits.append((nl.const(0), 0))
            continue
        raw_bits.append(
            _pipelined_or_tree(nl, contributors, name=f"{name}_b{bit}")
        )
    valid_raw, valid_depth = _pipelined_or_tree(nl, list(inputs), name=f"{name}_v")
    latency = max(valid_depth, max(depth for _, depth in raw_bits))
    index_bits = [
        nl.delay(net, latency - depth, name=f"{name}_bd") for net, depth in raw_bits
    ]
    valid = nl.delay(valid_raw, latency - valid_depth, name=f"{name}_vd")
    return EncoderResult(
        index_bits=index_bits,
        valid=valid,
        latency=latency,
        index_of_input={i: indices[i] for i in range(len(inputs))},
        style="mask",
    )


def build_case_encoder(
    nl: Netlist, inputs: list[Net], name: str = "enc"
) -> EncoderResult:
    """The naive CASE-statement priority chain (ablation baseline).

    "A small index encoder module can be written in VHDL as a chain of
    CASE statements. However … the index encoder is almost always the
    critical path for the entire system." This builds exactly that
    chain — a cascade of 2:1 muxes — registered only at the output, so
    its combinational depth grows linearly with the input count and the
    timing model exposes the problem.
    """
    if not inputs:
        raise EncoderError("encoder needs at least one input")
    width = max(1, math.ceil(math.log2(len(inputs) + 1)))
    bits: list[Net] = [nl.const(0)] * width
    valid: Net = nl.const(0)
    # Highest input position wins, mirroring a last-assignment-wins
    # VHDL process; build from the lowest so later inputs override.
    for position, net in enumerate(inputs, start=1):
        bits = [
            nl.mux(net, nl.const((position >> bit) & 1), bits[bit], name=f"{name}_c")
            for bit in range(width)
        ]
        valid = nl.or_(valid, net, name=f"{name}_cv")
    index_bits = [nl.reg(bit, name=f"{name}_cb") for bit in bits]
    valid = nl.reg(valid, name=f"{name}_cvr")
    return EncoderResult(
        index_bits=index_bits,
        valid=valid,
        latency=1,
        index_of_input={i: i + 1 for i in range(len(inputs))},
        style="case-chain",
    )
