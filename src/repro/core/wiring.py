"""Syntactic control flow: Follow-set wiring of tokenizers (Fig. 11).

"We forward the output of each token to the inputs of the tokens
listed in its Follow set. When there is more than one connection to
the input of the tokenizer, an OR gate is used to combine the signals
into a single bit input." (§3.3)

The wiring is two-pass: every tokenizer is built against a placeholder
enable net, then each placeholder is driven with the OR of its
predecessors' detect outputs (plus the start condition for the start
tokens). With context duplication on (the default, §3.2), tokenizers
are instantiated per *occurrence*; the ablation collapses them to one
per terminal, reproducing the coarser Fig. 11 wiring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.core.decoder import DecoderBank
from repro.core.tokenizer import (
    TokenizerInstance,
    TokenizerTemplateOptions,
    build_tokenizer,
)
from repro.errors import GenerationError
from repro.grammar.analysis import (
    GrammarAnalysis,
    Occurrence,
    OccurrenceGraph,
    analyze_grammar,
    build_occurrence_graph,
)
from repro.grammar.cfg import Grammar
from repro.grammar.regex.glushkov import Glushkov, build_glushkov
from repro.grammar.symbols import END, Terminal
from repro.rtl.netlist import Net, Netlist


@dataclass
class WiringOptions:
    """Options controlling the syntactic control-flow construction."""

    #: Duplicate tokens per grammatical context (§3.2). The ablation
    #: (False) instantiates one tokenizer per terminal and uses the
    #: terminal-level Follow table — tags then carry no context.
    context_duplication: bool = True
    #: "once": start tokenizers enabled at the beginning of the data;
    #: "always": enabled every cycle, scanning at every byte alignment
    #: (both modes are described in §3.3).
    start_mode: Literal["once", "always"] = "once"
    #: Re-arm the start tokenizers whenever a sentence may have ended,
    #: so a stream of back-to-back messages is tagged continuously
    #: (needed by the XML-RPC router of §4).
    loop_on_accept: bool = True
    #: §5.2 error detection & recovery: when no tokenizer holds any
    #: state ("the parse died"), raise a registered error flag and
    #: re-arm the start tokenizers so processing "continues from the
    #: point of the error".
    error_recovery: bool = False
    tokenizer: TokenizerTemplateOptions = field(
        default_factory=TokenizerTemplateOptions
    )


@dataclass
class WiredScanner:
    """All tokenizers of a tagger plus their wiring metadata."""

    grammar: Grammar
    analysis: GrammarAnalysis
    graph: OccurrenceGraph
    instances: dict[Occurrence, TokenizerInstance]
    #: Occurrences in deterministic output order (encoder input order).
    order: list[Occurrence]
    options: WiringOptions
    #: Registered "parse died" flag (§5.2), None unless error_recovery.
    lost: Net | None = None

    def detect_net(self, occurrence: Occurrence) -> Net:
        return self.instances[occurrence].detect


def build_scanner(
    netlist: Netlist,
    decoders: DecoderBank,
    grammar: Grammar,
    options: WiringOptions | None = None,
) -> WiredScanner:
    """Instantiate and wire every tokenizer of ``grammar``."""
    options = options or WiringOptions()
    if options.error_recovery and not options.tokenizer.track_liveness:
        from dataclasses import replace as _replace

        options = _replace(
            options, tokenizer=_replace(options.tokenizer, track_liveness=True)
        )
    analysis = analyze_grammar(grammar)
    graph = build_occurrence_graph(grammar, analysis)
    if not graph.occurrences:
        raise GenerationError("grammar has no terminal occurrences")

    if options.context_duplication:
        units, edges, starts, accepting = _occurrence_units(graph)
    else:
        units, edges, starts, accepting = _collapsed_units(graph, analysis)

    # Shared Glushkov automata per token pattern (identical contexts
    # share the construction, not the hardware).
    automata: dict[str, Glushkov] = {}

    def automaton_for(terminal: Terminal) -> Glushkov:
        cached = automata.get(terminal.name)
        if cached is None:
            cached = build_glushkov(grammar.lexspec.get(terminal.name).pattern)
            automata[terminal.name] = cached
        return cached

    # Pass 1: tokenizers against placeholder enables.
    instances: dict[Occurrence, TokenizerInstance] = {}
    enables: dict[Occurrence, Net] = {}
    always_on = options.start_mode == "always"
    for unit in units:
        name = f"tok_{_sanitize(unit.terminal.name)}_{unit.context_name()}"
        if always_on and unit in starts:
            enable: Net = netlist.const(1)
        else:
            enable = netlist.placeholder(f"{name}_en")
            enables[unit] = enable
        instances[unit] = build_tokenizer(
            netlist,
            decoders,
            grammar.lexspec.get(unit.terminal.name),
            enable,
            name,
            options=options.tokenizer,
            glushkov=automaton_for(unit.terminal),
        )

    # §5.2 error recovery: a registered flag that rises when no
    # tokenizer holds any state during valid streaming; it feeds back
    # into the start enables so parsing resumes past the error.
    lost: Net | None = None
    if options.error_recovery:
        liveness_nets = [
            inst.liveness
            for inst in instances.values()
            if inst.liveness is not None
        ]
        live = netlist.or_tree(liveness_nets, name="parser_live")
        lost = netlist.reg(
            netlist.and_(
                decoders.valid_cur, netlist.not_(live), name="parser_lost_d"
            ),
            name="parser_lost",
        )

    # Pass 2: drive the enables with predecessor detects + start logic.
    predecessors: dict[Occurrence, list[Occurrence]] = {u: [] for u in units}
    for source, targets in edges.items():
        for target in targets:
            predecessors[target].append(source)
    if options.loop_on_accept:
        for source in accepting:
            for target in starts:
                if source not in predecessors[target]:
                    predecessors[target].append(source)

    for unit, enable in enables.items():
        sources: list[Net] = [
            instances[pred].detect for pred in predecessors[unit]
        ]
        if unit in starts:
            sources.append(decoders.start_pulse)
            if lost is not None:
                sources.append(lost)
        if not sources:
            # Token unreachable from the start symbol through the
            # follow graph — permanently disabled.
            netlist.drive_const(enable, 0)
            continue
        netlist.drive_or(enable, _dedupe(sources))

    return WiredScanner(
        grammar=grammar,
        analysis=analysis,
        graph=graph,
        instances=instances,
        order=list(units),
        options=options,
        lost=lost,
    )


def _occurrence_units(
    graph: OccurrenceGraph,
) -> tuple[
    list[Occurrence],
    dict[Occurrence, frozenset[Occurrence]],
    frozenset[Occurrence],
    frozenset[Occurrence],
]:
    return list(graph.occurrences), graph.edges, graph.starts, graph.accepting


def _collapsed_units(graph: OccurrenceGraph, analysis: GrammarAnalysis):
    """One unit per terminal: the ablation without context duplication.

    The representative occurrence of each terminal is its first one;
    edges are the terminal-level Follow table of Fig. 10/11.
    """
    representative: dict[Terminal, Occurrence] = {}
    for occurrence in graph.occurrences:
        representative.setdefault(occurrence.terminal, occurrence)
    units = list(representative.values())

    collapsed = graph.collapsed_edges()
    edges: dict[Occurrence, frozenset[Occurrence]] = {}
    for unit in units:
        followers = collapsed.get(unit.terminal, frozenset())
        edges[unit] = frozenset(
            representative[t] for t in followers if t in representative
        )
    starts = frozenset(
        representative[o.terminal] for o in graph.starts
    )
    accepting = frozenset(
        representative[t]
        for t in representative
        if END in analysis.follow[t]
    )
    return units, edges, starts, accepting


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() else "_" for c in name)


def _dedupe(nets: list[Net]) -> list[Net]:
    seen: set[int] = set()
    unique: list[Net] = []
    for net in nets:
        if net.uid not in seen:
            seen.add(net.uid)
            unique.append(net)
    return unique


# ----------------------------------------------------------------------
# conflict estimation for the equation-5 priority encoder
# ----------------------------------------------------------------------
def estimate_conflict_groups(
    scanner: WiredScanner,
) -> list[list[int]]:
    """Heuristic sets of encoder inputs that may assert simultaneously.

    "One solution to the conflict is to divide the set into multiple
    sets; where each subset contains all of the tokens that can
    possibly be asserted at any one time." (§3.4)

    Two units may collide when (a) they can be enabled from a common
    predecessor (or are both start tokens), and (b) the byte sets of
    their final pattern positions intersect, so the same input byte can
    complete both. This over-approximates simultaneity, which is safe:
    a group may be split further but must never miss a real conflict.
    Groups are ordered lowest priority first, with more specific
    patterns (smaller alphabets) given higher priority.
    """
    units = scanner.order

    enabler_sets: dict[Occurrence, frozenset] = {}
    edges = (
        scanner.graph.edges
        if scanner.options.context_duplication
        else None
    )
    predecessor_map: dict[Occurrence, set] = {u: set() for u in units}
    if edges is not None:
        for source, targets in edges.items():
            for target in targets:
                if target in predecessor_map:
                    predecessor_map[target].add(source)
    for unit in units:
        enablers = frozenset(predecessor_map[unit]) | (
            frozenset({"<start>"}) if unit in scanner.graph.starts else frozenset()
        )
        enabler_sets[unit] = enablers

    def last_bytes(unit: Occurrence) -> frozenset[int]:
        auto = scanner.instances[unit].glushkov
        result: set[int] = set()
        for p in auto.last:
            result |= auto.position_bytes[p]
        return frozenset(result)

    # Union-find over colliding pairs.
    parent = list(range(len(units)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        parent[find(i)] = find(j)

    for i, a in enumerate(units):
        for j in range(i + 1, len(units)):
            b = units[j]
            if not enabler_sets[a] & enabler_sets[b]:
                continue
            if last_bytes(a) & last_bytes(b):
                union(i, j)

    groups: dict[int, list[int]] = {}
    for i in range(len(units)):
        groups.setdefault(find(i), []).append(i)

    def specificity(index: int) -> int:
        from repro.grammar.regex.ast import alphabet

        return len(alphabet(scanner.instances[units[index]].glushkov.pattern))

    result = []
    for members in groups.values():
        if len(members) < 2:
            continue
        # Lowest priority first: broader patterns (larger alphabets)
        # are less specific, so they get lower priority.
        members.sort(key=specificity, reverse=True)
        result.append(members)
    return result
