"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class. Subsystems raise the most
specific subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetlistError(ReproError):
    """Structural problem in a hardware netlist (bad wiring, cycles)."""


class SimulationError(ReproError):
    """A netlist could not be simulated (e.g. combinational loop)."""


class RegexSyntaxError(ReproError):
    """A token regular expression could not be parsed."""

    def __init__(self, message: str, pattern: str, position: int) -> None:
        super().__init__(f"{message} (pattern {pattern!r}, position {position})")
        self.pattern = pattern
        self.position = position


class GrammarError(ReproError):
    """A grammar definition is malformed or inconsistent."""


class GrammarSyntaxError(GrammarError):
    """A Yacc-style grammar file could not be parsed."""

    def __init__(self, message: str, line: int | None = None) -> None:
        location = f" (line {line})" if line is not None else ""
        super().__init__(f"{message}{location}")
        self.line = line


class DTDSyntaxError(GrammarError):
    """A Document Type Definition could not be parsed."""


class GenerationError(ReproError):
    """The hardware generator could not build a tagger for a grammar."""


class UnsupportedPatternError(GenerationError):
    """A token pattern uses a construct the hardware templates lack."""


class EncoderError(GenerationError):
    """Token index assignment failed (e.g. too many conflicting tokens)."""


class DeviceError(ReproError):
    """An FPGA device model was misused (unknown device, over capacity)."""


class ParseError(ReproError):
    """A software reference parser rejected its input."""

    def __init__(self, message: str, position: int | None = None) -> None:
        location = f" (at byte {position})" if position is not None else ""
        super().__init__(f"{message}{location}")
        self.position = position


class BackendError(ReproError):
    """A back-end processor (router, filter) was misconfigured."""
