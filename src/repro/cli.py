"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's workflow:

* ``info`` — parse a grammar, print productions and Follow sets;
* ``tag`` — tag a byte stream (behavioral, gate-level or stack mode);
* ``generate`` — compile a grammar to hardware, optionally emit VHDL
  and an implementation report;
* ``route`` — run the XML-RPC router demo on a synthetic workload;
* ``serve-bench`` — throughput of the sharded multi-process scan
  service against the single-process router;
* ``serve`` — the asyncio TCP scan server (framed wire protocol,
  optional worker pool and admin/metrics endpoint);
* ``registry`` — publish, list, inspect, and garbage-collect named
  versioned grammars compiled ahead-of-time into an artifact store
  (plus a cold-start benchmark: registry load vs recompile);
* ``client-bench`` — closed-loop load generator against a running
  server, with byte-for-byte verification;
* ``structgen`` — the constrained-decoding subsystem: precompute
  per-state valid-token masks for a grammar × vocabulary, serve mask
  flows over the wire protocol, and benchmark masks/sec (precomputed
  vs context-dependent split, or remote round trips);
* ``table1`` / ``figure15`` / ``ablation`` — print the experiment
  reproductions.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.generator import TaggerGenerator
from repro.core.stack import StackTagger
from repro.core.tagger import BehavioralTagger, GateLevelTagger
from repro.errors import ReproError
from repro.fpga.device import DEVICES, get_device
from repro.fpga.report import implement
from repro.grammar.examples import balanced_parens, if_then_else, xmlrpc
from repro.grammar.yacc_parser import load_yacc_grammar
from repro.rtl.vhdl import emit_vhdl

_BUILTIN_GRAMMARS = {
    "xmlrpc": xmlrpc,
    "if-then-else": if_then_else,
    "balanced-parens": balanced_parens,
}


def _load_grammar(spec: str):
    builder = _BUILTIN_GRAMMARS.get(spec)
    if builder is not None:
        return builder()
    return load_yacc_grammar(spec)


def _read_input(path: str | None) -> bytes:
    if path is None or path == "-":
        return sys.stdin.buffer.read()
    with open(path, "rb") as handle:
        return handle.read()


# ----------------------------------------------------------------------
def _cmd_info(args: argparse.Namespace) -> int:
    from repro.grammar.analysis import analyze_grammar

    grammar = _load_grammar(args.grammar)
    print(grammar.describe())
    print(f"\ntokens: {len(grammar.lexspec)}, "
          f"pattern bytes: {grammar.lexspec.total_pattern_bytes()}")
    print("\nFollow sets (paper Fig. 10 style):")
    print(analyze_grammar(grammar).describe_follow())
    return 0


def _cmd_tag(args: argparse.Namespace) -> int:
    grammar = _load_grammar(args.grammar)
    data = _read_input(args.input)
    if args.stack:
        tagger = StackTagger(grammar, stream=args.stream)
        for stacked in tagger.run(data):
            print(f"{stacked.token}  depth={stacked.depth}")
        return 0
    if args.gate_level:
        circuit = TaggerGenerator().generate(grammar)
        tokens = GateLevelTagger(circuit).tag(data)
    else:
        tokens = BehavioralTagger(grammar, engine=args.engine).tag(data)
    for token in tokens:
        print(token)
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    grammar = _load_grammar(args.grammar)
    circuit = TaggerGenerator().generate(grammar)
    print(circuit.describe())
    if args.vhdl:
        text = emit_vhdl(circuit.netlist)
        with open(args.vhdl, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(text.splitlines())} lines of VHDL to {args.vhdl}")
    if args.report:
        for key in args.device or list(DEVICES):
            report = implement(circuit, get_device(key))
            print(report.timing.summary(), f"({report.n_luts} LUTs, "
                  f"{report.utilization:.2%} of device)")
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    from repro.apps.xmlrpc import (
        ContentBasedRouter,
        NaiveRouter,
        WorkloadGenerator,
    )

    generator = WorkloadGenerator(
        seed=args.seed, adversarial_rate=args.adversarial
    )
    stream, truth = generator.stream(args.messages)
    router = NaiveRouter() if args.naive else ContentBasedRouter()
    routed = router.route(stream)
    correct = sum(
        1 for m, (_c, p, _d) in zip(routed, truth) if m.port == p
    )
    for message in routed[: args.show]:
        print(message)
    print(f"\n{correct}/{len(truth)} messages routed correctly "
          f"({'naive' if args.naive else 'contextual'} router)")
    return 0 if correct == len(truth) else 1


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import json
    import os
    import time

    from repro.apps.xmlrpc import ContentBasedRouter, WorkloadGenerator
    from repro.service import RouterSpec, ScanService

    generator = WorkloadGenerator(seed=args.seed)
    streams = {}
    per_flow = max(1, args.messages // args.flows)
    for index in range(args.flows):
        stream, _truth = generator.stream(per_flow)
        streams[f"flow-{index}"] = stream
    total_bytes = sum(len(s) for s in streams.values())

    router = ContentBasedRouter()
    started = time.perf_counter()
    expected = {flow: router.route(data) for flow, data in streams.items()}
    single_s = time.perf_counter() - started

    spec = RouterSpec(engine=args.engine)
    started = time.perf_counter()
    with ScanService(
        spec, n_workers=args.workers, queue_depth=args.queue_depth
    ) as service:
        got = service.run_streams(streams, chunk_size=args.chunk)
        service_s = time.perf_counter() - started
        stats = service.stats()

    matched = got == expected
    cpus = os.cpu_count() or 1
    ratio = single_s / service_s
    report = {
        "flows": args.flows,
        "messages": per_flow * args.flows,
        "bytes": total_bytes,
        "workers": args.workers,
        "cpus": cpus,
        "single_process_mbps": total_bytes / single_s / 1e6,
        "service_mbps": total_bytes / service_s / 1e6,
        # On hosts without enough CPUs for real parallelism a worker
        # ratio is a pseudo-regression, not a measurement: record null.
        "speedup": ratio if cpus >= 4 else None,
        "results_match": matched,
    }
    if args.json:
        report["stats"] = stats
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(f"workload: {report['messages']} messages, "
              f"{args.flows} flows, {total_bytes} bytes")
        print(f"single process : {report['single_process_mbps']:8.2f} MB/s")
        gating = (f"x{ratio:.2f}" if cpus >= 4
                  else f"x{ratio:.2f} ungated: only {cpus} CPUs")
        print(f"{args.workers}-worker service: "
              f"{report['service_mbps']:8.2f} MB/s ({gating})")
        print(f"results match  : {matched}")
        latency = stats["histograms"].get("latency.roundtrip_s", {})
        if latency.get("count"):
            print(f"round trip     : p50 {latency['p50_s'] * 1e3:.2f} ms, "
                  f"p99 {latency['p99_s'] * 1e3:.2f} ms")
    return 0 if matched else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.server import ScanServer
    from repro.service import RouterSpec

    if args.registry is not None:
        # --grammar is a registry ref: the server loads the published
        # artifact (and gains the admin hot-swap endpoint).
        spec = RouterSpec(grammar=None, engine=args.engine)
        registry_kwargs = {
            "registry": args.registry,
            "grammar": args.grammar,
        }
    else:
        grammar = (
            _load_grammar(args.grammar)
            if args.grammar != "xmlrpc"
            else None
        )
        spec = RouterSpec(grammar=grammar, engine=args.engine)
        registry_kwargs = {}

    async def main() -> int:
        server = ScanServer(
            spec,
            host=args.host,
            port=args.port,
            workers=args.workers,
            idle_timeout=args.idle_timeout,
            max_frame=args.max_frame,
            queue_depth=args.queue_depth,
            admin_port=args.admin_port,
            **registry_kwargs,
        )
        await server.start()
        host, port = server.address
        mode = (
            f"{args.workers}-worker service pool"
            if args.workers
            else "in-process sessions"
        )
        print(f"repro scan server listening on {host}:{port} ({mode})",
              flush=True)
        if args.admin_port is not None:
            ahost, aport = server.admin_address
            print(f"admin endpoint on http://{ahost}:{aport}/metrics",
                  flush=True)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(
                signum,
                lambda: asyncio.ensure_future(server.stop(drain=True)),
            )
        await server.serve_forever()
        print("server drained and stopped", flush=True)
        return 0

    return asyncio.run(main())


def _cmd_registry(args: argparse.Namespace) -> int:
    import json

    from repro.service.registry import Registry

    registry = Registry(args.store)
    if args.registry_cmd == "publish":
        grammar = _load_grammar(args.source)
        ref = registry.publish(args.name, grammar)
        print(ref)
        return 0
    if args.registry_cmd == "list":
        entries = registry.list()
        if args.json:
            print(json.dumps(entries, indent=2, sort_keys=True))
            return 0
        if not entries:
            print(f"no grammars in registry {registry.root}")
            return 0
        for entry in entries:
            print(f"{entry['name']}  (latest @{entry['latest']})")
            for vstr, info in entry["versions"].items():
                print(f"  @{vstr}  content {info['content']}  "
                      f"{info['objects']} object(s)")
        return 0
    if args.registry_cmd == "inspect":
        print(json.dumps(registry.inspect(args.ref), indent=2,
                         sort_keys=True))
        return 0
    if args.registry_cmd == "gc":
        removed = registry.gc()
        print(f"removed {removed} unreferenced object(s)")
        return 0
    if args.registry_cmd == "bench":
        return _registry_bench(args, registry)
    raise AssertionError(f"unknown registry command {args.registry_cmd}")


def _registry_bench(args: argparse.Namespace, registry) -> int:
    """Cold-start comparison: loading published tables vs recompiling
    the grammar from source (the whole point of ahead-of-time
    publication).  Every iteration parses/loads a *fresh* grammar
    object, so the per-grammar engine caches are cold each time."""
    import json
    import time

    from repro.core.capabilities import resolve_engine
    from repro.core.tagger import BehavioralTagger
    from repro.grammar.writer import write_yacc_grammar
    from repro.grammar.yacc_parser import parse_yacc_grammar
    from repro.service.registry import Registry

    grammar = _load_grammar(args.grammar)
    name = args.grammar if args.grammar in _BUILTIN_GRAMMARS else (
        grammar.name or "bench"
    )
    source = write_yacc_grammar(grammar)
    engine = resolve_engine("auto", streaming=True)
    ref = registry.publish(name, grammar)
    probe = b"<methodCall><methodName>a</methodName></methodCall>"

    recompile_s = min(
        _timed(
            lambda: BehavioralTagger(
                parse_yacc_grammar(source, name=name), engine=engine
            ).tag(probe),
            time,
        )
        for _ in range(args.repeat)
    )
    load_s = min(
        _timed(
            lambda: Registry(registry.root)
            .load(ref)
            .tagger(engine=engine)
            .tag(probe),
            time,
        )
        for _ in range(args.repeat)
    )
    speedup = recompile_s / load_s if load_s else None
    report = {
        "grammar": ref,
        "engine": engine,
        "recompile_s": round(recompile_s, 6),
        "load_s": round(load_s, 6),
        "speedup": None if speedup is None else round(speedup, 3),
    }
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(f"grammar   : {ref} (engine {engine})")
        print(f"recompile : {recompile_s * 1e3:8.2f} ms")
        print(f"load      : {load_s * 1e3:8.2f} ms")
        print(f"speedup   : x{speedup:.2f}" if speedup else "speedup  : -")
    if not args.no_record:
        _record_bench_entry("registry cold-start recompile_s", recompile_s)
        _record_bench_entry("registry cold-start load_s", load_s)
        _record_bench_entry("registry cold-start speedup", speedup)
    return 0


def _timed(fn, time) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def _record_bench_entry(key: str, value: float | None) -> None:
    """Merge one entry into the repo-root BENCH_throughput.json."""
    import json
    import pathlib

    from repro.bench.host import host_info

    path = pathlib.Path.cwd() / "BENCH_throughput.json"
    rates: dict = {}
    if path.exists():
        try:
            rates = json.loads(path.read_text(encoding="utf-8"))
        except ValueError:
            rates = {}
    rates[key] = None if value is None else round(value, 9)
    # Stamp the measuring host so cross-host numbers stay interpretable.
    rates.update(host_info())
    path.write_text(
        json.dumps(rates, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def _cmd_client_bench(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.server import run_load

    report = asyncio.run(
        run_load(
            args.host,
            args.port,
            flows=args.flows,
            messages=args.messages,
            chunk=args.chunk,
            concurrency=args.concurrency,
            seed=args.seed,
            verify=not args.no_verify,
        )
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(f"workload : {report['messages']} messages, "
              f"{report['flows']} flows, {report['bytes']} bytes "
              f"({report['concurrency']} connections, "
              f"{report['chunk']}-byte chunks)")
        print(f"rate     : {report['mbps']:8.2f} MB/s "
              f"({report['gbps']:.6f} Gbps)")
        latency = report["latency"]
        print(f"flow RTT : p50 {latency['p50_s'] * 1e3:.2f} ms, "
              f"p99 {latency['p99_s'] * 1e3:.2f} ms "
              f"(n={latency['count']})")
        if report["verified"] is not None:
            print(f"verified : {report['verified']} "
                  "(byte-for-byte vs in-process routing)")
        if report["failures"]:
            print(f"failures : {report['failures'][:3]}")
    if not args.no_record:
        _record_bench_entry("server round-trip", report["gbps"])
    ok = not report["failures"] and report["verified"] is not False
    return 0 if ok else 1


def _cmd_cluster(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.server import ScanProxy

    async def main() -> int:
        proxy = ScanProxy(
            args.backend,
            host=args.host,
            port=args.port,
            admin_port=args.admin_port,
            pool_size=args.pool_size,
            health_interval=args.health_interval,
            idle_timeout=args.idle_timeout,
            max_frame=args.max_frame,
        )
        await proxy.start()
        host, port = proxy.address
        print(f"repro cluster proxy on {host}:{port} over "
              f"{len(args.backend)} backend(s)", flush=True)
        if args.admin_port is not None:
            ahost, aport = proxy.admin_address
            print(f"admin endpoint on http://{ahost}:{aport}/metrics",
                  flush=True)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(
                signum,
                lambda: asyncio.ensure_future(proxy.stop(drain=True)),
            )
        await proxy.serve_forever()
        print("proxy drained and stopped", flush=True)
        return 0

    return asyncio.run(main())


def _spawn_cluster_backend(args, env):
    """Launch one ``repro structgen serve`` child on an ephemeral port
    and return ``(process, (host, port))`` once its banner appears."""
    import re
    import subprocess
    import sys
    import time

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "structgen", "serve", "xmlrpc",
         "--port", "0",
         "--vocab-size", str(args.vocab_size),
         "--vocab-seed", str(args.vocab_seed),
         "--engine", args.engine],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    banner = re.compile(r"structgen server on ([0-9.]+):([0-9]+)")
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = banner.search(line)
        if match:
            return proc, (match.group(1), int(match.group(2)))
    proc.kill()
    raise RuntimeError("cluster backend failed to start within 30s")


def _cmd_cluster_bench(args: argparse.Namespace) -> int:
    import asyncio
    import json
    import os
    import pathlib
    import subprocess

    import repro
    from repro.apps.structgen import build_mask_table, synthetic_vocab
    from repro.grammar.examples import xmlrpc
    from repro.server import ScanProxy, run_beam_load, run_load

    vocab = synthetic_vocab(size=args.vocab_size, seed=args.vocab_seed)
    table = build_mask_table(xmlrpc(), vocab)

    # Children must import the same package tree, installed or not.
    pkg_root = str(pathlib.Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (pkg_root, env.get("PYTHONPATH")) if p
    )

    async def measure(n: int) -> dict:
        procs, addrs = [], []
        try:
            for _ in range(n):
                proc, addr = _spawn_cluster_backend(args, env)
                procs.append(proc)
                addrs.append(addr)
            proxy = ScanProxy(addrs, port=0)
            await proxy.start()
            host, port = proxy.address
            try:
                scan = await run_load(
                    host, port,
                    flows=args.flows,
                    messages=args.messages,
                    chunk=args.chunk,
                    concurrency=args.concurrency,
                    verify=False,
                )
                beam = await run_beam_load(
                    host, port, table,
                    beams=args.beams,
                    width=args.width,
                    steps=args.steps,
                    max_width=args.width * 2,
                    concurrency=args.concurrency,
                    verify=False,
                )
            finally:
                await proxy.stop(drain=False)
        finally:
            for proc in procs:
                proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    proc.kill()
        failures = scan["failures"] + beam["failures"]
        if failures:
            raise RuntimeError(
                f"cluster bench failed at {n} backend(s): {failures[:3]}"
            )
        return {
            "backends": n,
            "scan_mbps": scan["mbps"],
            "scan_bytes": scan["bytes"],
            "beam_masks_per_s": beam["masks_per_s"],
            "beam_masks": beam["masks"],
        }

    results: dict[int, dict] = {}
    for n in args.scale:
        results[n] = asyncio.run(measure(n))
        print(f"{n} backend(s): "
              f"scan {results[n]['scan_mbps']:8.2f} MB/s, "
              f"beam {results[n]['beam_masks_per_s']:10.0f} masks/s",
              flush=True)

    cpus = os.cpu_count() or 1
    # Scaling ratios on a host without enough CPUs for real
    # parallelism are pseudo-measurements: record null.
    gated = cpus >= 4
    base = results.get(1)
    speedups: dict[int, dict] = {}
    for n, entry in results.items():
        if n == 1 or base is None:
            continue
        speedups[n] = {
            "scan": entry["scan_mbps"] / base["scan_mbps"],
            "beam": entry["beam_masks_per_s"] / base["beam_masks_per_s"],
        }

    if args.json:
        print(json.dumps(
            {
                "cpus": cpus,
                "gated": gated,
                "results": {str(n): r for n, r in results.items()},
                "speedups": {
                    str(n): s for n, s in speedups.items()
                } if gated else None,
            },
            indent=2, sort_keys=True,
        ))
    else:
        for n, ratios in sorted(speedups.items()):
            note = "" if gated else f" (ungated: only {cpus} CPUs)"
            print(f"{n}-backend speedup: scan x{ratios['scan']:.2f}, "
                  f"beam x{ratios['beam']:.2f}{note}")

    if not args.no_record:
        for n, entry in sorted(results.items()):
            _record_bench_entry(f"cluster scan {n}-backend MB/s",
                                entry["scan_mbps"])
            _record_bench_entry(f"cluster beam {n}-backend masks/sec",
                                entry["beam_masks_per_s"])
        for n, ratios in sorted(speedups.items()):
            _record_bench_entry(
                f"cluster scan speedup {n}-backend",
                ratios["scan"] if gated else None,
            )
            _record_bench_entry(
                f"cluster beam speedup {n}-backend",
                ratios["beam"] if gated else None,
            )

    if args.min_speedup is not None and gated and 2 in speedups:
        best = max(speedups[2].values())
        if best < args.min_speedup:
            print(f"FAIL: best 2-backend speedup x{best:.2f} "
                  f"< required x{args.min_speedup:.2f}")
            return 1
        print(f"gate ok: best 2-backend speedup x{best:.2f} "
              f">= x{args.min_speedup:.2f}")
    elif args.min_speedup is not None and not gated:
        print(f"gate skipped: only {cpus} CPUs (need >= 4)")
    return 0


def _structgen_vocab(args: argparse.Namespace):
    from repro.apps.structgen import Vocabulary, synthetic_vocab

    if getattr(args, "tokenizer_json", None):
        return Vocabulary.from_tokenizer_json(args.tokenizer_json)
    if getattr(args, "vocab", None):
        return Vocabulary.from_file(args.vocab)
    return synthetic_vocab(size=args.vocab_size, seed=args.vocab_seed)


def _cmd_structgen(args: argparse.Namespace) -> int:
    if args.structgen_cmd == "precompute":
        return _structgen_precompute(args)
    if args.structgen_cmd == "serve":
        return _structgen_serve(args)
    if args.structgen_cmd == "bench":
        return _structgen_bench(args)
    raise AssertionError(
        f"unknown structgen command {args.structgen_cmd}"
    )


def _structgen_precompute(args: argparse.Namespace) -> int:
    import json

    from repro.service.registry import RegistryError, Registry, parse_ref

    registry = Registry(args.store)
    vocab = _structgen_vocab(args)
    try:
        summary = registry.publish_masks(args.ref, vocab)
    except RegistryError:
        # Unknown ref but a builtin grammar name: publish it first so
        # `precompute xmlrpc` works against an empty store.
        name, _version = parse_ref(args.ref)
        builder = _BUILTIN_GRAMMARS.get(name)
        if builder is None:
            raise
        registry.publish(name, builder())
        summary = registry.publish_masks(args.ref, vocab)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        built = "rebuilt" if summary.get("rebuilt") else "cached"
        print(f"masks    : {summary['ref']} × vocab "
              f"{summary['vocab_hash'][:16]} ({built})")
        print(f"tokens   : {summary['vocab_size']} "
              f"({summary['ci']} precomputed, "
              f"{summary['cd']} context-dependent)")
        print(f"states   : {summary['states']}, "
              f"{summary['bytes']} bytes packed")
        if summary.get("build_ms") is not None:
            print(f"build    : {summary['build_ms']:.1f} ms")
        print(f"key      : {summary['key']}")
    return 0


def _structgen_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.server import ScanServer
    from repro.service import RouterSpec
    from repro.service.registry import Registry

    vocab = _structgen_vocab(args)
    if args.store is not None:
        # Registry mode: precompute (deduped) then let the server load
        # mask tables lazily from the store — hot-swap aware.
        registry = Registry(args.store)
        summary = registry.publish_masks(args.ref, vocab)
        spec = RouterSpec(grammar=None, engine=args.engine)
        server_kwargs = {"registry": args.store, "grammar": args.ref}
        banner = (f"registry masks {summary['ref']} × "
                  f"{summary['vocab_hash'][:16]}")
    else:
        from repro.apps.structgen import build_mask_table

        grammar = _load_grammar(args.ref)
        table = build_mask_table(grammar, vocab)
        spec = RouterSpec(grammar=grammar, engine=args.engine)
        server_kwargs = {"mask_tables": [table]}
        banner = (f"in-memory masks {args.ref} × "
                  f"{table.vocab_hash[:16]}")

    async def main() -> int:
        server = ScanServer(
            spec,
            host=args.host,
            port=args.port,
            idle_timeout=args.idle_timeout,
            max_frame=args.max_frame,
            admin_port=args.admin_port,
            **server_kwargs,
        )
        await server.start()
        host, port = server.address
        print(f"repro structgen server on {host}:{port} ({banner})",
              flush=True)
        if args.admin_port is not None:
            ahost, aport = server.admin_address
            print(f"admin endpoint on http://{ahost}:{aport}/metrics",
                  flush=True)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(
                signum,
                lambda: asyncio.ensure_future(server.stop(drain=True)),
            )
        await server.serve_forever()
        print("server drained and stopped", flush=True)
        return 0

    return asyncio.run(main())


def _structgen_bench(args: argparse.Namespace) -> int:
    import json

    vocab = _structgen_vocab(args)
    if args.remote:
        return _structgen_bench_remote(args, vocab)
    if args.beam:
        return _structgen_bench_beam(args, vocab)
    from repro.apps.structgen import run_mask_bench

    grammar = _load_grammar(args.grammar)
    report = run_mask_bench(
        grammar,
        vocab=vocab,
        steps=args.steps,
        naive_steps=args.naive_steps,
        reps=args.repeat,
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(f"grammar  : {report['grammar']} "
              f"({report['states']} states)")
        print(f"vocab    : {report['vocab_size']} tokens "
              f"({report['ci']} precomputed, "
              f"{report['cd']} context-dependent; "
              f"build {report['build_ms']:.1f} ms)")
        print(f"masks    : {report['masks_per_s']:12.0f} masks/s "
              f"(precomputed path)")
        print(f"naive    : {report['naive_masks_per_s']:12.0f} masks/s "
              f"(per-token rescan)")
        print(f"speedup  : x{report['speedup']:.1f}")
        print(f"per mask : {report['ci_tokens_per_mask']:.1f} "
              f"precomputed-hit tokens, "
              f"{report['cd_checks_per_mask']:.2f} "
              f"context-dependent checks")
    if not args.no_record:
        _record_bench_entry("structgen masks/sec",
                            report["masks_per_s"])
        _record_bench_entry("structgen naive masks/sec",
                            report["naive_masks_per_s"])
        _record_bench_entry("structgen speedup", report["speedup"])
    return 0


def _structgen_bench_beam(args: argparse.Namespace, vocab) -> int:
    """Beam bench: the batched beam engine vs N independent sessions
    replaying the identical schedule, plus the delta-encoding wire
    saving."""
    import json

    from repro.apps.structgen import run_beam_bench

    grammar = _load_grammar(args.grammar)
    report = run_beam_bench(
        grammar,
        vocab=vocab,
        width=args.width,
        steps=args.beam_steps,
        reps=args.repeat,
        path=args.beam_path,
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(f"grammar  : {report['grammar']} "
              f"({report['states']} states)")
        print(f"beam     : width {report['width']}, "
              f"{report['steps']} steps, "
              f"{report['path']} path")
        print(f"batched  : {report['beam_masks_per_s']:12.0f} masks/s "
              f"({report['beam_step_us']:.1f} us/step)")
        print(f"sessions : {report['sessions_masks_per_s']:12.0f} "
              f"masks/s ({report['sessions_step_us']:.1f} us/step)")
        print(f"speedup  : x{report['speedup']:.2f}")
        print(f"wire     : delta {report['wire_delta_bytes']} B vs "
              f"full {report['wire_full_bytes']} B "
              f"(ratio {report['wire_delta_ratio']:.3f})")
        deltas = report.get("deltas")
        if deltas:
            print(f"deltas   : {deltas['rows_deltified']} rows, "
                  f"mean popcount {deltas['mean_popcount']:.1f}")
    if not args.no_record:
        _record_bench_entry("structgen beam masks/sec",
                            report["beam_masks_per_s"])
        _record_bench_entry("structgen beam sessions masks/sec",
                            report["sessions_masks_per_s"])
        _record_bench_entry("structgen beam speedup",
                            report["speedup"])
        _record_bench_entry("structgen beam wire delta ratio",
                            report["wire_delta_ratio"])
    return 0


def _structgen_bench_remote(args: argparse.Namespace, vocab) -> int:
    """Round-trip bench: mask flows against a live server, every reply
    checked byte-for-byte against an in-process session on the same
    (deterministically rebuilt) table."""
    import asyncio
    import json

    from repro.apps.structgen import build_mask_table
    from repro.server import run_mask_load

    grammar = _load_grammar(args.grammar)
    table = build_mask_table(grammar, vocab)
    report = asyncio.run(
        run_mask_load(
            args.host,
            args.port,
            table,
            sessions=args.sessions,
            steps=args.steps,
            concurrency=args.concurrency,
        )
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(f"sessions : {report['sessions']} × {report['steps']} "
              f"steps ({report['advances']} advances)")
        print(f"rate     : {report['masks_per_s']:10.0f} masks/s "
              "over the wire")
        latency = report["latency"]
        if latency.get("count"):
            print(f"mask RTT : p50 {latency['p50_s'] * 1e3:.2f} ms, "
                  f"p99 {latency['p99_s'] * 1e3:.2f} ms")
        print(f"verified : {report['verified']} "
              "(byte-for-byte vs in-process session)")
        if report["failures"]:
            print(f"failures : {report['failures'][:3]}")
        if report["mismatches"]:
            print(f"mismatch : {report['mismatches'][:3]}")
    if not args.no_record:
        _record_bench_entry("structgen remote masks/sec",
                            report["masks_per_s"])
    return 0 if report["verified"] else 1


def _cmd_capabilities(args: argparse.Namespace) -> int:
    import json

    from repro.core.capabilities import (
        describe_capabilities,
        engine_capabilities,
    )

    if args.json:
        print(json.dumps(
            engine_capabilities(probe=args.probe), indent=2, sort_keys=True
        ))
    else:
        print(describe_capabilities(probe=args.probe))
    return 0


def _cmd_table1(_args: argparse.Namespace) -> int:
    from repro.bench.table1 import format_table1, run_table1

    print(format_table1(run_table1()))
    return 0


def _cmd_figure15(_args: argparse.Namespace) -> int:
    from repro.bench.figure15 import ascii_plot, format_figure15, run_figure15

    points = run_figure15()
    print(format_figure15(points))
    print(ascii_plot(points))
    return 0


def _cmd_ablation(_args: argparse.Namespace) -> int:
    from repro.bench.ablation import format_ablation, run_ablation

    print(format_ablation(run_ablation()))
    return 0


# ----------------------------------------------------------------------
def _version_string() -> str:
    from repro import __version__
    from repro.core.capabilities import capability_summary

    return f"repro {__version__} ({capability_summary()})"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CFG token tagger reproduction (Cho/Moscola/Lockwood)",
    )

    class _Version(argparse.Action):
        # Lazy --version: the capability summary imports engine modules,
        # so compose it only when actually asked for.
        def __call__(self, parser, namespace, values, option_string=None):
            print(_version_string())
            parser.exit()

    parser.add_argument("--version", action=_Version, nargs=0,
                        help="print version and engine capabilities")
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="describe a grammar")
    info.add_argument("grammar", help="grammar file or builtin name "
                      f"({', '.join(_BUILTIN_GRAMMARS)})")
    info.set_defaults(func=_cmd_info)

    tag = sub.add_parser("tag", help="tag a byte stream")
    tag.add_argument("grammar")
    tag.add_argument("input", nargs="?", help="input file (default stdin)")
    tag.add_argument("--gate-level", action="store_true",
                     help="simulate the generated netlist cycle by cycle")
    tag.add_argument("--stack", action="store_true",
                     help="strict PDA mode (§5.2 stack extension)")
    tag.add_argument("--stream", action="store_true",
                     help="with --stack: accept back-to-back sentences")
    from repro.core.capabilities import ENGINE_CHOICES

    tag.add_argument("--engine",
                     choices=ENGINE_CHOICES,
                     default="compiled",
                     help="software scan engine (default: compiled "
                     "tables; vector = wide-datapath NumPy engine; "
                     "native = C inner loop over the dense tables; "
                     "auto = best available)")
    tag.set_defaults(func=_cmd_tag)

    generate = sub.add_parser("generate", help="compile grammar to hardware")
    generate.add_argument("grammar")
    generate.add_argument("--vhdl", metavar="FILE", help="emit VHDL")
    generate.add_argument("--device", action="append",
                          choices=sorted(DEVICES),
                          help="implementation report device(s)")
    generate.add_argument("--report", action="store_true",
                          help="print area/timing reports")
    generate.set_defaults(func=_cmd_generate)

    route = sub.add_parser("route", help="XML-RPC router demo (§4)")
    route.add_argument("--messages", type=int, default=20)
    route.add_argument("--seed", type=int, default=2006)
    route.add_argument("--adversarial", type=float, default=0.0)
    route.add_argument("--naive", action="store_true",
                       help="use the context-free baseline router")
    route.add_argument("--show", type=int, default=5,
                       help="messages to print")
    route.set_defaults(func=_cmd_route)

    serve = sub.add_parser(
        "serve-bench",
        help="benchmark the sharded multi-process scan service",
    )
    serve.add_argument("--messages", type=int, default=400,
                       help="total messages across all flows")
    serve.add_argument("--flows", type=int, default=8)
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument("--chunk", type=int, default=4096,
                       help="submission chunk size in bytes")
    serve.add_argument("--queue-depth", type=int, default=64)
    serve.add_argument("--seed", type=int, default=2006)
    serve.add_argument("--engine",
                       choices=("auto", "compiled", "vector", "native"),
                       default="compiled",
                       help="scan engine the workers run (streaming "
                       "needs a compiled-family engine; auto = best "
                       "available)")
    serve.add_argument("--json", action="store_true",
                       help="emit the report (plus service stats) as JSON")
    serve.set_defaults(func=_cmd_serve_bench)

    server = sub.add_parser(
        "serve",
        help="run the asyncio TCP scan server (framed wire protocol)",
    )
    server.add_argument("--host", default="127.0.0.1")
    server.add_argument("--port", type=int, default=9431)
    server.add_argument("--admin-port", type=int, default=None,
                        help="plaintext /metrics + /healthz listener")
    server.add_argument("--workers", type=int, default=0,
                        help="scan-service worker processes "
                        "(0 = in-process sessions)")
    server.add_argument("--grammar", default="xmlrpc",
                        help="router grammar (builtin name or file)")
    server.add_argument("--idle-timeout", type=float, default=30.0,
                        help="seconds before an idle connection is cut")
    server.add_argument("--max-frame", type=int, default=1 << 20,
                        help="largest accepted wire frame in bytes")
    server.add_argument("--queue-depth", type=int, default=64,
                        help="per-worker bounded queue depth")
    server.add_argument("--engine",
                        choices=("auto", "compiled", "vector", "native"),
                        default="compiled",
                        help="scan engine for sessions and workers "
                        "(streaming needs a compiled-family engine; "
                        "auto = best available)")
    server.add_argument("--registry", metavar="STORE", default=None,
                        help="grammar-registry store directory; makes "
                        "--grammar a registry ref (name[@version]) and "
                        "enables the admin POST /swap endpoint")
    server.set_defaults(func=_cmd_serve)

    registry = sub.add_parser(
        "registry",
        help="manage the ahead-of-time compiled grammar registry",
    )
    registry.add_argument("--store", default=None,
                          help="store directory (default: "
                          "$REPRO_REGISTRY or ~/.cache/repro-registry)")
    regsub = registry.add_subparsers(dest="registry_cmd", required=True)

    reg_publish = regsub.add_parser(
        "publish", help="compile a grammar and store it under a name"
    )
    reg_publish.add_argument("name", help="grammar name to publish as")
    reg_publish.add_argument("source", help="grammar file or builtin name "
                             f"({', '.join(_BUILTIN_GRAMMARS)})")

    reg_list = regsub.add_parser(
        "list", help="list registered grammars and versions"
    )
    reg_list.add_argument("--json", action="store_true")

    reg_inspect = regsub.add_parser(
        "inspect", help="show one version's manifest entry and objects"
    )
    reg_inspect.add_argument("ref", help="name or name@version")

    regsub.add_parser("gc", help="delete unreferenced artifact objects")

    reg_bench = regsub.add_parser(
        "bench",
        help="cold-start benchmark: registry load vs recompile",
    )
    reg_bench.add_argument("--grammar", default="xmlrpc",
                           help="grammar file or builtin name")
    reg_bench.add_argument("--repeat", type=int, default=3,
                           help="iterations (best-of)")
    reg_bench.add_argument("--json", action="store_true")
    reg_bench.add_argument("--no-record", action="store_true",
                           help="do not update BENCH_throughput.json")
    registry.set_defaults(func=_cmd_registry)

    bench = sub.add_parser(
        "client-bench",
        help="closed-loop load generator against a running server",
    )
    bench.add_argument("--host", default="127.0.0.1")
    bench.add_argument("--port", type=int, default=9431)
    bench.add_argument("--messages", type=int, default=400,
                       help="total messages across all flows")
    bench.add_argument("--flows", type=int, default=8)
    bench.add_argument("--chunk", type=int, default=1024,
                       help="DATA frame payload size in bytes")
    bench.add_argument("--concurrency", type=int, default=4,
                       help="concurrent client connections")
    bench.add_argument("--seed", type=int, default=2006)
    bench.add_argument("--no-verify", action="store_true",
                       help="skip the byte-for-byte differential check")
    bench.add_argument("--no-record", action="store_true",
                       help="do not update BENCH_throughput.json")
    bench.add_argument("--json", action="store_true")
    bench.set_defaults(func=_cmd_client_bench)

    cluster = sub.add_parser(
        "cluster",
        help="consistent-hash proxy over N scan-server backends",
    )
    cluster.add_argument("--backend", action="append", required=True,
                         metavar="HOST:PORT[:ADMIN]",
                         help="backend data address, repeatable; the "
                         "optional third field is the backend's admin "
                         "port (enables /stats + /metrics aggregation)")
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument("--port", type=int, default=9440)
    cluster.add_argument("--admin-port", type=int, default=None,
                         help="aggregated /metrics + /healthz + /stats "
                         "listener")
    cluster.add_argument("--pool-size", type=int, default=2,
                         help="client connections pooled per backend")
    cluster.add_argument("--health-interval", type=float, default=0.5,
                         help="seconds between backend health probes")
    cluster.add_argument("--idle-timeout", type=float, default=30.0,
                         help="seconds before an idle client "
                         "connection is cut")
    cluster.add_argument("--max-frame", type=int, default=1 << 20)
    cluster.set_defaults(func=_cmd_cluster)

    cbench = sub.add_parser(
        "cluster-bench",
        help="scaling bench: proxy over 1/2/4 local backend processes",
    )
    cbench.add_argument("--scale", type=int, nargs="+", default=[1, 2, 4],
                        help="backend counts to measure")
    cbench.add_argument("--flows", type=int, default=16,
                        help="scan flows per measurement")
    cbench.add_argument("--messages", type=int, default=480,
                        help="total scan messages across flows")
    cbench.add_argument("--chunk", type=int, default=4096)
    cbench.add_argument("--concurrency", type=int, default=8,
                        help="driver client connections")
    cbench.add_argument("--beams", type=int, default=8,
                        help="beam flows per measurement")
    cbench.add_argument("--width", type=int, default=16,
                        help="initial beam width")
    cbench.add_argument("--steps", type=int, default=150,
                        help="beam decode steps per flow")
    cbench.add_argument("--vocab-size", type=int, default=2048)
    cbench.add_argument("--vocab-seed", type=int, default=2006)
    cbench.add_argument("--engine",
                        choices=("auto", "compiled", "vector", "native"),
                        default="compiled",
                        help="scan engine the backends run")
    cbench.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless the best 2-backend ratio "
                        "reaches this (skipped below 4 CPUs)")
    cbench.add_argument("--json", action="store_true")
    cbench.add_argument("--no-record", action="store_true",
                        help="do not update BENCH_throughput.json")
    cbench.set_defaults(func=_cmd_cluster_bench)

    structgen = sub.add_parser(
        "structgen",
        help="constrained decoding: grammar → per-state token masks",
    )
    sgsub = structgen.add_subparsers(dest="structgen_cmd", required=True)

    def _sg_vocab_args(p):
        p.add_argument("--vocab", metavar="FILE", default=None,
                       help="vocabulary JSON (default: synthetic)")
        p.add_argument("--tokenizer-json", metavar="FILE", default=None,
                       help="import a HuggingFace tokenizer.json "
                       "(BPE/byte-level) as the vocabulary")
        p.add_argument("--vocab-size", type=int, default=2048,
                       help="synthetic vocabulary size")
        p.add_argument("--vocab-seed", type=int, default=2006,
                       help="synthetic vocabulary seed")

    sg_pre = sgsub.add_parser(
        "precompute",
        help="build and publish the mask artifact for a registry ref",
    )
    sg_pre.add_argument("ref", help="registry ref (name[@version]); "
                        "builtin grammar names auto-publish")
    sg_pre.add_argument("--store", default=None,
                        help="registry store directory (default: "
                        "$REPRO_REGISTRY or ~/.cache/repro-registry)")
    _sg_vocab_args(sg_pre)
    sg_pre.add_argument("--json", action="store_true")

    sg_serve = sgsub.add_parser(
        "serve",
        help="serve mask flows (OPEN_MASK/ADVANCE) over the wire "
        "protocol",
    )
    sg_serve.add_argument("ref", nargs="?", default="xmlrpc",
                          help="registry ref (with --store) or grammar "
                          "file/builtin name")
    sg_serve.add_argument("--store", default=None,
                          help="serve registry-published masks (enables "
                          "hot swap) instead of an in-memory table")
    _sg_vocab_args(sg_serve)
    sg_serve.add_argument("--host", default="127.0.0.1")
    sg_serve.add_argument("--port", type=int, default=9431)
    sg_serve.add_argument("--admin-port", type=int, default=None)
    sg_serve.add_argument("--idle-timeout", type=float, default=30.0)
    sg_serve.add_argument("--max-frame", type=int, default=1 << 20)
    sg_serve.add_argument("--engine",
                          choices=("auto", "compiled", "vector", "native"),
                          default="compiled")

    sg_bench = sgsub.add_parser(
        "bench",
        help="masks/sec benchmark (precomputed vs naive split, or "
        "--remote round trips)",
    )
    sg_bench.add_argument("--grammar", default="xmlrpc",
                          help="grammar file or builtin name")
    _sg_vocab_args(sg_bench)
    sg_bench.add_argument("--steps", type=int, default=400,
                          help="decode steps per measurement")
    sg_bench.add_argument("--naive-steps", type=int, default=40,
                          help="decode steps for the naive baseline")
    sg_bench.add_argument("--repeat", type=int, default=3,
                          help="measurement repetitions (best-of)")
    sg_bench.add_argument("--remote", action="store_true",
                          help="drive mask flows against a running "
                          "server and verify byte-for-byte")
    sg_bench.add_argument("--beam", action="store_true",
                          help="beam bench: batched beam-of-N "
                          "advance+mask vs N independent sessions")
    sg_bench.add_argument("--width", type=int, default=32,
                          help="with --beam: beam width")
    sg_bench.add_argument("--beam-steps", type=int, default=200,
                          help="with --beam: decode steps per "
                          "measurement")
    sg_bench.add_argument("--beam-path",
                          choices=("auto", "native", "numpy", "python"),
                          default="auto",
                          help="with --beam: force a compute path")
    sg_bench.add_argument("--host", default="127.0.0.1")
    sg_bench.add_argument("--port", type=int, default=9431)
    sg_bench.add_argument("--sessions", type=int, default=4,
                          help="with --remote: decode sessions to run")
    sg_bench.add_argument("--concurrency", type=int, default=2,
                          help="with --remote: client connections")
    sg_bench.add_argument("--json", action="store_true")
    sg_bench.add_argument("--no-record", action="store_true",
                          help="do not update BENCH_throughput.json")
    structgen.set_defaults(func=_cmd_structgen)

    caps = sub.add_parser(
        "capabilities",
        help="report per-engine runtime capabilities (numpy, native "
        "kernel, compiler, disable-env flags)",
    )
    caps.add_argument("--probe", action="store_true",
                      help="attempt a just-in-time native kernel build "
                      "instead of only reporting what is loaded")
    caps.add_argument("--json", action="store_true")
    caps.set_defaults(func=_cmd_capabilities)

    sub.add_parser("table1", help="reproduce Table 1").set_defaults(
        func=_cmd_table1
    )
    sub.add_parser("figure15", help="reproduce Figure 15").set_defaults(
        func=_cmd_figure15
    )
    sub.add_parser("ablation", help="design-choice ablations").set_defaults(
        func=_cmd_ablation
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
