"""Benchmark harness: workload generation and experiment runners.

One module per paper artifact:

* :mod:`repro.bench.scaling` — the §4.3 grammar-duplication workload;
* :mod:`repro.bench.table1` — Table 1 (device utilization rows);
* :mod:`repro.bench.figure15` — Fig. 15 (frequency vs pattern bytes);
* :mod:`repro.bench.falsepos` — the §1 false-positive motivation;
* :mod:`repro.bench.ablation` — design-choice ablations (§3.4, §5.2).
"""

from repro.bench.scaling import scaled_xmlrpc
from repro.bench.table1 import TABLE1_PAPER, run_table1
from repro.bench.figure15 import run_figure15

__all__ = ["TABLE1_PAPER", "run_figure15", "run_table1", "scaled_xmlrpc"]
