"""Design-choice ablations (the paper's §3 decisions and §5.2 ideas).

Each ablation regenerates the XML-RPC tagger with one option flipped
and reports the area/frequency consequence on the Virtex 4 model:

* ``encoder: or-tree vs case-chain`` — §3.4's warning that a CASE
  encoder "is almost always the critical path";
* ``context duplication off`` — §3.2's token duplication, traded for
  tag precision;
* ``nibble decoder sharing off`` — the literal Fig. 4 per-character
  decoder (area cost of no sharing);
* ``decoder replicas`` — §5.2's "replicating decoders and balancing
  the fanout across them", run on a large grammar where routing
  dominates;
* ``longest-match look-ahead off`` — Fig. 7 removed: ``a+`` fires at
  every cycle of a run (counted behaviorally);
* ``priority encoder`` — the equation-5 nested-index scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.scaling import scale_point_grammar
from repro.core.generator import TaggerGenerator, TaggerOptions
from repro.core.decoder import DecoderOptions
from repro.core.tagger import BehavioralTagger
from repro.core.tokenizer import TokenizerTemplateOptions
from repro.core.wiring import WiringOptions
from repro.fpga.device import get_device
from repro.fpga.report import implement
from repro.grammar.examples import xmlrpc


@dataclass
class AblationRow:
    """One ablation outcome."""

    name: str
    n_luts: int
    frequency_mhz: float
    note: str = ""

    def format(self) -> str:
        return (
            f"{self.name:<28} {self.n_luts:>6} LUTs "
            f"{self.frequency_mhz:>6.0f} MHz  {self.note}"
        )


def _implement(options: TaggerOptions, copies: int = 1) -> tuple[int, float]:
    grammar = scale_point_grammar(copies) if copies > 1 else xmlrpc()
    circuit = TaggerGenerator(options).generate(grammar)
    report = implement(circuit, get_device("virtex4-lx200"))
    return report.n_luts, report.frequency_mhz


def run_ablation() -> list[AblationRow]:
    """Run the full ablation matrix; returns printable rows."""
    rows: list[AblationRow] = []

    base = TaggerOptions()
    luts, mhz = _implement(base)
    rows.append(AblationRow("baseline (or-tree, dup, nib)", luts, mhz))

    luts, mhz = _implement(TaggerOptions(encoder_style="case"))
    rows.append(
        AblationRow(
            "case-chain encoder", luts, mhz,
            "§3.4: unpipelined CASE chain becomes the critical path",
        )
    )

    luts, mhz = _implement(TaggerOptions(encoder_style="priority"))
    rows.append(
        AblationRow(
            "priority (eq. 5) encoder", luts, mhz,
            "nested indices; simultaneous detects OR to highest priority",
        )
    )

    luts, mhz = _implement(
        TaggerOptions(wiring=WiringOptions(context_duplication=False))
    )
    rows.append(
        AblationRow(
            "no context duplication", luts, mhz,
            "one tokenizer per terminal; tags lose their context",
        )
    )

    luts, mhz = _implement(
        TaggerOptions(decoder=DecoderOptions(nibble_sharing=False))
    )
    rows.append(
        AblationRow(
            "per-char Fig. 4 decoders", luts, mhz,
            "no shared nibble decode",
        )
    )

    for replicas in (1, 2, 4):
        luts, mhz = _implement(
            TaggerOptions(decoder=DecoderOptions(replicas=replicas)),
            copies=6,
        )
        rows.append(
            AblationRow(
                f"2100B grammar, {replicas} replica(s)", luts, mhz,
                "§5.2 fanout balancing" if replicas > 1 else "",
            )
        )

    return rows


def count_repeat_detections(run_length: int = 8) -> tuple[int, int]:
    """Fig. 7 behavioral ablation: detections of ``a+`` over an 'a'-run.

    Returns (with look-ahead, without): the paper predicts 1 vs one
    per cycle ("the logic would indicate detection at every cycle").
    """
    from repro.grammar.yacc_parser import parse_yacc_grammar

    text = """
    RUN a+
    %%
    s: RUN;
    """
    grammar = parse_yacc_grammar(text, name="a-plus")
    data = b"a" * run_length

    with_la = BehavioralTagger(grammar).tag(data)
    without = BehavioralTagger(
        grammar,
        TaggerOptions(
            wiring=WiringOptions(
                tokenizer=TokenizerTemplateOptions(longest_match=False)
            )
        ),
    ).tag(data)
    return len(with_la), len(without)


def format_ablation(rows: list[AblationRow]) -> str:
    lines = ["Ablations (Virtex 4 LX200 model)"]
    lines.extend(row.format() for row in rows)
    with_la, without = count_repeat_detections()
    lines.append(
        f"Fig. 7 look-ahead: a+ over 'aaaaaaaa' fires {with_la}x with "
        f"look-ahead, {without}x without"
    )
    return "\n".join(lines)
