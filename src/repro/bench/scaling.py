"""Grammar-scaling workload (the paper's §4.3).

"In order to test the scalability of the architecture, larger XML
grammars were created by repeatedly duplicating the 300 byte grammar.
The larger grammars contained up to 400 tokens and up to 3000 bytes of
pattern data."

:func:`scaled_xmlrpc` builds a grammar containing ``copies`` renamed
replicas of the Fig. 14 XML-RPC grammar under a fresh start symbol
(``message: methodCall_1 | methodCall_2 | …``). Tag literals gain a
copy suffix before the closing ``>`` (``<methodCall>`` →
``<methodCall_3>``), named tokens gain a name suffix, and
single-character punctuation literals stay shared — so the decoders
are shared across copies exactly as a vendor synthesis run would share
them, which is what drives the falling LUTs-per-byte curve of Fig. 15.
"""

from __future__ import annotations

from functools import lru_cache

from repro.grammar.cfg import Grammar
from repro.grammar.examples import XMLRPC_GRAMMAR_TEXT
from repro.grammar.lexspec import LexSpec
from repro.grammar.symbols import NonTerminal, Terminal
from repro.grammar.yacc_parser import parse_yacc_grammar


def _rename_literal(text: str, copy: int) -> str:
    """Suffix a tag literal; leave 1-char punctuation shared."""
    if len(text) <= 2:
        return text
    if text.endswith(">"):
        return f"{text[:-1]}_{copy}>"
    return f"{text}_{copy}"


def scaled_xmlrpc(copies: int, base_text: str | None = None) -> Grammar:
    """Union of ``copies`` renamed XML-RPC grammars.

    ``copies == 1`` returns the unmodified Fig. 14 grammar, matching
    the paper's smallest (300-byte) design point.

    >>> scaled_xmlrpc(2).lexspec.total_pattern_bytes() > 2 * 280
    True
    """
    if copies < 1:
        raise ValueError("need at least one copy")
    base = parse_yacc_grammar(
        base_text or XMLRPC_GRAMMAR_TEXT, name="xml-rpc-base"
    )
    if copies == 1:
        base.name = "xml-rpc-x1"
        return base

    lexspec = LexSpec(delimiters=base.lexspec.delimiters)
    grammar = Grammar(f"xml-rpc-x{copies}", lexspec)
    start = NonTerminal("message")
    grammar.add(start, [])  # placeholder start; replaced below
    grammar.productions.clear()
    grammar._by_lhs.clear()  # rebuild cleanly with the union start
    grammar.start = start

    shared_literals: set[str] = set()
    start_alternatives: list[NonTerminal] = []
    for copy in range(1, copies + 1):
        def rename_terminal(terminal: Terminal) -> Terminal:
            token = base.lexspec.get(terminal.name)
            if token.is_literal:
                renamed = _rename_literal(terminal.name, copy)
                if renamed == terminal.name:
                    if renamed not in shared_literals:
                        lexspec.define_literal(renamed)
                        shared_literals.add(renamed)
                else:
                    lexspec.define_literal(renamed)
                return Terminal(renamed)
            renamed = f"{terminal.name}_{copy}"
            lexspec.define(renamed, token.pattern)
            return Terminal(renamed)

        terminal_cache: dict[str, Terminal] = {}

        def mapped(symbol):
            if isinstance(symbol, Terminal):
                cached = terminal_cache.get(symbol.name)
                if cached is None:
                    cached = rename_terminal(symbol)
                    terminal_cache[symbol.name] = cached
                return cached
            return NonTerminal(f"{symbol.name}_{copy}")

        for production in base.productions:
            grammar.add(
                NonTerminal(f"{production.lhs.name}_{copy}"),
                [mapped(symbol) for symbol in production.rhs],
            )
        assert base.start is not None
        start_alternatives.append(NonTerminal(f"{base.start.name}_{copy}"))

    for alternative in start_alternatives:
        grammar.add(start, [alternative])
    grammar.start = start
    grammar.validate()
    return grammar


#: The paper's Table 1 design points: approximate pattern-byte targets
#: mapped to duplication counts of the ~300-byte base grammar.
PAPER_SCALE_POINTS: tuple[tuple[int, int], ...] = (
    (300, 1),
    (600, 2),
    (1200, 4),
    (2100, 6),
    (3000, 9),
)


@lru_cache(maxsize=None)
def scale_point_grammar(copies: int) -> Grammar:
    """Cached scaled grammar (generation is pure)."""
    return scaled_xmlrpc(copies)
