"""Figure 15 reproduction: frequency versus grammar pattern bytes.

The paper plots the Virtex 4 frequency of the five duplicated-grammar
design points against their pattern-byte counts, annotated with
LUTs/byte, and attributes the fall-off to "routing delay associated
with the large fanout of the decoded character bits … just under
2 nanoseconds" for the largest grammar (§4.3).

:func:`run_figure15` regenerates the series and, for each point, the
routing-delay breakdown of the worst nets — the quantitative form of
the paper's timing analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.scaling import PAPER_SCALE_POINTS, scale_point_grammar
from repro.core.generator import TaggerGenerator, TaggerOptions
from repro.fpga.device import get_device
from repro.fpga.report import UtilizationReport, implement

#: The five Virtex 4 points of Fig. 15 as (bytes, MHz, LUTs/byte).
FIGURE15_PAPER: tuple[tuple[int, int, float], ...] = (
    (300, 533, 1.01),
    (600, 497, 0.88),
    (1200, 445, 0.81),
    (2100, 318, 0.79),
    (3000, 316, 0.77),
)


@dataclass
class Figure15Point:
    """One point of the frequency-vs-bytes curve."""

    paper_bytes: int
    paper_mhz: int
    paper_luts_per_byte: float
    measured: UtilizationReport

    @property
    def worst_route_ns(self) -> float:
        """Worst per-net routing delay (the paper's ~2 ns observation)."""
        nets = self.measured.timing.worst_nets
        return nets[0].route_ns if nets else 0.0

    def format(self) -> str:
        ours = self.measured
        return (
            f"{ours.pattern_bytes:>5}B "
            f"{ours.frequency_mhz:>5.0f} MHz (paper {self.paper_mhz}) "
            f"{ours.luts_per_byte:>5.2f} L/B (paper {self.paper_luts_per_byte}) "
            f"worst route {self.worst_route_ns:.2f} ns "
            f"[{ours.timing.critical_kind}-bound]"
        )


def run_figure15(
    device_key: str = "virtex4-lx200",
    options: TaggerOptions | None = None,
) -> list[Figure15Point]:
    """Regenerate the Fig. 15 series on the given device."""
    generator = TaggerGenerator(options)
    device = get_device(device_key)
    points: list[Figure15Point] = []
    for (paper_bytes, paper_mhz, paper_ratio), (_, copies) in zip(
        FIGURE15_PAPER, PAPER_SCALE_POINTS
    ):
        circuit = generator.generate(scale_point_grammar(copies))
        report = implement(circuit, device)
        points.append(
            Figure15Point(
                paper_bytes=paper_bytes,
                paper_mhz=paper_mhz,
                paper_luts_per_byte=paper_ratio,
                measured=report,
            )
        )
    return points


def format_figure15(points: list[Figure15Point]) -> str:
    lines = ["Figure 15 — frequency vs pattern bytes (Virtex 4 LX200)"]
    lines.extend(point.format() for point in points)
    monotone = all(
        points[i].measured.frequency_mhz >= points[i + 1].measured.frequency_mhz
        for i in range(len(points) - 1)
    )
    lines.append(f"frequency monotonically falling: {monotone}")
    return "\n".join(lines)


def ascii_plot(points: list[Figure15Point], width: int = 60) -> str:
    """Terminal rendering of the Fig. 15 curve (ours vs paper)."""
    lines = []
    max_mhz = max(
        max(p.measured.frequency_mhz for p in points),
        max(p.paper_mhz for p in points),
    )
    for point in points:
        ours = int(point.measured.frequency_mhz / max_mhz * width)
        paper = int(point.paper_mhz / max_mhz * width)
        bar = "".join(
            "#" if i < ours else (" " if i != paper else "|")
            for i in range(width + 1)
        )
        lines.append(
            f"{point.measured.pattern_bytes:>5}B |{bar}| "
            f"{point.measured.frequency_mhz:.0f} MHz"
        )
    lines.append("(# = measured, | = paper)")
    return "\n".join(lines)
