"""Table 1 reproduction: device utilization for XML token taggers.

The paper's Table 1 reports, for six design points (the XML-RPC
grammar and four duplicated enlargements on the Virtex 4 LX200, plus
the base grammar on the VirtexE 2000): frequency, bandwidth
(= frequency × 8 bits at one byte per cycle), pattern bytes, LUTs and
LUTs per byte.

:func:`run_table1` regenerates every row from scratch — grammar →
tagger netlist → LUT mapping → timing model — and returns both our
rows and the paper's for side-by-side comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.scaling import PAPER_SCALE_POINTS, scale_point_grammar
from repro.core.generator import TaggerGenerator, TaggerOptions
from repro.fpga.device import get_device
from repro.fpga.report import UtilizationReport, implement

#: The published Table 1, for comparison:
#: (device key, MHz, Gbps, pattern bytes, LUTs, LUTs/byte).
TABLE1_PAPER: tuple[tuple[str, int, float, int, int, float], ...] = (
    ("virtexe-2000", 196, 1.57, 300, 310, 1.03),
    ("virtex4-lx200", 318, 2.54, 2100, 1652, 0.79),
    ("virtex4-lx200", 316, 2.53, 3000, 2316, 0.77),
    ("virtex4-lx200", 533, 4.26, 300, 302, 1.01),
    ("virtex4-lx200", 445, 3.56, 1200, 975, 0.81),
    ("virtex4-lx200", 497, 3.97, 600, 526, 0.88),
)


@dataclass
class Table1Row:
    """One measured row next to its paper counterpart."""

    paper: tuple[str, int, float, int, int, float]
    measured: UtilizationReport

    def format(self) -> str:
        device, mhz, gbps, n_bytes, luts, ratio = self.paper
        ours = self.measured
        return (
            f"{ours.device.name:<15} "
            f"{ours.frequency_mhz:>5.0f}/{mhz:<4} "
            f"{ours.bandwidth_gbps:>5.2f}/{gbps:<5.2f} "
            f"{ours.pattern_bytes:>5}/{n_bytes:<5} "
            f"{ours.n_luts:>5}/{luts:<5} "
            f"{ours.luts_per_byte:>5.2f}/{ratio:<5.2f}"
        )


def _copies_for_bytes(target_bytes: int) -> int:
    for point_bytes, copies in PAPER_SCALE_POINTS:
        if point_bytes == target_bytes:
            return copies
    raise KeyError(f"no scale point for {target_bytes} pattern bytes")


def run_table1(
    options: TaggerOptions | None = None,
) -> list[Table1Row]:
    """Regenerate all six Table 1 rows (measured vs paper)."""
    generator = TaggerGenerator(options)
    circuits: dict[int, object] = {}
    rows: list[Table1Row] = []
    for paper_row in TABLE1_PAPER:
        device_key, _mhz, _gbps, n_bytes, _luts, _ratio = paper_row
        copies = _copies_for_bytes(n_bytes)
        circuit = circuits.get(copies)
        if circuit is None:
            circuit = generator.generate(scale_point_grammar(copies))
            circuits[copies] = circuit
        report = implement(circuit, get_device(device_key))
        rows.append(Table1Row(paper=paper_row, measured=report))
    return rows


def format_table1(rows: list[Table1Row]) -> str:
    """Printable measured-vs-paper table."""
    header = (
        f"{'Device':<15} {'MHz':>10} {'Gbps':>11} "
        f"{'Bytes':>11} {'LUTs':>11} {'L/B':>11}"
    )
    lines = ["Table 1 — ours/paper per cell", header]
    lines.extend(row.format() for row in rows)
    return "\n".join(lines)
