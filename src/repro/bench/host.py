"""Host identification for benchmark records.

``BENCH_throughput.json`` accumulates rates across revisions, and —
because the driver may run on different machines over time — across
hosts.  A compiled-vs-native ratio from a 2-core container and a
vector rate from a 32-core workstation are not comparable; recording
the host's CPU count and model with every merge is what keeps the
trajectory interpretable (the ``service host cpus`` entry already
gates worker-scaling ratios the same way).
"""

from __future__ import annotations

import os
import platform

__all__ = ["host_info"]


def _cpu_model() -> str | None:
    try:
        with open("/proc/cpuinfo", encoding="utf-8") as handle:
            for line in handle:
                # x86 says "model name", several ARM kernels "Processor".
                if line.lower().startswith(("model name", "processor\t")):
                    value = line.split(":", 1)[-1].strip()
                    if value and not value.isdigit():
                        return value
    except OSError:
        pass
    return platform.processor() or platform.machine() or None


def host_info() -> dict:
    """JSON-safe host identification merged into every bench record."""
    return {
        "host cpus": float(os.cpu_count() or 1),
        "host cpu model": _cpu_model(),
    }
