"""False-positive experiment (the paper's §1 motivation, quantified).

"…the naive pattern searches used in these implementations do not
consider the context of the text in the data. Therefore, they are
susceptible to false positive identifications."

The experiment: an XML-RPC stream where a fraction of messages carry a
*different* service's name planted inside a payload value. The
context-aware router (Fig. 12) reads the service only from the
methodName context; the naive router string-matches anywhere. We
report routing accuracy and the raw false-positive counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.xmlrpc import ContentBasedRouter, NaiveRouter, WorkloadGenerator
from repro.software.naive import NaiveScanner


@dataclass
class FalsePositiveResult:
    """Outcome of one adversarial routing run."""

    n_messages: int
    n_decoys: int
    contextual_correct: int
    naive_correct: int
    naive_hits: int
    contextual_hits: int

    @property
    def naive_false_positives(self) -> int:
        """Service-name matches outside the methodName context."""
        return self.naive_hits - self.contextual_hits

    def summary(self) -> str:
        return (
            f"{self.n_messages} messages ({self.n_decoys} with decoys): "
            f"contextual router {self.contextual_correct}/{self.n_messages} "
            f"correct, naive router {self.naive_correct}/{self.n_messages}; "
            f"naive produced {self.naive_false_positives} false-positive "
            f"service matches"
        )


def run_false_positive(
    n_messages: int = 200,
    adversarial_rate: float = 0.3,
    seed: int = 2006,
) -> FalsePositiveResult:
    """Route an adversarial stream with both routers and compare."""
    generator = WorkloadGenerator(seed=seed, adversarial_rate=adversarial_rate)
    stream, truth = generator.stream(n_messages)

    contextual = ContentBasedRouter()
    naive = NaiveRouter()
    routed = contextual.route(stream)
    naive_routed = naive.route(stream)
    if not (len(routed) == len(naive_routed) == len(truth)):
        raise AssertionError("message segmentation mismatch between routers")

    contextual_correct = sum(
        1 for message, (_c, port, _d) in zip(routed, truth) if message.port == port
    )
    naive_correct = sum(
        1
        for message, (_c, port, _d) in zip(naive_routed, truth)
        if message.port == port
    )
    needles = [s.encode() for s in contextual.table.services]
    naive_hits = len(NaiveScanner.find_strings(stream, needles))
    contextual_hits = sum(
        1
        for token in contextual.tagger.tag(stream)
        if token.occurrence in contextual.method_occurrences
        and token.lexeme in needles
    )
    return FalsePositiveResult(
        n_messages=n_messages,
        n_decoys=sum(1 for _c, _p, decoy in truth if decoy),
        contextual_correct=contextual_correct,
        naive_correct=naive_correct,
        naive_hits=naive_hits,
        contextual_hits=contextual_hits,
    )
