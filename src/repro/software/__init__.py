"""Software baselines and reference oracles.

The paper positions its hardware against "the traditional table
look-up or recursive descent methods used in most CFG parsers" (§3.1)
and against naive context-free pattern matchers that "lack the
intelligence to interpret the patterns based on their context" (§2).
This package implements all three:

* :mod:`repro.software.lexer` — DFA maximal-munch lexer (plus the
  context-sensitive variant predictive parsers drive);
* :mod:`repro.software.ll1` — table-driven LL(1) predictive parser;
* :mod:`repro.software.recursive_descent` — recursive-descent parser;
* :mod:`repro.software.naive` — context-free pattern scanner, the
  false-positive baseline of the paper's introduction.
"""

from repro.software.lexer import ContextSensitiveLexer, Lexer, LexedToken
from repro.software.ll1 import LL1Parser
from repro.software.recursive_descent import RecursiveDescentParser
from repro.software.naive import NaiveScanner

__all__ = [
    "ContextSensitiveLexer",
    "LL1Parser",
    "LexedToken",
    "Lexer",
    "NaiveScanner",
    "RecursiveDescentParser",
]
