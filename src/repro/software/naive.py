"""Naive context-free pattern scanner (the false-positive baseline).

"The naive pattern searches used in these implementations do not
consider the context of the text in the data. Therefore, they are
susceptible to false positive identifications." (§1)

:class:`NaiveScanner` matches every token pattern at every position —
the deep-packet-inspection style of matching the paper's introduction
criticizes. Comparing its hits against the context-aware tagger
quantifies the false-positive reduction, which
``benchmarks/bench_false_positive.py`` turns into the paper's
motivating number.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.grammar.lexspec import LexSpec
from repro.grammar.regex.dfa import DFA, compile_dfa
from repro.grammar.regex.ast import first_bytes


@dataclass(frozen=True)
class ScanHit:
    """One pattern occurrence found without grammatical context."""

    name: str
    start: int
    end: int
    lexeme: bytes


class NaiveScanner:
    """Match all token patterns everywhere, with no grammar context.

    ``boundary_aligned`` restricts starts to delimiter boundaries (the
    behaviour of a pattern matcher with word-boundary anchoring); the
    default scans every byte offset like a network signature engine.

    Example
    -------
    >>> from repro.grammar.lexspec import LexSpec
    >>> spec = LexSpec()
    >>> _ = spec.define("NUM", "[0-9]+")
    >>> [h.lexeme for h in NaiveScanner(spec).scan(b"a12b3")]
    [b'12', b'3']
    """

    def __init__(self, lexspec: LexSpec, boundary_aligned: bool = False) -> None:
        self.lexspec = lexspec
        self.boundary_aligned = boundary_aligned
        self._dfas: dict[str, DFA] = {}
        self._first: dict[str, frozenset[int]] = {}
        for token in lexspec:
            self._dfas[token.name] = compile_dfa(token.pattern)
            self._first[token.name] = first_bytes(token.pattern)

    # ------------------------------------------------------------------
    def _start_ok(self, data: bytes, position: int) -> bool:
        if not self.boundary_aligned:
            return True
        return position == 0 or self.lexspec.is_delimiter(data[position - 1])

    def scan(
        self, data: bytes, names: set[str] | None = None
    ) -> list[ScanHit]:
        """All longest matches of every (or the named) token patterns.

        Overlapping matches of different tokens are all reported —
        exactly what a context-free signature engine sees. For one
        token, matches that are suffixes of a longer match at an
        earlier start are still reported only once per start position.
        """
        hits: list[ScanHit] = []
        for token in self.lexspec:
            if names is not None and token.name not in names:
                continue
            dfa = self._dfas[token.name]
            first = self._first[token.name]
            covered_until = -1
            for position in range(len(data)):
                if data[position] not in first:
                    continue
                if not self._start_ok(data, position):
                    continue
                if position <= covered_until:
                    continue  # inside the previous longest match
                length = dfa.longest_match(data, position)
                if length:
                    hits.append(
                        ScanHit(
                            name=token.name,
                            start=position,
                            end=position + length,
                            lexeme=data[position : position + length],
                        )
                    )
                    covered_until = position + length - 1
        hits.sort(key=lambda hit: (hit.start, hit.end, hit.name))
        return hits

    @staticmethod
    def find_strings(data: bytes, needles: list[bytes]) -> list[ScanHit]:
        """Plain multi-string search (worm-signature style), for the
        router false-positive experiment: report every occurrence of
        every needle anywhere in the payload."""
        hits: list[ScanHit] = []
        for needle in needles:
            position = data.find(needle)
            while position >= 0:
                hits.append(
                    ScanHit(
                        name=needle.decode("latin-1"),
                        start=position,
                        end=position + len(needle),
                        lexeme=needle,
                    )
                )
                position = data.find(needle, position + 1)
        hits.sort(key=lambda hit: (hit.start, hit.end, hit.name))
        return hits
