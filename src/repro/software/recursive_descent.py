"""Recursive-descent parser (software reference, §3.1).

"Traditional software implementations of parsers rely on a built-in
context switch function in language to handle recursive executions" —
this parser is exactly that: one mutually recursive procedure per
non-terminal, predictive via FIRST/FOLLOW with one token of lookahead,
the call stack playing the role the paper's hardware deliberately
drops (§3.1, push-down → finite-state collapse).

It emits the same (token, occurrence) tags as the LL(1) parser and the
hardware tagger, so all three are cross-checked in the tests.
"""

from __future__ import annotations

from repro.core.tokens import TaggedToken
from repro.errors import GrammarError, ParseError
from repro.grammar.analysis import Occurrence, analyze_grammar
from repro.grammar.cfg import Grammar, Production
from repro.grammar.symbols import END, NonTerminal, Terminal
from repro.software.lexer import ContextSensitiveLexer, LexedToken


class RecursiveDescentParser:
    """Predictive recursive-descent parser over a grammar.

    Example
    -------
    >>> from repro.grammar.examples import if_then_else
    >>> parser = RecursiveDescentParser(if_then_else())
    >>> [t.token for t in parser.parse(b"go")]
    ['go']
    """

    def __init__(self, grammar: Grammar) -> None:
        self.grammar = grammar
        self.analysis = analyze_grammar(grammar)
        self.lexer = ContextSensitiveLexer(grammar.lexspec)
        # Selection sets per production (LL(1) condition checked here
        # too — recursive descent needs disjoint alternatives).
        self.selection: dict[int, frozenset[Terminal]] = {}
        for production in grammar.productions:
            chosen = set(self.analysis.first_of_sequence(production.rhs))
            if self.analysis.sequence_nullable(production.rhs):
                chosen |= set(self.analysis.follow[production.lhs])
            self.selection[production.index] = frozenset(chosen)
        for nonterminal in grammar.nonterminals:
            productions = grammar.productions_for(nonterminal)
            seen: set[Terminal] = set()
            for production in productions:
                overlap = seen & self.selection[production.index]
                if overlap:
                    raise GrammarError(
                        f"alternatives of {nonterminal} overlap on "
                        f"{sorted(t.name for t in overlap)}; not suitable "
                        "for predictive recursive descent"
                    )
                seen |= self.selection[production.index]

    # ------------------------------------------------------------------
    def parse(self, data: bytes) -> list[TaggedToken]:
        """Parse one complete sentence, returning tagged tokens."""
        assert self.grammar.start is not None
        state = _State(self, data)
        state.expand(self.grammar.start)
        tail = self.lexer.skip_delimiters(data, state.position)
        if state.lookahead is not None:
            raise ParseError(
                f"trailing token {state.lookahead.name!r}",
                position=state.lookahead.start,
            )
        if tail < len(data):
            raise ParseError("trailing input", position=tail)
        return state.tokens


class _State:
    """Mutable cursor shared by the recursive procedures."""

    def __init__(self, parser: RecursiveDescentParser, data: bytes) -> None:
        self.parser = parser
        self.data = data
        self.position = 0
        self.lookahead: LexedToken | None = None
        self.lookahead_valid = False
        self.tokens: list[TaggedToken] = []

    # ------------------------------------------------------------------
    def peek(self, allowed: set[str]) -> LexedToken | None:
        if not self.lookahead_valid:
            self.lookahead, self.position = self.parser.lexer.next_token(
                self.data, self.position, allowed
            )
            self.lookahead_valid = True
        return self.lookahead

    def consume(self, occurrence: Occurrence) -> None:
        token = self.peek({occurrence.terminal.name})
        if token is None or token.name != occurrence.terminal.name:
            raise ParseError(
                f"expected {occurrence.terminal.name!r}",
                position=self.position,
            )
        self.tokens.append(
            TaggedToken(
                token=token.name,
                occurrence=occurrence,
                lexeme=token.lexeme,
                start=token.start,
                end=token.end,
            )
        )
        self.lookahead = None
        self.lookahead_valid = False

    # ------------------------------------------------------------------
    def expand(self, nonterminal: NonTerminal) -> None:
        """The recursive procedure for one non-terminal."""
        parser = self.parser
        productions = parser.grammar.productions_for(nonterminal)
        allowed = {
            t.name
            for production in productions
            for t in parser.selection[production.index]
            if t != END
        }
        try:
            token = self.peek(allowed)
        except ParseError:
            token = None
        key = Terminal(token.name) if token is not None else END
        chosen: Production | None = None
        for production in productions:
            if key in parser.selection[production.index]:
                chosen = production
                break
        if chosen is None and token is None:
            for production in productions:
                if END in parser.selection[production.index]:
                    chosen = production
                    break
        if chosen is None:
            raise ParseError(
                f"unexpected {key.name!r} while expanding {nonterminal}",
                position=self.position,
            )
        for position, symbol in enumerate(chosen.rhs):
            if isinstance(symbol, Terminal):
                self.consume(Occurrence(chosen.index, position, symbol))
            else:
                self.expand(symbol)
