"""Sequential software lexers (the baseline lexical scanners).

:class:`Lexer` is the classic maximal-munch scanner: at each position
it skips delimiters, runs every token DFA, and keeps the longest match
(ties broken by token-list order). This is what a sequential processor
does instead of the paper's parallel tokenizer array.

:class:`ContextSensitiveLexer` restricts each scan to a caller-provided
set of *allowed* tokens; the predictive parsers drive it with the
FIRST sets of their current expectation, mirroring how the hardware's
Follow-set wiring only arms grammatically legal tokenizers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError
from repro.grammar.lexspec import LexSpec
from repro.grammar.regex.dfa import DFA, compile_dfa
from repro.grammar.symbols import Terminal


@dataclass(frozen=True)
class LexedToken:
    """A token produced by a software lexer (``end`` exclusive)."""

    name: str
    start: int
    end: int
    lexeme: bytes

    @property
    def terminal(self) -> Terminal:
        return Terminal(self.name)


class Lexer:
    """Maximal-munch DFA lexer over a lexical specification.

    Example
    -------
    >>> from repro.grammar.lexspec import LexSpec
    >>> spec = LexSpec()
    >>> _ = spec.define("WORD", "[a-z]+")
    >>> _ = spec.define("NUM", "[0-9]+")
    >>> [t.name for t in Lexer(spec).tokenize(b"abc 42")]
    ['WORD', 'NUM']
    """

    def __init__(self, lexspec: LexSpec) -> None:
        self.lexspec = lexspec
        self._dfas: dict[str, DFA] = {
            token.name: compile_dfa(token.pattern) for token in lexspec
        }
        self._order = [token.name for token in lexspec]

    # ------------------------------------------------------------------
    def skip_delimiters(self, data: bytes, position: int) -> int:
        while position < len(data) and self.lexspec.is_delimiter(data[position]):
            position += 1
        return position

    def match_at(
        self,
        data: bytes,
        position: int,
        allowed: set[str] | None = None,
    ) -> LexedToken | None:
        """Longest match at ``position`` among (optionally) allowed tokens."""
        best: LexedToken | None = None
        for name in self._order:
            if allowed is not None and name not in allowed:
                continue
            length = self._dfas[name].longest_match(data, position)
            if not length:
                continue
            if best is None or length > best.end - best.start:
                best = LexedToken(
                    name=name,
                    start=position,
                    end=position + length,
                    lexeme=data[position : position + length],
                )
        return best

    def tokenize(self, data: bytes) -> list[LexedToken]:
        """Scan the whole input; raise :class:`ParseError` on junk."""
        tokens: list[LexedToken] = []
        position = self.skip_delimiters(data, 0)
        while position < len(data):
            token = self.match_at(data, position)
            if token is None:
                raise ParseError(
                    f"no token matches at byte {position} "
                    f"({data[position:position + 10]!r}…)",
                    position=position,
                )
            tokens.append(token)
            position = self.skip_delimiters(data, token.end)
        return tokens


class ContextSensitiveLexer(Lexer):
    """Lexer driven by the parser's current expectation set.

    ``next_token(data, position, allowed)`` behaves like
    :meth:`Lexer.match_at` after delimiter skipping, but only considers
    the allowed token names — the software analogue of the hardware's
    context gating.
    """

    def next_token(
        self,
        data: bytes,
        position: int,
        allowed: set[str],
    ) -> tuple[LexedToken | None, int]:
        """Return (token or None at end-of-input, resume position)."""
        position = self.skip_delimiters(data, position)
        if position >= len(data):
            return None, position
        token = self.match_at(data, position, allowed=allowed)
        if token is None:
            raise ParseError(
                f"expected one of {sorted(allowed)} at byte {position}",
                position=position,
            )
        return token, token.end
