"""Table-driven LL(1) predictive parser (software reference).

This is the "traditional" parser the paper contrasts its hardware
against (§3.1): a parse table indexed by (non-terminal, lookahead
token), a stack for recursion, and sequential processing — one token
at a time. It doubles as the *oracle* for the tagger: on conforming
input, the (token, occurrence-context) pairs it emits must equal the
hardware tagger's output, which the integration tests assert.

The parser drives a :class:`~repro.software.lexer.ContextSensitiveLexer`
with the FIRST sets of its current expectation, so context-dependent
tokens (MONTH vs DAY vs HOUR, which share one pattern) resolve exactly
as the hardware's Follow-set gating resolves them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.tokens import TaggedToken
from repro.errors import GrammarError, ParseError
from repro.grammar.analysis import GrammarAnalysis, Occurrence, analyze_grammar
from repro.grammar.cfg import Grammar, Production
from repro.grammar.symbols import END, NonTerminal, Symbol, Terminal
from repro.software.lexer import ContextSensitiveLexer, LexedToken


@dataclass
class ParseNode:
    """A parse-tree node ("the parse tree reveals contextual meaning of
    the words in input program", §3.1)."""

    symbol: Symbol
    production: Production | None = None
    token: TaggedToken | None = None
    children: list["ParseNode"] = field(default_factory=list)

    def leaves(self) -> list[TaggedToken]:
        if self.token is not None:
            return [self.token]
        result: list[TaggedToken] = []
        for child in self.children:
            result.extend(child.leaves())
        return result

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        if self.token is not None:
            return f"{pad}{self.token}"
        lines = [f"{pad}{self.symbol}"]
        lines.extend(child.render(indent + 1) for child in self.children)
        return "\n".join(lines)


@dataclass
class ParseResult:
    """Outcome of a successful parse."""

    tokens: list[TaggedToken]
    tree: ParseNode


class LL1Parser:
    """Predictive parser built from a grammar's LL(1) table.

    Raises :class:`GrammarError` at construction when the grammar is
    not LL(1) (table conflict), and :class:`ParseError` at parse time
    when the input does not conform.

    Example
    -------
    >>> from repro.grammar.examples import if_then_else
    >>> parser = LL1Parser(if_then_else())
    >>> [t.token for t in parser.parse(b"if true then go else stop").tokens]
    ['if', 'true', 'then', 'go', 'else', 'stop']
    """

    def __init__(self, grammar: Grammar) -> None:
        self.grammar = grammar
        self.analysis: GrammarAnalysis = analyze_grammar(grammar)
        self.lexer = ContextSensitiveLexer(grammar.lexspec)
        self.table: dict[NonTerminal, dict[Terminal, Production]] = {}
        self._build_table()

    # ------------------------------------------------------------------
    def _build_table(self) -> None:
        analysis = self.analysis
        for production in self.grammar.productions:
            row = self.table.setdefault(production.lhs, {})
            selection = set(analysis.first_of_sequence(production.rhs))
            if analysis.sequence_nullable(production.rhs):
                selection |= set(analysis.follow[production.lhs])
            for terminal in selection:
                existing = row.get(terminal)
                if existing is not None and existing is not production:
                    raise GrammarError(
                        f"grammar {self.grammar.name!r} is not LL(1): "
                        f"conflict on ({production.lhs}, {terminal}) "
                        f"between {existing} and {production}"
                    )
                row[terminal] = production

    # ------------------------------------------------------------------
    def parse(self, data: bytes) -> ParseResult:
        """Parse one complete sentence; return tokens and parse tree.

        Raises :class:`ParseError` when the sentence is malformed or
        when anything but delimiters trails it.
        """
        result, position = self._parse_one(data, 0, strict=True)
        tail = self.lexer.skip_delimiters(data, position)
        if tail < len(data):
            raise ParseError(
                "trailing input after complete sentence", position=tail
            )
        return result

    def parse_stream(self, data: bytes) -> list[ParseResult]:
        """Parse a stream of back-to-back sentences (router workload)."""
        results: list[ParseResult] = []
        position = 0
        while self.lexer.skip_delimiters(data, position) < len(data):
            start = self.lexer.skip_delimiters(data, position)
            result, position = self._parse_one(data, start, strict=False)
            results.append(result)
        return results

    def _parse_one(
        self, data: bytes, position: int, strict: bool
    ) -> tuple[ParseResult, int]:
        """Parse a single sentence starting at ``position``.

        With ``strict`` a lookahead failure propagates immediately; in
        stream mode an unlexable lookahead is treated as end-of-sentence
        (it belongs to the next message) and epsilon rules absorb it.
        """
        assert self.grammar.start is not None
        root = ParseNode(self.grammar.start)
        stack: list[tuple[Symbol, Occurrence | None, ParseNode]] = [
            (self.grammar.start, None, root)
        ]
        tokens: list[TaggedToken] = []
        lookahead: LexedToken | None = None
        lookahead_valid = False

        while stack:
            symbol, occurrence, node = stack.pop()
            if isinstance(symbol, Terminal):
                if not lookahead_valid:
                    lookahead, position = self.lexer.next_token(
                        data, position, {symbol.name}
                    )
                    lookahead_valid = True
                if lookahead is None or lookahead.name != symbol.name:
                    raise ParseError(
                        f"expected {symbol.name!r}", position=position
                    )
                assert occurrence is not None
                tagged = TaggedToken(
                    token=lookahead.name,
                    occurrence=occurrence,
                    lexeme=lookahead.lexeme,
                    start=lookahead.start,
                    end=lookahead.end,
                )
                tokens.append(tagged)
                node.token = tagged
                lookahead = None
                lookahead_valid = False
                continue
            row = self.table[symbol]
            if not lookahead_valid:
                allowed = {t.name for t in row if t != END}
                try:
                    lookahead, position = self.lexer.next_token(
                        data, position, allowed
                    )
                except ParseError:
                    if strict:
                        raise
                    lookahead = None
                lookahead_valid = True
            key = Terminal(lookahead.name) if lookahead is not None else END
            production = row.get(key) or (row.get(END) if lookahead is None else None)
            if production is None:
                # The lookahead belongs to the *next* sentence; take the
                # epsilon expansion if one exists.
                production = row.get(END)
            if production is None:
                raise ParseError(
                    f"unexpected {key.name!r} while expanding {symbol}",
                    position=position,
                )
            node.production = production
            children = [ParseNode(s) for s in production.rhs]
            node.children = children
            for child_position in range(len(production.rhs) - 1, -1, -1):
                child_symbol = production.rhs[child_position]
                child_occurrence = (
                    Occurrence(production.index, child_position, child_symbol)
                    if isinstance(child_symbol, Terminal)
                    else None
                )
                stack.append(
                    (child_symbol, child_occurrence, children[child_position])
                )
        if lookahead_valid and lookahead is not None:
            position = lookahead.start
        return ParseResult(tokens=tokens, tree=root), position
