"""Production-style serving layer: sharded multi-process scanning.

The paper's hardware serves line rate by replicating pipelined
scanners; this package replicates the compiled software engine across
OS processes:

* :mod:`repro.service.shard` — stable flow-to-worker hash sharding
  (per-flow byte order is the invariant);
* :mod:`repro.service.pool` — worker processes, bounded task queues,
  supervision plumbing;
* :mod:`repro.service.service` — :class:`ScanService`: submission with
  backpressure, crash respawn with journal replay, graceful drain;
* :mod:`repro.service.metrics` — counters / gauges / latency
  histograms behind :meth:`ScanService.stats`;
* :mod:`repro.service.errors` — :class:`QueueFull` and friends.
"""

from repro.service.errors import (
    QueueFull,
    ServiceClosed,
    ServiceError,
    WorkerCrashed,
)
from repro.service.metrics import MetricsRegistry
from repro.service.service import RouterSpec, ScanService, TaggerSpec
from repro.service.shard import ShardRouter, shard_of

__all__ = [
    "MetricsRegistry",
    "QueueFull",
    "RouterSpec",
    "ScanService",
    "ServiceClosed",
    "ServiceError",
    "ShardRouter",
    "TaggerSpec",
    "WorkerCrashed",
    "shard_of",
]
