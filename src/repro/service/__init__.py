"""Production-style serving layer: sharded multi-process scanning.

The paper's hardware serves line rate by replicating pipelined
scanners; this package replicates the compiled software engine across
OS processes:

* :mod:`repro.service.shard` — stable flow-to-worker hash sharding
  (per-flow byte order is the invariant);
* :mod:`repro.service.pool` — worker processes, bounded task queues,
  supervision plumbing;
* :mod:`repro.service.service` — :class:`ScanService`: submission with
  backpressure, crash respawn with journal replay, graceful drain;
* :mod:`repro.service.metrics` — counters / gauges / latency
  histograms behind :meth:`ScanService.stats`;
* :mod:`repro.service.registry` — :class:`Registry`: named, versioned
  grammars compiled ahead-of-time into a content-addressed artifact
  store, so workers load tables instead of recompiling;
* :mod:`repro.service.errors` — :class:`QueueFull` and friends.
"""

from repro.core.artifact import CompiledArtifact
from repro.service.errors import (
    QueueFull,
    ServiceClosed,
    ServiceError,
    WorkerCrashed,
)
from repro.service.metrics import MetricsRegistry
from repro.service.registry import Registry, RegistryError
from repro.service.service import RouterSpec, ScanService, TaggerSpec
from repro.service.shard import ShardRouter, shard_of

__all__ = [
    "CompiledArtifact",
    "MetricsRegistry",
    "QueueFull",
    "Registry",
    "RegistryError",
    "RouterSpec",
    "ScanService",
    "ServiceClosed",
    "ServiceError",
    "ShardRouter",
    "TaggerSpec",
    "WorkerCrashed",
    "shard_of",
]
