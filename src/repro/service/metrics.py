"""Lightweight service metrics: counters, gauges, latency histograms.

The hardware exposes its health as wire-visible signals (detect pulses
per port, parse_error); a software serving layer needs the same
observability. This module is a tiny dependency-free metrics registry
in the Prometheus style: monotonically increasing :class:`Counter`\\ s,
point-in-time :class:`Gauge`\\ s, and log-bucketed :class:`Histogram`\\ s
for latency, all reachable through one :class:`MetricsRegistry` whose
:meth:`~MetricsRegistry.snapshot` renders plain nested dicts (JSON-safe,
diffable, assertable in tests).

The registry is driven from the service's submitter thread; individual
operations are single bytecode updates on ints, so occasional use from
another thread cannot corrupt state (at worst a lost increment), which
is the standard stats-registry trade-off.
"""

from __future__ import annotations

import re

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "escape_label_value",
    "merge_expositions",
    "prometheus_name",
    "relabel_exposition",
]

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """Map a dotted registry name onto the Prometheus metric-name
    charset (``[a-zA-Z_:][a-zA-Z0-9_:]*``): dots and other invalid
    characters become underscores, and a leading digit is guarded."""
    flat = _NAME_BAD.sub("_", name)
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return f"{prefix}_{flat}" if prefix else flat


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format: backslash,
    double quote, and newline must be escaped inside ``label="..."``."""
    return (
        value.replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def relabel_exposition(text: str, labels: dict[str, str]) -> str:
    """Inject ``labels`` into every sample line of a Prometheus
    exposition (comment lines pass through untouched). Existing
    labels — histogram ``le`` buckets — are preserved; the new pairs
    are appended after them."""
    if not labels:
        return text
    pairs = ",".join(
        f'{key}="{escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    )
    out: list[str] = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            out.append(line)
            continue
        if "{" in line:
            name, _, rest = line.partition("{")
            existing, _, value = rest.rpartition("} ")
            out.append(f"{name}{{{existing},{pairs}}} {value}")
        else:
            name, _, value = line.partition(" ")
            out.append(f"{name}{{{pairs}}} {value}")
    return "\n".join(out) + ("\n" if text.endswith("\n") else "")


def merge_expositions(
    parts: list[tuple[dict[str, str], str]]
) -> str:
    """Merge several expositions into one scrapeable page.

    Each part is ``(labels, exposition_text)``; the labels are
    injected into that part's samples (so a proxy can tag each
    backend's metrics with ``backend="host:port"``). The format
    requires every line of one metric grouped under a single
    ``# TYPE`` comment, so samples of the same metric arriving from
    several parts are regrouped into one block, comments deduped."""
    order: list[str] = []
    blocks: dict[str, dict[str, list[str]]] = {}

    def block_for(key: str) -> dict[str, list[str]]:
        block = blocks.get(key)
        if block is None:
            block = blocks[key] = {"comments": [], "samples": []}
            order.append(key)
        return block

    for labels, text in parts:
        current: dict[str, list[str]] | None = None
        for line in relabel_exposition(text, labels).splitlines():
            if not line:
                continue
            if line.startswith("#"):
                # "# TYPE <metric> <kind>" / "# HELP <metric> ..."
                words = line.split()
                key = words[2] if len(words) >= 3 else line
                current = block_for(key)
                if line not in current["comments"]:
                    current["comments"].append(line)
            elif current is not None:
                # render_prometheus() groups samples under their
                # comment, so the open block owns this line.
                current["samples"].append(line)
            else:
                # Headerless sample: group by its own name.
                key = line.partition("{")[0].partition(" ")[0]
                block_for(key)["samples"].append(line)
    lines: list[str] = []
    for key in order:
        lines.extend(blocks[key]["comments"])
        lines.extend(blocks[key]["samples"])
    return "\n".join(lines) + "\n"


class Counter:
    """A monotonically increasing count (events, bytes, errors)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (queue depth, open flows)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


#: Default histogram bucket upper bounds: 1 µs · 2^i, topping out
#: above a minute — wide enough for per-chunk scan times and full
#: round trips.
_BUCKET_BOUNDS = tuple(1e-6 * (1 << i) for i in range(27))


class Histogram:
    """Log₂-bucketed histogram (latency seconds by default).

    Fixed buckets keep ``observe`` O(log n_buckets) with no allocation;
    quantiles are read back bucket-resolution-accurate (a factor of 2),
    which is plenty to tell "microseconds" from "milliseconds" from
    "stalled". ``bounds`` overrides the bucket edges for unitless
    distributions (batch sizes, skip ratios).
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "max")

    def __init__(
        self, name: str, bounds: tuple[float, ...] | None = None
    ) -> None:
        self.name = name
        self.bounds = _BUCKET_BOUNDS if bounds is None else tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        bounds = self.bounds
        lo, hi = 0, len(bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-quantile sample."""
        if not self.count:
            return 0.0
        bounds = self.bounds
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank:
                return bounds[min(i, len(bounds) - 1)]
        return self.max

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum_s": self.total,
            "avg_s": self.total / self.count if self.count else 0.0,
            "p50_s": self.quantile(0.50),
            "p90_s": self.quantile(0.90),
            "p99_s": self.quantile(0.99),
            "max_s": self.max,
        }


class MetricsRegistry:
    """Named metric instruments, created on first touch."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, bounds: tuple[float, ...] | None = None
    ) -> Histogram:
        """Named histogram; ``bounds`` applies on first creation only
        (an existing instrument keeps its buckets)."""
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, bounds)
        return metric

    # ------------------------------------------------------------------
    def render_prometheus(self, prefix: str = "repro") -> str:
        """Plaintext Prometheus exposition of every instrument.

        Counters and gauges render as single samples; histograms render
        the standard ``_bucket``/``_sum``/``_count`` triple, where each
        ``le`` bucket holds the *cumulative* count of observations at
        or below its bound and ``le="+Inf"`` equals ``_count``.
        """
        lines: list[str] = []
        for name, counter in sorted(self._counters.items()):
            metric = prometheus_name(name, prefix)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {counter.value}")
        for name, gauge in sorted(self._gauges.items()):
            metric = prometheus_name(name, prefix)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {gauge.value:g}")
        for name, hist in sorted(self._histograms.items()):
            metric = prometheus_name(name, prefix)
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bound, count in zip(hist.bounds, hist.counts):
                cumulative += count
                le = escape_label_value(f"{bound:.6g}")
                lines.append(
                    f'{metric}_bucket{{le="{le}"}} {cumulative}'
                )
            lines.append(
                f'{metric}_bucket{{le="+Inf"}} {hist.count}'
            )
            lines.append(f"{metric}_sum {hist.total:g}")
            lines.append(f"{metric}_count {hist.count}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """Plain-dict view of every instrument (JSON-serializable)."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.summary()
                for name, h in sorted(self._histograms.items())
            },
        }
