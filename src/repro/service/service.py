"""The sharded scan service: a process pool behind one submit API.

The paper's tagger reaches multi-gigabit rates by *replicating*
pipelined scanners; :class:`ScanService` is that replication for the
software engines. Flows are hash-sharded to a fixed pool of OS worker
processes (:mod:`repro.service.shard` — per-flow byte order is the
invariant), each worker runs per-flow streaming sessions built from a
picklable :class:`RouterSpec`/:class:`TaggerSpec` shipped once at
spawn, and the parent merges per-flow results in submission order.

Operational semantics:

* **Backpressure** — every worker's task queue is bounded
  (``queue_depth``). ``backpressure="block"`` (default) makes
  :meth:`submit` wait for space, pushing the stall onto the producer
  the way a full hardware FIFO deasserts *ready*;
  ``backpressure="raise"`` raises :class:`~repro.service.errors.
  QueueFull` immediately so the caller can shed load.
* **Crash recovery** — a worker that dies is detected by
  supervision, respawned into the same shard, and the journaled
  chunks of its unfinished flows are re-dispatched from flow start
  (scan state is sequential, so recovery must replay). Results the
  dead worker already delivered are suppressed on replay by count,
  so the merged stream has no duplicates and no holes.
* **Graceful shutdown** — :meth:`drain` blocks until every submitted
  task is acknowledged; :meth:`close` drains, stops the workers with
  an end-of-queue message, and joins them. The service is a context
  manager.
* **Observability** — :meth:`stats` snapshots a
  :class:`~repro.service.metrics.MetricsRegistry`: counters for
  chunks/bytes/results/errors, queue-depth gauges, and latency
  histograms for submit wait, worker scan time, and round trip.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
from dataclasses import dataclass
from typing import Any

from repro.core.generator import TaggerOptions
from repro.grammar.cfg import Grammar
from repro.service.errors import (
    QueueFull,
    ServiceClosed,
    ServiceError,
    WorkerCrashed,
)
from repro.service.metrics import MetricsRegistry
from repro.service.pool import WorkerHandle
from repro.service.shard import ShardRouter

__all__ = [
    "RouterSpec",
    "ScanService",
    "TaggerSpec",
]

#: Bucket edges for the cross-flow batch-size histogram (flow counts).
BATCH_SIZE_BOUNDS = tuple(float(1 << i) for i in range(9))

#: Bucket edges for the dead-region skip-efficiency histogram (ratio).
SKIP_RATIO_BOUNDS = tuple(i / 10 for i in range(1, 11))


# ----------------------------------------------------------------------
# Worker specs: compact, picklable descriptions of what a worker runs.
# Shipped once at spawn; the worker rebuilds the engine through the
# shared plan/table caches (see CompiledTagger.__reduce__).
# ----------------------------------------------------------------------
def _batch_scanner_for(tagger):
    """A :class:`~repro.core.vectorscan.BatchScanner` over ``tagger``
    when it is a vector tagger with live tables, else None (workers
    then feed strictly per flow)."""
    from repro.core.vectorscan import BatchScanner, VectorTagger

    if isinstance(tagger, VectorTagger) and tagger.vector_active:
        return BatchScanner(tagger)
    return None


class _RouterBackend:
    """Per-worker XML-RPC routing backend (one session per flow)."""

    def __init__(self, router) -> None:
        self.router = router
        self.scanner = _batch_scanner_for(
            getattr(router.tagger, "compiled", None)
        )

    def new_session(self):
        return self.router.stream()

    @staticmethod
    def peek(session):
        return session.peek_finish()

    def feed_many(self, sessions, chunks):
        """Cross-flow batch step: lockstep the underlying scan
        sessions, then run each flow's routing state machine over its
        own completed results."""
        pairs = self.scanner.feed_scan_many(
            [session.scan_session for session in sessions], chunks
        )
        return [
            session.feed_prepared(chunk, flow_pairs)
            for session, chunk, flow_pairs in zip(sessions, chunks, pairs)
        ]


class _TaggerBackend:
    """Per-worker raw-event tagging backend (one session per flow)."""

    def __init__(self, tagger) -> None:
        self.tagger = tagger
        self.scanner = _batch_scanner_for(tagger)

    def new_session(self):
        return self.tagger.stream()

    @staticmethod
    def peek(session):
        return [event for event, _start in session.finish_scan_snapshot()]

    def feed_many(self, sessions, chunks):
        return self.scanner.feed_many(sessions, chunks)


def _resolve_service_engine(engine: str) -> str:
    """Canonical engine name for a streaming service (or ServiceError)."""
    from repro.core.capabilities import resolve_engine

    try:
        return resolve_engine(engine, streaming=True)
    except ValueError as exc:
        raise ServiceError(str(exc)) from None


def _engine_tagger(grammar, options, engine: str):
    """Build the worker-side tagger for an engine name."""
    engine = _resolve_service_engine(engine)
    if engine == "native":
        from repro.core.nativescan import NativeTagger

        return NativeTagger(grammar, options)
    if engine == "vector":
        from repro.core.vectorscan import VectorTagger

        return VectorTagger(grammar, options)
    from repro.core.compiled import CompiledTagger

    return CompiledTagger(grammar, options)


def _registry_artifact(ref: str, root: str | None):
    """Load a registry artifact for a spec's ``registry_ref``."""
    from repro.service.registry import Registry, RegistryError

    try:
        return Registry(root).load(ref)
    except RegistryError as exc:
        raise ServiceError(str(exc)) from None


@dataclass(frozen=True)
class RouterSpec:
    """Workers run :class:`~repro.apps.xmlrpc.router.RouterSession`
    per flow; results are ``RoutedMessage`` lists.

    ``registry_ref`` (``"name@version"``) resolves the grammar from
    the artifact registry at build time — workers ship the short ref
    across the spawn boundary and load precompiled tables from the
    content-addressed store instead of unpickling and recompiling a
    grammar object.
    """

    grammar: Grammar | None = None
    table: Any = None
    method_element: str = "methodName"
    engine: str = "compiled"
    registry_ref: str | None = None
    registry_root: str | None = None

    def build(self) -> _RouterBackend:
        from repro.apps.xmlrpc.router import ContentBasedRouter

        engine = _resolve_service_engine(self.engine)
        grammar = self.grammar
        if self.registry_ref is not None:
            grammar = _registry_artifact(
                self.registry_ref, self.registry_root
            ).grammar
        tagger = None
        if engine != "compiled":
            if grammar is None:
                from repro.grammar.examples import xmlrpc

                grammar = xmlrpc()
            from repro.core.tagger import BehavioralTagger

            tagger = BehavioralTagger(grammar, engine=engine)
        return _RouterBackend(
            ContentBasedRouter(
                grammar=grammar,
                table=self.table,
                tagger=tagger,
                method_element=self.method_element,
            )
        )


@dataclass(frozen=True)
class TaggerSpec:
    """Workers run :class:`~repro.core.compiled.CompiledStream` per
    flow; results are ``DetectEvent`` lists.

    Either ``grammar`` (a picklable grammar object) or
    ``registry_ref`` (``"name@version"`` into the artifact registry)
    must be set; with a ref, workers load precompiled tables from the
    content-addressed store and ``options`` defaults to the published
    wiring.
    """

    grammar: Grammar | None = None
    options: TaggerOptions | None = None
    engine: str = "compiled"
    registry_ref: str | None = None
    registry_root: str | None = None

    def build(self) -> _TaggerBackend:
        grammar, options = self.grammar, self.options
        if self.registry_ref is not None:
            artifact = _registry_artifact(
                self.registry_ref, self.registry_root
            )
            grammar = artifact.grammar
            if options is None:
                options = artifact.options
        if grammar is None:
            raise ServiceError(
                "TaggerSpec needs a grammar or a registry_ref"
            )
        return _TaggerBackend(_engine_tagger(grammar, options, self.engine))


# ----------------------------------------------------------------------
def _default_context() -> mp.context.BaseContext:
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


class ScanService:
    """Sharded multi-process scanning with bounded queues.

    Example
    -------
    >>> from repro.service import RouterSpec, ScanService
    >>> with ScanService(RouterSpec(), n_workers=2) as service:
    ...     service.submit("flow-a", b"<methodCall><methodName>buy"
    ...                    b"</methodName><params></params></methodCall> ")
    ...     service.finish_flow("flow-a")
    ...     service.drain()
    ...     [m.port for m in service.results()["flow-a"]]
    [1]
    """

    def __init__(
        self,
        spec: Any,
        n_workers: int = 2,
        queue_depth: int = 64,
        backpressure: str = "block",
        start_method: str | None = None,
        respawn_limit: int = 3,
        metrics: MetricsRegistry | None = None,
        engine: str | None = None,
    ) -> None:
        if backpressure not in ("block", "raise"):
            raise ServiceError(f"unknown backpressure policy {backpressure!r}")
        if n_workers < 1:
            raise ServiceError("need at least one worker")
        if engine is not None:
            # Convenience knob: override the spec's engine without the
            # caller having to rebuild it by hand.
            import dataclasses

            try:
                spec = dataclasses.replace(spec, engine=engine)
            except TypeError:
                raise ServiceError(
                    f"spec {type(spec).__name__} does not take an "
                    f"engine override"
                ) from None
        self.spec = spec
        self.engine = _resolve_service_engine(
            getattr(spec, "engine", "compiled")
        )
        self.backpressure = backpressure
        self.queue_depth = queue_depth
        self.respawn_limit = respawn_limit
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.shards = ShardRouter(n_workers)
        self._ctx = (
            mp.get_context(start_method)
            if start_method is not None
            else _default_context()
        )
        self.workers = [
            WorkerHandle(i, spec, queue_depth, self._ctx)
            for i in range(n_workers)
        ]
        self._started = False
        self._closed = False
        self._task_seq = 0
        #: flow -> journaled ("feed", chunk) / ("finish", None) entries,
        #: kept until the flow's finish is acknowledged (replay source).
        self._journal: dict[Any, list[tuple[str, bytes | None]]] = {}
        #: flow -> results already merged (dedup base for replay).
        self._emitted: dict[Any, int] = {}
        #: flow -> replayed results still to suppress.
        self._skip: dict[Any, int] = {}
        self._results: dict[Any, list] = {}
        #: flows whose finish was acknowledged since the last poll().
        self._finished_flows: list[Any] = []
        #: task_id -> (worker, op, flow, submit_monotonic)
        self._inflight: dict[int, tuple[int, str, Any, float]] = {}
        self._peeks: dict[int, list] = {}
        self._worker_errors: list[str] = []
        self._respawns = [0] * n_workers

    # ------------------------------------------------------------------
    @property
    def n_workers(self) -> int:
        return len(self.workers)

    def start(self) -> "ScanService":
        """Spawn the worker pool (idempotent; submit() does it lazily)."""
        self._ensure_open()
        if not self._started:
            for handle in self.workers:
                handle.spawn()
            self._started = True
        return self

    def __enter__(self) -> "ScanService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        # Don't mask an in-flight exception with a drain timeout.
        self.close(drain=exc_type is None)
        return False

    def _ensure_open(self) -> None:
        if self._closed:
            raise ServiceClosed("service already closed")

    # ------------------------------------------------------------------
    # submission API
    # ------------------------------------------------------------------
    def submit(
        self, flow: Any, chunk: bytes, timeout: float | None = None
    ) -> None:
        """Queue one chunk of ``flow`` for scanning.

        Chunks of one flow are scanned in submission order on one
        worker. With ``backpressure="block"`` this call waits for
        queue space (up to ``timeout`` seconds, then
        :class:`QueueFull`); with ``"raise"`` a full queue raises
        :class:`QueueFull` immediately.
        """
        self._ensure_open()
        self.start()
        self._collect()
        self._journal.setdefault(flow, []).append(("feed", chunk))
        self.metrics.counter("submitted.chunks").inc()
        self.metrics.counter("submitted.bytes").inc(len(chunk))
        self._dispatch("feed", flow, chunk, journaled=True, timeout=timeout)

    def finish_flow(self, flow: Any, timeout: float | None = None) -> None:
        """Queue the end-of-data flush for ``flow`` (its tail results
        appear in :meth:`results` once acknowledged)."""
        self._ensure_open()
        self.start()
        self._collect()
        self._journal.setdefault(flow, []).append(("finish", None))
        self._dispatch("finish", flow, None, journaled=True, timeout=timeout)

    def peek(self, flow: Any, timeout: float = 30.0) -> list:
        """What end-of-data would add to ``flow`` right now, evaluated
        on a worker-side snapshot (the flow keeps streaming). Blocks
        for the round trip."""
        self._ensure_open()
        self.start()
        task_id = self._dispatch("peek", flow, None, journaled=False)
        deadline = time.monotonic() + timeout
        while task_id not in self._peeks:
            self._collect(block=True, wait=0.05)
            self._check_workers()
            if task_id not in self._inflight and task_id not in self._peeks:
                # lost to a crash: the shard was respawned, ask again
                task_id = self._dispatch("peek", flow, None, journaled=False)
            if time.monotonic() > deadline:
                raise ServiceError(f"peek({flow!r}) timed out")
        return self._peeks.pop(task_id)

    # ------------------------------------------------------------------
    def _next_task(self) -> int:
        self._task_seq += 1
        return self._task_seq

    def _dispatch(
        self,
        op: str,
        flow: Any,
        chunk: bytes | None,
        journaled: bool,
        timeout: float | None = None,
    ) -> int | None:
        """Hand one task to the owning shard, honoring backpressure.

        Returns the task id, or None when a crash-respawn replayed the
        journal (which already contains a journaled task, so it is in
        flight without a dedicated dispatch).
        """
        worker = self.shards.worker_of(flow)
        task_id = self._next_task()
        message = (
            (op, task_id, flow)
            if chunk is None
            else (op, task_id, flow, chunk)
        )
        handle = self.workers[worker]
        started = time.monotonic()
        deadline = None if timeout is None else started + timeout

        while True:
            if not handle.alive and not handle.stopping:
                self._recover(worker)
                if journaled:
                    # The replay delivered this task (it was journaled
                    # before dispatch); nothing left to enqueue.
                    self._observe_wait(started)
                    return None
                continue  # non-journaled ops retry against the respawn
            try:
                if self.backpressure == "raise":
                    handle.tasks.put_nowait(message)
                else:
                    handle.tasks.put(message, timeout=0.05)
                break
            except queue_mod.Full:
                self._collect()
                if self.backpressure == "raise" or (
                    deadline is not None and time.monotonic() > deadline
                ):
                    if journaled:
                        # Undo the journal entry: this task was never
                        # delivered, and a future replay must not
                        # invent it.
                        self._journal[flow].pop()
                    self.metrics.counter("errors.queue_full").inc()
                    raise QueueFull(worker, self.queue_depth) from None

        self._observe_wait(started)
        self._inflight[task_id] = (worker, op, flow, time.monotonic())
        return task_id

    def _observe_wait(self, started: float) -> None:
        self.metrics.histogram("latency.submit_wait_s").observe(
            time.monotonic() - started
        )

    # ------------------------------------------------------------------
    # result collection and supervision
    # ------------------------------------------------------------------
    def _collect(self, block: bool = False, wait: float = 0.1) -> int:
        """Drain every readable worker's result queue.

        With ``block=True`` and nothing pending, waits up to ``wait``
        seconds for any worker's queue to become readable, then sweeps
        once more. Queues of crashed workers are never read — a death
        mid-send can tear a message, and a torn message blocks the
        reader forever; their results are regenerated by replay.
        """
        if self._closed:
            # post-close results() reads the already-merged buffers
            return 0
        handled = self._sweep()
        if handled or not block:
            return handled
        readers = [
            handle.results._reader
            for handle in self.workers
            if handle.readable
        ]
        if readers:
            mp.connection.wait(readers, timeout=wait)
        return self._sweep()

    def _sweep(self) -> int:
        """One non-blocking pass over all readable result queues."""
        handled = 0
        for handle in self.workers:
            if not handle.readable:
                continue
            while True:
                try:
                    item = handle.results.get_nowait()
                except queue_mod.Empty:
                    break
                except (OSError, ValueError):  # pragma: no cover
                    break  # queue torn down under us mid-sweep
                self._merge(item)
                handled += 1
        return handled

    def _merge(self, item: tuple) -> None:
        """Fold one worker reply into the per-flow result streams."""
        _worker, task_id, op, flow, out, elapsed, error = item
        if op == "stopped":
            return
        if op == "batch_stats":
            # Out-of-band worker observability: how many flows each
            # greedy drain stepped together, and the vector engine's
            # dead-region skip efficiency (bytes skipped / scanned).
            self.metrics.histogram(
                "batch.size", bounds=BATCH_SIZE_BOUNDS
            ).observe(out["flows"])
            scanned = out.get("scanned", 0)
            if scanned:
                self.metrics.counter("vector.bytes_scanned").inc(scanned)
                self.metrics.counter("vector.bytes_skipped").inc(
                    out.get("skipped", 0)
                )
                self.metrics.histogram(
                    "vector.skip_ratio", bounds=SKIP_RATIO_BOUNDS
                ).observe(out.get("skipped", 0) / scanned)
            return
        known = task_id in self._inflight
        if known:
            _w, _op, _flow, submitted = self._inflight.pop(task_id)
            self.metrics.histogram("latency.roundtrip_s").observe(
                time.monotonic() - submitted
            )
        self.metrics.histogram("latency.scan_s").observe(elapsed)
        if error is not None:
            self.metrics.counter("errors.worker").inc()
            self._worker_errors.append(error)
            return
        if op == "peek":
            if known:
                self._peeks[task_id] = out
            return
        if not known:
            # A task superseded by journal replay (its worker died
            # after computing it): the replay regenerates these
            # results, so applying them too would double-count.
            self.metrics.counter("dropped.stale").inc()
            return
        if out:
            skip = self._skip.get(flow, 0)
            if skip:
                dropped = min(skip, len(out))
                self._skip[flow] = skip - dropped
                out = out[dropped:]
                self.metrics.counter("dropped.duplicates").inc(dropped)
        if out:
            self._results.setdefault(flow, []).extend(out)
            self._emitted[flow] = self._emitted.get(flow, 0) + len(out)
            self.metrics.counter("results.items").inc(len(out))
        self.metrics.counter("results.tasks").inc()
        if op == "finish":
            # The flow is complete and its results are safe in the
            # parent: the replay journal has done its job.
            self._journal.pop(flow, None)
            self._skip.pop(flow, None)
            self._finished_flows.append(flow)

    def _check_workers(self) -> None:
        """Detect dead workers and recover their shards."""
        for handle in self.workers:
            if not handle.alive and not handle.stopping and self._started:
                self._recover(handle.index)

    def _recover(self, worker: int) -> None:
        """Respawn a dead worker and replay its unfinished flows."""
        handle = self.workers[worker]
        if handle.alive or handle.stopping:
            return
        self._respawns[worker] += 1
        if self._respawns[worker] > self.respawn_limit:
            raise WorkerCrashed(
                f"worker {worker} crashed {self._respawns[worker]} times "
                f"(respawn limit {self.respawn_limit})"
            )
        # The dead worker's result queue is not readable (a death
        # mid-send can tear a message); whatever it delivered but we
        # never merged is regenerated by the replay below, and the
        # skip count only covers results that were actually merged.
        self._collect()
        self.metrics.counter("respawns").inc()
        # In-flight tasks addressed to the dead worker are void: either
        # their results were banked above, or the journal regenerates
        # them. Peeks waiting on it are re-asked by their caller.
        for task_id in [
            tid
            for tid, (w, _op, _flow, _t) in self._inflight.items()
            if w == worker
        ]:
            del self._inflight[task_id]
        handle.spawn()
        for flow, entries in self._journal.items():
            if self.shards.worker_of(flow) != worker or not entries:
                continue
            self._skip[flow] = self._emitted.get(flow, 0)
            for op, chunk in entries:
                task_id = self._next_task()
                message = (
                    (op, task_id, flow)
                    if chunk is None
                    else (op, task_id, flow, chunk)
                )
                while True:
                    try:
                        handle.tasks.put(message, timeout=0.1)
                        break
                    except queue_mod.Full:
                        self._collect()
                self._inflight[task_id] = (
                    worker, op, flow, time.monotonic(),
                )
                self.metrics.counter("replayed.tasks").inc()

    # ------------------------------------------------------------------
    # drain / results / stats / shutdown
    # ------------------------------------------------------------------
    def drain(self, timeout: float = 60.0) -> None:
        """Block until every submitted task has been acknowledged.

        Raises :class:`ServiceError` on timeout or if any worker task
        failed (the first worker traceback is included).
        """
        self._ensure_open()
        deadline = time.monotonic() + timeout
        while self._inflight:
            self._check_workers()
            self._collect(block=True, wait=0.05)
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"drain timed out with {len(self._inflight)} tasks "
                    "in flight"
                )
        if self._worker_errors:
            raise ServiceError(
                "worker task failed:\n" + self._worker_errors[0]
            )

    def poll(self) -> list[Any]:
        """Non-blocking supervision + collection sweep.

        Detects dead workers (recovering their shards), drains every
        readable result queue, and returns the flows whose
        :meth:`finish_flow` has been acknowledged since the last call
        — the event-loop-friendly alternative to :meth:`drain` for
        callers (like the asyncio server) that must never block.
        """
        self._ensure_open()
        if self._started:
            self._check_workers()
        self._collect()
        done, self._finished_flows = self._finished_flows, []
        return done

    def pop_flow(self, flow: Any) -> list:
        """Hand over one flow's merged results (buffers cleared).

        Meant for flows :meth:`poll` reported finished: popping a flow
        that is still streaming also discards its crash-replay dedup
        base, so a later replay could double-deliver its results.
        """
        self._collect()
        self._emitted.pop(flow, None)
        self._skip.pop(flow, None)
        return self._results.pop(flow, [])

    def results(self) -> dict[Any, list]:
        """Per-flow merged results so far (submission order within a
        flow). Call :meth:`drain` first for a complete view."""
        self._collect()
        return {flow: list(items) for flow, items in self._results.items()}

    def pop_results(self) -> dict[Any, list]:
        """Like :meth:`results` but hands ownership over: the internal
        buffers are cleared (flow replay dedup accounting is kept)."""
        out = self.results()
        self._results.clear()
        return out

    def stats(self) -> dict:
        """Snapshot of counters, gauges, and latency histograms."""
        for handle in self.workers:
            self.metrics.gauge(f"queue.depth.{handle.index}").set(
                handle.queue_size()
            )
        self.metrics.gauge("inflight").set(len(self._inflight))
        self.metrics.gauge("flows.open").set(len(self._journal))
        snapshot = self.metrics.snapshot()
        snapshot["workers"] = {
            "count": self.n_workers,
            "alive": sum(1 for h in self.workers if h.alive),
            "respawns": list(self._respawns),
        }
        from repro.core.capabilities import engine_capabilities

        snapshot["engine"] = engine_capabilities(self.engine)
        return snapshot

    def close(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Graceful shutdown: optional drain, then stop and join the
        workers. Idempotent; the context manager calls it."""
        if self._closed:
            return
        try:
            if drain and self._started and self._inflight:
                self.drain(timeout=timeout)
        finally:
            self._closed = True
            if self._started:
                for handle in self.workers:
                    handle.stop()

    # ------------------------------------------------------------------
    def run_streams(
        self,
        streams: dict[Any, bytes],
        chunk_size: int = 4096,
        finish: bool = True,
    ) -> dict[Any, list]:
        """Convenience: scan whole per-flow byte streams.

        Chunks are submitted round-robin across flows (the interleaved
        arrival pattern sharding exists for), flows are finished, the
        service drains, and the merged per-flow results are returned.
        """
        offsets = {flow: 0 for flow in streams}
        pending = list(streams)
        while pending:
            still = []
            for flow in pending:
                data = streams[flow]
                offset = offsets[flow]
                if offset < len(data):
                    self.submit(flow, data[offset : offset + chunk_size])
                    offsets[flow] = offset + chunk_size
                if offsets[flow] < len(data):
                    still.append(flow)
                elif finish:
                    self.finish_flow(flow)
            pending = still
        self.drain()
        return self.results()

    def _inject_crash(self, worker: int) -> None:
        """Test hook: make one worker die mid-service (os._exit)."""
        self.workers[worker].tasks.put(("crash",))
