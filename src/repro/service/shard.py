"""Flow-to-worker shard routing.

The hardware scales by replicating pipelined scanners and fanning
flows out across them; the software service does the same with OS
processes. The one invariant that matters is *per-flow byte order*:
every chunk of a flow must reach the same worker, in submission order,
because the scan state (position registers, arming, open message) is
sequential. A stable content hash of the flow identity gives that
invariant for free — no shard table to keep consistent, identical
placement across runs and across processes (``hash()`` is unsuitable:
``PYTHONHASHSEED`` randomizes it per process).
"""

from __future__ import annotations

from hashlib import blake2b

__all__ = ["ShardRouter", "shard_of"]


def _flow_bytes(flow: object) -> bytes:
    """Stable byte identity of a flow id (str/int/FlowKey/...)."""
    if isinstance(flow, bytes):
        return flow
    return str(flow).encode("utf-8", errors="replace")


def shard_of(flow: object, n_shards: int) -> int:
    """The shard (worker index) that owns ``flow``; stable across
    processes, runs and machines."""
    digest = blake2b(_flow_bytes(flow), digest_size=8).digest()
    return int.from_bytes(digest, "big") % n_shards


class ShardRouter:
    """Maps flow ids to a fixed number of workers (consistent modulo
    hashing; the worker count is fixed for the service's lifetime)."""

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.n_shards = n_shards

    def worker_of(self, flow: object) -> int:
        return shard_of(flow, self.n_shards)

    def partition(self, flows) -> list[list]:
        """Group ``flows`` by owning worker (diagnostics, tests)."""
        groups: list[list] = [[] for _ in range(self.n_shards)]
        for flow in flows:
            groups[self.worker_of(flow)].append(flow)
        return groups
