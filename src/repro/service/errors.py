"""Exception types raised by the scan service."""

from __future__ import annotations

from repro.errors import ReproError


class ServiceError(ReproError):
    """Base class for scan-service failures."""


class QueueFull(ServiceError):
    """A worker's submission queue is full (``backpressure="raise"``).

    The caller owns the retry decision: drop the chunk, buffer it, or
    slow the producer down. With ``backpressure="block"`` the service
    makes that decision itself by blocking the submitter.
    """

    def __init__(self, worker: int, depth: int) -> None:
        super().__init__(
            f"worker {worker} submission queue full ({depth} tasks)"
        )
        self.worker = worker
        self.depth = depth


class ServiceClosed(ServiceError):
    """The service was used after :meth:`ScanService.close`."""


class WorkerCrashed(ServiceError):
    """A worker died and could not be respawned within the retry budget."""
