"""Named, versioned grammar registry over a content-addressed store.

The paper compiles grammars offline and ships the tables to the
device; this module is that deployment boundary in software.  A
:class:`Registry` maps human references — ``"xmlrpc"`` or pinned
``"xmlrpc@2"`` — onto compiled scan artifacts
(:mod:`repro.core.artifact`) persisted under a store directory:

* ``objects/<sha256>.art`` — immutable artifact blobs, addressed by
  :func:`~repro.core.artifact.object_key` (grammar source + wiring +
  engine ABI + interpreter tag), published atomically (temp file +
  ``os.replace``, the same discipline as ``_native_build``'s kernel
  cache) so racing workers never load a half-written blob;
* ``names/<name>.json`` — a manifest per grammar name: monotonically
  numbered versions, each carrying the canonical grammar source, the
  wiring fields, the ABI-independent content id, and the per-
  interpreter object keys;
* ``objects/<sha256>.msk`` — mask artifacts for constrained decoding
  (:mod:`repro.apps.structgen`), keyed ``content_id × vocab_hash ×
  mask ABI`` and recorded per version under ``"masks"`` in the
  manifest, so workers load the packed per-state token rows instead
  of re-walking the vocabulary.

Publishing the same source + wiring twice (two parses of one DTD, two
workers racing) converges on one version and one object — the on-disk
fix for the in-process ``WeakKeyDictionary`` caches missing on
structurally-equal grammar objects.  Loading under a *different*
interpreter/ABI than the publisher finds the manifest but not a
compatible object, recompiles from the manifest's source, and heals
the store by publishing a blob for the current tag.

The store root defaults to ``$REPRO_REGISTRY``, else
``$XDG_CACHE_HOME/repro-registry``, else ``~/.cache/repro-registry``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from repro.core.artifact import (
    ArtifactError,
    CompiledArtifact,
    build_artifact,
    content_id,
    interpreter_tag,
    load_artifact,
    object_key,
    options_from_wiring_fields,
    read_header,
    wiring_fields,
)
from repro.core.generator import TaggerOptions
from repro.errors import ReproError
from repro.grammar.cfg import Grammar
from repro.grammar.writer import write_yacc_grammar
from repro.grammar.yacc_parser import parse_yacc_grammar

__all__ = ["Registry", "RegistryError", "default_root", "parse_ref"]


class RegistryError(ReproError):
    """Unknown reference, malformed name, or unusable store."""


def default_root() -> str:
    """The store directory used when none is given explicitly."""
    override = os.environ.get("REPRO_REGISTRY")
    if override:
        return override
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro-registry")


def parse_ref(ref: str) -> tuple[str, int | None]:
    """Split ``"name@version"``; a bare name means the latest version."""
    name, sep, version = ref.partition("@")
    _check_name(name)
    if not sep:
        return name, None
    if not version.isdigit():
        raise RegistryError(
            f"bad registry ref {ref!r}: version must be an integer"
        )
    return name, int(version)


def _check_name(name: str) -> None:
    if not name or not all(
        c.isalnum() or c in "-_." for c in name
    ) or name.startswith("."):
        raise RegistryError(
            f"bad grammar name {name!r}: use letters, digits, '-', '_', '.'"
        )


class Registry:
    """Publish and load named, versioned compiled-grammar artifacts."""

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = os.fspath(root) if root is not None else default_root()
        #: In-process artifact cache by content id: every ref that
        #: resolves to the same logical grammar shares one loaded
        #: artifact (and therefore one grammar object and one set of
        #: warm engine caches).
        self._artifacts: dict[str, CompiledArtifact] = {}
        #: In-process mask-table cache by mask key (content × vocab).
        self._masks: dict = {}

    # ------------------------------------------------------------------
    # store layout
    # ------------------------------------------------------------------
    def _objects_dir(self) -> str:
        return os.path.join(self.root, "objects")

    def _names_dir(self) -> str:
        return os.path.join(self.root, "names")

    def _object_path(self, key: str) -> str:
        return os.path.join(self._objects_dir(), f"{key}.art")

    def _mask_path(self, key: str) -> str:
        return os.path.join(self._objects_dir(), f"{key}.msk")

    def _manifest_path(self, name: str) -> str:
        return os.path.join(self._names_dir(), f"{name}.json")

    def _read_manifest(self, name: str) -> dict | None:
        try:
            with open(self._manifest_path(name), encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            raise RegistryError(
                f"unreadable manifest for {name!r}: {exc}"
            ) from None

    def _write_atomic(self, path: str, data: bytes) -> None:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".publish-")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _write_manifest(self, name: str, manifest: dict) -> None:
        self._write_atomic(
            self._manifest_path(name),
            json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8"),
        )

    # ------------------------------------------------------------------
    # publish
    # ------------------------------------------------------------------
    def publish(
        self,
        name: str,
        grammar: Grammar,
        options: TaggerOptions | None = None,
    ) -> str:
        """Compile ``grammar`` ahead of time and store it under ``name``.

        Returns the pinned reference (``"name@N"``).  Content-addressed
        dedup: if some version of ``name`` already holds the same
        source + wiring, that version's ref is returned (the object is
        still published for this interpreter tag if missing).
        """
        _check_name(name)
        options = options or TaggerOptions()
        source = write_yacc_grammar(grammar)
        cid = content_id(source, options.wiring)
        tag = interpreter_tag()
        manifest = self._read_manifest(name) or {
            "name": name,
            "latest": 0,
            "versions": {},
        }
        for vstr, entry in manifest["versions"].items():
            if entry["content"] == cid:
                if tag not in entry["objects"]:
                    entry["objects"][tag] = self._publish_object(
                        grammar, options, source
                    )
                    self._write_manifest(name, manifest)
                return f"{name}@{vstr}"
        version = max(
            (int(v) for v in manifest["versions"]), default=0
        ) + 1
        key = self._publish_object(grammar, options, source)
        manifest["versions"][str(version)] = {
            "content": cid,
            "source": source,
            "wiring": wiring_fields(options.wiring),
            "objects": {tag: key},
            "published": time.time(),
        }
        manifest["latest"] = max(int(manifest.get("latest", 0)), version)
        self._write_manifest(name, manifest)
        return f"{name}@{version}"

    def _publish_object(
        self, grammar: Grammar, options: TaggerOptions, source: str
    ) -> str:
        key = object_key(source, options.wiring)
        path = self._object_path(key)
        if not os.path.exists(path):
            self._write_atomic(path, build_artifact(grammar, options))
        return key

    # ------------------------------------------------------------------
    # load
    # ------------------------------------------------------------------
    def load(self, ref: str) -> CompiledArtifact:
        """Resolve ``ref`` and return its :class:`CompiledArtifact`.

        The fast path reads one blob and installs warm tables; if the
        store lacks a blob for this interpreter/ABI (published under
        another Python, blob deleted, corrupt), the grammar is
        recompiled from the manifest's canonical source and the store
        is healed with a fresh blob.
        """
        name, version = parse_ref(ref)
        manifest = self._read_manifest(name)
        if manifest is None:
            raise RegistryError(
                f"unknown grammar {name!r} in registry {self.root}"
            )
        if version is None:
            version = int(manifest.get("latest", 0))
        entry = manifest["versions"].get(str(version))
        if entry is None:
            raise RegistryError(
                f"grammar {name!r} has no version {version} "
                f"(latest is {manifest.get('latest', 0)})"
            )
        pinned = f"{name}@{version}"
        cached = self._artifacts.get(entry["content"])
        if cached is not None:
            cached.ref = pinned
            return cached
        artifact = self._load_entry(name, version, entry, manifest)
        artifact.ref = pinned
        self._artifacts[entry["content"]] = artifact
        return artifact

    def _load_entry(
        self, name: str, version: int, entry: dict, manifest: dict
    ) -> CompiledArtifact:
        tag = interpreter_tag()
        key = entry["objects"].get(tag)
        if key:
            try:
                with open(self._object_path(key), "rb") as fh:
                    return load_artifact(fh.read())
            except (OSError, ArtifactError):
                pass
        # Heal: recompile from the canonical source, publish for this
        # interpreter tag, and load the tables we just built.
        grammar = parse_yacc_grammar(entry["source"], name=name)
        options = options_from_wiring_fields(entry["wiring"])
        blob = build_artifact(grammar, options)
        key = object_key(entry["source"], options.wiring)
        try:
            self._write_atomic(self._object_path(key), blob)
            entry["objects"][tag] = key
            self._write_manifest(name, manifest)
        except OSError:
            pass  # read-only store: serve the in-memory compilation
        return load_artifact(blob)

    # ------------------------------------------------------------------
    # mask artifacts (constrained decoding)
    # ------------------------------------------------------------------
    def _resolve_version(self, ref: str) -> tuple[str, int, dict, dict]:
        """(name, version, entry, manifest) for a ref, or raise."""
        name, version = parse_ref(ref)
        manifest = self._read_manifest(name)
        if manifest is None:
            raise RegistryError(
                f"unknown grammar {name!r} in registry {self.root}"
            )
        if version is None:
            version = int(manifest.get("latest", 0))
        entry = manifest["versions"].get(str(version))
        if entry is None:
            raise RegistryError(
                f"grammar {name!r} has no version {version} "
                f"(latest is {manifest.get('latest', 0)})"
            )
        return name, version, entry, manifest

    def publish_masks(self, ref: str, vocab, **build_kwargs) -> dict:
        """Precompute and store the token-mask artifact for ``ref`` ×
        ``vocab`` (:class:`~repro.apps.structgen.Vocabulary`).

        Content-addressed dedup: if the version already records a mask
        for this vocabulary hash and the blob is present, nothing is
        rebuilt.  Returns a summary dict (key, split sizes, bytes).
        """
        from repro.apps.structgen.masks import build_mask_table, mask_key

        name, version, entry, manifest = self._resolve_version(ref)
        vocab_hash = vocab.vocab_hash
        key = mask_key(entry["content"], vocab_hash)
        masks = entry.setdefault("masks", {})
        recorded = masks.get(vocab_hash)
        path = self._mask_path(key)
        if recorded and recorded.get("key") == key and os.path.exists(path):
            return dict(recorded, ref=f"{name}@{version}", rebuilt=False)
        artifact = self.load(f"{name}@{version}")
        table = build_mask_table(
            artifact.grammar, vocab, artifact.options, **build_kwargs
        )
        blob = table.to_blob()
        self._write_atomic(path, blob)
        masks[vocab_hash] = {
            "key": key,
            "vocab_hash": vocab_hash,
            "vocab_size": len(vocab),
            "states": table.n_states,
            "ci": table.ci_count,
            "cd": len(table.cd_ids),
            "bytes": len(blob),
            "published": time.time(),
        }
        self._write_manifest(name, manifest)
        self._masks[key] = table
        return dict(
            masks[vocab_hash],
            ref=f"{name}@{version}",
            rebuilt=True,
            build_ms=table.build_ms,
        )

    def load_masks(self, ref: str, vocab_hash: str | None = None):
        """The :class:`~repro.apps.structgen.MaskTable` for ``ref`` ×
        ``vocab_hash`` (the version's only mask when omitted).

        The scan artifact is loaded first so the mask rows land on the
        exact interned state ids they were built against (the blob's
        table fingerprint enforces it); a missing/foreign blob heals by
        rebuilding from the vocabulary stored inside it when possible.
        """
        from repro.apps.structgen.masks import (
            MaskError,
            build_mask_table,
            load_mask_blob,
            mask_key,
            read_mask_header,
        )
        from repro.apps.structgen.vocab import Vocabulary

        name, version, entry, manifest = self._resolve_version(ref)
        masks = entry.get("masks", {})
        if vocab_hash is None:
            if len(masks) != 1:
                raise RegistryError(
                    f"grammar {name}@{version} has {len(masks)} mask "
                    "artifacts; pass vocab_hash to pick one"
                )
            vocab_hash = next(iter(masks))
        recorded = masks.get(vocab_hash)
        if recorded is None:
            raise RegistryError(
                f"grammar {name}@{version} has no masks for vocabulary "
                f"{vocab_hash[:16]}; run `repro structgen precompute`"
            )
        key = mask_key(entry["content"], vocab_hash)
        cached = self._masks.get(key)
        if cached is not None:
            return cached
        artifact = self.load(f"{name}@{version}")
        blob = None
        try:
            with open(self._mask_path(key), "rb") as fh:
                blob = fh.read()
            table = load_mask_blob(blob, artifact.grammar, artifact.options)
            if not table.has_deltas:
                # Heal an old-format (rev-1) blob in place: the rows
                # load as-is, the delta tables are rebuilt and the
                # artifact re-published with them appended.
                table.build_deltas()
                try:
                    self._write_atomic(
                        self._mask_path(key), table.to_blob()
                    )
                except OSError:
                    pass  # read-only store: serve the upgraded table
        except (OSError, MaskError):
            # Heal: the vocabulary rides inside the blob, so a
            # fingerprint/ABI mismatch rebuilds in place; a missing or
            # unreadable blob cannot (no vocabulary to rebuild from).
            tokens = None
            if blob is not None:
                try:
                    header = read_mask_header(blob)
                    tokens = self._blob_vocab(blob, header)
                except MaskError:
                    tokens = None
            if tokens is None:
                raise RegistryError(
                    f"mask artifact for {name}@{version} × "
                    f"{vocab_hash[:16]} is missing or unreadable; "
                    "re-run `repro structgen precompute`"
                ) from None
            table = build_mask_table(
                artifact.grammar, Vocabulary(tokens), artifact.options
            )
            try:
                self._write_atomic(self._mask_path(key), table.to_blob())
            except OSError:
                pass  # read-only store: serve the in-memory build
        self._masks[key] = table
        return table

    @staticmethod
    def _blob_vocab(blob: bytes, header: dict) -> list[bytes] | None:
        """Extract the trailing vocabulary section from an RMSK blob
        (used to heal a fingerprint-mismatched artifact in place)."""
        try:
            offset = 8 + int.from_bytes(blob[4:8], "big")
            pos = (
                offset
                + header["states"] * header["row_bytes"]
                + 4 * header["cd"]
            )
            tokens = []
            for _ in range(header["vocab_size"]):
                tlen = int.from_bytes(blob[pos : pos + 4], "big")
                pos += 4
                tokens.append(blob[pos : pos + tlen])
                pos += tlen
            return tokens if len(tokens) == header["vocab_size"] else None
        except (KeyError, IndexError, ValueError):
            return None

    # ------------------------------------------------------------------
    # introspection / maintenance
    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        """Registered grammar names (sorted)."""
        try:
            files = os.listdir(self._names_dir())
        except OSError:
            return []
        return sorted(
            f[: -len(".json")] for f in files if f.endswith(".json")
        )

    def refs(self) -> list[str]:
        """Every ``name@latest`` ref (for handshake advertisement)."""
        out = []
        for name in self.names():
            manifest = self._read_manifest(name)
            if manifest and manifest.get("latest"):
                out.append(f"{name}@{manifest['latest']}")
        return out

    def list(self) -> list[dict]:
        """Per-name summaries for ``repro registry list``."""
        out = []
        for name in self.names():
            manifest = self._read_manifest(name)
            if manifest is None:
                continue
            versions = {}
            for vstr, entry in sorted(
                manifest["versions"].items(), key=lambda kv: int(kv[0])
            ):
                versions[vstr] = {
                    "content": entry["content"][:16],
                    "published": entry.get("published"),
                    "objects": len(entry.get("objects", {})),
                    "masks": len(entry.get("masks", {})),
                }
            out.append(
                {
                    "name": name,
                    "latest": manifest.get("latest", 0),
                    "versions": versions,
                }
            )
        return out

    def inspect(self, ref: str) -> dict:
        """Everything known about one version, without loading tables."""
        name, version = parse_ref(ref)
        manifest = self._read_manifest(name)
        if manifest is None:
            raise RegistryError(f"unknown grammar {name!r}")
        if version is None:
            version = int(manifest.get("latest", 0))
        entry = manifest["versions"].get(str(version))
        if entry is None:
            raise RegistryError(f"grammar {name!r} has no version {version}")
        info = {
            "ref": f"{name}@{version}",
            "content": entry["content"],
            "wiring": entry["wiring"],
            "published": entry.get("published"),
            "source_bytes": len(entry["source"]),
            "objects": {},
        }
        for tag, key in entry.get("objects", {}).items():
            obj: dict = {"key": key}
            try:
                with open(self._object_path(key), "rb") as fh:
                    blob = fh.read()
                obj["bytes"] = len(blob)
                header = read_header(blob)
                for field in ("dense", "states", "classes"):
                    if field in header:
                        obj[field] = header[field]
            except (OSError, ArtifactError) as exc:
                obj["error"] = str(exc)
            info["objects"][tag] = obj
        masks = entry.get("masks", {})
        if masks:
            info["masks"] = {}
            for vocab_hash, recorded in masks.items():
                mask: dict = {
                    "key": recorded.get("key"),
                    "vocab_size": recorded.get("vocab_size"),
                    "states": recorded.get("states"),
                    "ci": recorded.get("ci"),
                    "cd": recorded.get("cd"),
                    "published": recorded.get("published"),
                }
                vocab_size = recorded.get("vocab_size") or 0
                if vocab_size:
                    mask["ci_fraction"] = (recorded.get("ci") or 0) / vocab_size
                try:
                    with open(
                        self._mask_path(recorded["key"]), "rb"
                    ) as fh:
                        blob = fh.read()
                    mask["bytes"] = len(blob)
                    from repro.apps.structgen.masks import read_mask_header

                    header = read_mask_header(blob)
                    mask["abi"] = header.get("abi")
                    mask["rev"] = header.get("rev", 1)
                    deltas = header.get("deltas")
                    if deltas:
                        mask["deltas"] = {
                            "rows_deltified": deltas.get(
                                "rows_deltified"
                            ),
                            "mean_popcount": deltas.get(
                                "mean_popcount"
                            ),
                            "payload_bytes": deltas.get(
                                "payload_bytes"
                            ),
                        }
                except (OSError, KeyError, ReproError) as exc:
                    mask["error"] = str(exc)
                info["masks"][vocab_hash[:16]] = mask
        return info

    def gc(self) -> int:
        """Delete objects no manifest references (scan artifacts and
        mask artifacts alike); return the count."""
        referenced = set()
        for name in self.names():
            manifest = self._read_manifest(name)
            if manifest is None:
                continue
            for entry in manifest["versions"].values():
                referenced.update(entry.get("objects", {}).values())
                for recorded in entry.get("masks", {}).values():
                    if recorded.get("key"):
                        referenced.add(recorded["key"])
        removed = 0
        try:
            files = os.listdir(self._objects_dir())
        except OSError:
            return 0
        for fname in files:
            stem, dot, ext = fname.rpartition(".")
            if ext not in ("art", "msk") or not dot:
                continue
            if stem in referenced:
                continue
            try:
                os.unlink(os.path.join(self._objects_dir(), fname))
                removed += 1
            except OSError:
                pass
        return removed
