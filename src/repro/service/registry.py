"""Named, versioned grammar registry over a content-addressed store.

The paper compiles grammars offline and ships the tables to the
device; this module is that deployment boundary in software.  A
:class:`Registry` maps human references — ``"xmlrpc"`` or pinned
``"xmlrpc@2"`` — onto compiled scan artifacts
(:mod:`repro.core.artifact`) persisted under a store directory:

* ``objects/<sha256>.art`` — immutable artifact blobs, addressed by
  :func:`~repro.core.artifact.object_key` (grammar source + wiring +
  engine ABI + interpreter tag), published atomically (temp file +
  ``os.replace``, the same discipline as ``_native_build``'s kernel
  cache) so racing workers never load a half-written blob;
* ``names/<name>.json`` — a manifest per grammar name: monotonically
  numbered versions, each carrying the canonical grammar source, the
  wiring fields, the ABI-independent content id, and the per-
  interpreter object keys.

Publishing the same source + wiring twice (two parses of one DTD, two
workers racing) converges on one version and one object — the on-disk
fix for the in-process ``WeakKeyDictionary`` caches missing on
structurally-equal grammar objects.  Loading under a *different*
interpreter/ABI than the publisher finds the manifest but not a
compatible object, recompiles from the manifest's source, and heals
the store by publishing a blob for the current tag.

The store root defaults to ``$REPRO_REGISTRY``, else
``$XDG_CACHE_HOME/repro-registry``, else ``~/.cache/repro-registry``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from repro.core.artifact import (
    ArtifactError,
    CompiledArtifact,
    build_artifact,
    content_id,
    interpreter_tag,
    load_artifact,
    object_key,
    options_from_wiring_fields,
    read_header,
    wiring_fields,
)
from repro.core.generator import TaggerOptions
from repro.errors import ReproError
from repro.grammar.cfg import Grammar
from repro.grammar.writer import write_yacc_grammar
from repro.grammar.yacc_parser import parse_yacc_grammar

__all__ = ["Registry", "RegistryError", "default_root", "parse_ref"]


class RegistryError(ReproError):
    """Unknown reference, malformed name, or unusable store."""


def default_root() -> str:
    """The store directory used when none is given explicitly."""
    override = os.environ.get("REPRO_REGISTRY")
    if override:
        return override
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro-registry")


def parse_ref(ref: str) -> tuple[str, int | None]:
    """Split ``"name@version"``; a bare name means the latest version."""
    name, sep, version = ref.partition("@")
    _check_name(name)
    if not sep:
        return name, None
    if not version.isdigit():
        raise RegistryError(
            f"bad registry ref {ref!r}: version must be an integer"
        )
    return name, int(version)


def _check_name(name: str) -> None:
    if not name or not all(
        c.isalnum() or c in "-_." for c in name
    ) or name.startswith("."):
        raise RegistryError(
            f"bad grammar name {name!r}: use letters, digits, '-', '_', '.'"
        )


class Registry:
    """Publish and load named, versioned compiled-grammar artifacts."""

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = os.fspath(root) if root is not None else default_root()
        #: In-process artifact cache by content id: every ref that
        #: resolves to the same logical grammar shares one loaded
        #: artifact (and therefore one grammar object and one set of
        #: warm engine caches).
        self._artifacts: dict[str, CompiledArtifact] = {}

    # ------------------------------------------------------------------
    # store layout
    # ------------------------------------------------------------------
    def _objects_dir(self) -> str:
        return os.path.join(self.root, "objects")

    def _names_dir(self) -> str:
        return os.path.join(self.root, "names")

    def _object_path(self, key: str) -> str:
        return os.path.join(self._objects_dir(), f"{key}.art")

    def _manifest_path(self, name: str) -> str:
        return os.path.join(self._names_dir(), f"{name}.json")

    def _read_manifest(self, name: str) -> dict | None:
        try:
            with open(self._manifest_path(name), encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            raise RegistryError(
                f"unreadable manifest for {name!r}: {exc}"
            ) from None

    def _write_atomic(self, path: str, data: bytes) -> None:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".publish-")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _write_manifest(self, name: str, manifest: dict) -> None:
        self._write_atomic(
            self._manifest_path(name),
            json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8"),
        )

    # ------------------------------------------------------------------
    # publish
    # ------------------------------------------------------------------
    def publish(
        self,
        name: str,
        grammar: Grammar,
        options: TaggerOptions | None = None,
    ) -> str:
        """Compile ``grammar`` ahead of time and store it under ``name``.

        Returns the pinned reference (``"name@N"``).  Content-addressed
        dedup: if some version of ``name`` already holds the same
        source + wiring, that version's ref is returned (the object is
        still published for this interpreter tag if missing).
        """
        _check_name(name)
        options = options or TaggerOptions()
        source = write_yacc_grammar(grammar)
        cid = content_id(source, options.wiring)
        tag = interpreter_tag()
        manifest = self._read_manifest(name) or {
            "name": name,
            "latest": 0,
            "versions": {},
        }
        for vstr, entry in manifest["versions"].items():
            if entry["content"] == cid:
                if tag not in entry["objects"]:
                    entry["objects"][tag] = self._publish_object(
                        grammar, options, source
                    )
                    self._write_manifest(name, manifest)
                return f"{name}@{vstr}"
        version = max(
            (int(v) for v in manifest["versions"]), default=0
        ) + 1
        key = self._publish_object(grammar, options, source)
        manifest["versions"][str(version)] = {
            "content": cid,
            "source": source,
            "wiring": wiring_fields(options.wiring),
            "objects": {tag: key},
            "published": time.time(),
        }
        manifest["latest"] = max(int(manifest.get("latest", 0)), version)
        self._write_manifest(name, manifest)
        return f"{name}@{version}"

    def _publish_object(
        self, grammar: Grammar, options: TaggerOptions, source: str
    ) -> str:
        key = object_key(source, options.wiring)
        path = self._object_path(key)
        if not os.path.exists(path):
            self._write_atomic(path, build_artifact(grammar, options))
        return key

    # ------------------------------------------------------------------
    # load
    # ------------------------------------------------------------------
    def load(self, ref: str) -> CompiledArtifact:
        """Resolve ``ref`` and return its :class:`CompiledArtifact`.

        The fast path reads one blob and installs warm tables; if the
        store lacks a blob for this interpreter/ABI (published under
        another Python, blob deleted, corrupt), the grammar is
        recompiled from the manifest's canonical source and the store
        is healed with a fresh blob.
        """
        name, version = parse_ref(ref)
        manifest = self._read_manifest(name)
        if manifest is None:
            raise RegistryError(
                f"unknown grammar {name!r} in registry {self.root}"
            )
        if version is None:
            version = int(manifest.get("latest", 0))
        entry = manifest["versions"].get(str(version))
        if entry is None:
            raise RegistryError(
                f"grammar {name!r} has no version {version} "
                f"(latest is {manifest.get('latest', 0)})"
            )
        pinned = f"{name}@{version}"
        cached = self._artifacts.get(entry["content"])
        if cached is not None:
            cached.ref = pinned
            return cached
        artifact = self._load_entry(name, version, entry, manifest)
        artifact.ref = pinned
        self._artifacts[entry["content"]] = artifact
        return artifact

    def _load_entry(
        self, name: str, version: int, entry: dict, manifest: dict
    ) -> CompiledArtifact:
        tag = interpreter_tag()
        key = entry["objects"].get(tag)
        if key:
            try:
                with open(self._object_path(key), "rb") as fh:
                    return load_artifact(fh.read())
            except (OSError, ArtifactError):
                pass
        # Heal: recompile from the canonical source, publish for this
        # interpreter tag, and load the tables we just built.
        grammar = parse_yacc_grammar(entry["source"], name=name)
        options = options_from_wiring_fields(entry["wiring"])
        blob = build_artifact(grammar, options)
        key = object_key(entry["source"], options.wiring)
        try:
            self._write_atomic(self._object_path(key), blob)
            entry["objects"][tag] = key
            self._write_manifest(name, manifest)
        except OSError:
            pass  # read-only store: serve the in-memory compilation
        return load_artifact(blob)

    # ------------------------------------------------------------------
    # introspection / maintenance
    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        """Registered grammar names (sorted)."""
        try:
            files = os.listdir(self._names_dir())
        except OSError:
            return []
        return sorted(
            f[: -len(".json")] for f in files if f.endswith(".json")
        )

    def refs(self) -> list[str]:
        """Every ``name@latest`` ref (for handshake advertisement)."""
        out = []
        for name in self.names():
            manifest = self._read_manifest(name)
            if manifest and manifest.get("latest"):
                out.append(f"{name}@{manifest['latest']}")
        return out

    def list(self) -> list[dict]:
        """Per-name summaries for ``repro registry list``."""
        out = []
        for name in self.names():
            manifest = self._read_manifest(name)
            if manifest is None:
                continue
            versions = {}
            for vstr, entry in sorted(
                manifest["versions"].items(), key=lambda kv: int(kv[0])
            ):
                versions[vstr] = {
                    "content": entry["content"][:16],
                    "published": entry.get("published"),
                    "objects": len(entry.get("objects", {})),
                }
            out.append(
                {
                    "name": name,
                    "latest": manifest.get("latest", 0),
                    "versions": versions,
                }
            )
        return out

    def inspect(self, ref: str) -> dict:
        """Everything known about one version, without loading tables."""
        name, version = parse_ref(ref)
        manifest = self._read_manifest(name)
        if manifest is None:
            raise RegistryError(f"unknown grammar {name!r}")
        if version is None:
            version = int(manifest.get("latest", 0))
        entry = manifest["versions"].get(str(version))
        if entry is None:
            raise RegistryError(f"grammar {name!r} has no version {version}")
        info = {
            "ref": f"{name}@{version}",
            "content": entry["content"],
            "wiring": entry["wiring"],
            "published": entry.get("published"),
            "source_bytes": len(entry["source"]),
            "objects": {},
        }
        for tag, key in entry.get("objects", {}).items():
            obj: dict = {"key": key}
            try:
                with open(self._object_path(key), "rb") as fh:
                    blob = fh.read()
                obj["bytes"] = len(blob)
                header = read_header(blob)
                for field in ("dense", "states", "classes"):
                    if field in header:
                        obj[field] = header[field]
            except (OSError, ArtifactError) as exc:
                obj["error"] = str(exc)
            info["objects"][tag] = obj
        return info

    def gc(self) -> int:
        """Delete objects no manifest references; return the count."""
        referenced = set()
        for name in self.names():
            manifest = self._read_manifest(name)
            if manifest is None:
                continue
            for entry in manifest["versions"].values():
                referenced.update(entry.get("objects", {}).values())
        removed = 0
        try:
            files = os.listdir(self._objects_dir())
        except OSError:
            return 0
        for fname in files:
            if not fname.endswith(".art"):
                continue
            if fname[: -len(".art")] in referenced:
                continue
            try:
                os.unlink(os.path.join(self._objects_dir(), fname))
                removed += 1
            except OSError:
                pass
        return removed
