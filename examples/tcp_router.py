#!/usr/bin/env python3
"""XML-RPC routing over raw TCP packets (the §5.2 FPX deployment).

The paper plans to deploy the tagger on the FPX behind IP/TCP
protocol wrappers. This example builds that pipeline end to end:

  XML-RPC workload → TCP segmentation (with reordering + duplicates)
  → wire frames → header parsing → TCP-Splitter-style reassembly
  → per-flow content-based routing.

Run:  python examples/tcp_router.py
"""

from repro.apps.netstack import TaggingWrapper, TraceGenerator
from repro.apps.xmlrpc import WorkloadGenerator


def main() -> None:
    # Application layer: four clients, each sending a few calls.
    workload = WorkloadGenerator(seed=17)
    payloads = []
    for _client in range(4):
        stream, _truth = workload.stream(3)
        payloads.append(stream)

    # Transport layer: segment, interleave, and impair the flows.
    tracegen = TraceGenerator(
        seed=99, mss=48, reorder_rate=0.35, duplicate_rate=0.25
    )
    trace = tracegen.trace(payloads)
    frames = tracegen.wire_bytes(trace)
    total_bytes = sum(len(f) for f in frames)
    print(
        f"trace: {len(frames)} frames, {total_bytes} wire bytes, "
        f"4 interleaved flows (MSS {tracegen.mss}, reorder "
        f"{tracegen.reorder_rate:.0%}, duplicates {tracegen.duplicate_rate:.0%})"
    )

    # The wrapper: parse → reassemble → tag → route, per flow.
    wrapper = TaggingWrapper()
    results = wrapper.process(frames=frames)
    stats = wrapper.reassembler.stats
    print(
        f"reassembly: {stats.packets} packets "
        f"({stats.in_order} in-order, {stats.out_of_order} out-of-order, "
        f"{stats.duplicates} duplicates dropped)\n"
    )
    for flow in sorted(results, key=lambda r: r.key.src_port):
        routes = ", ".join(
            f"{m.service}→{wrapper.router.table.name_of(m.port)}"
            for m in flow.messages
        )
        print(f"  {flow.key}: {len(flow.payload)}B -> {routes}")


if __name__ == "__main__":
    main()
