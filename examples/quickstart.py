#!/usr/bin/env python3
"""Quickstart: grammar in, tagged tokens and hardware out.

Recreates the paper's running example (Figs. 9-11): the if-then-else
grammar is analyzed with the First/Follow algorithm, compiled into a
hardware token tagger, and used to tag a sentence — first with the
fast behavioral tagger, then cycle-accurately on the generated
gate-level netlist, and finally pushed through the FPGA area/timing
model for a Table 1-style report.

Run:  python examples/quickstart.py
"""

from repro import (
    BehavioralTagger,
    GateLevelTagger,
    TaggerGenerator,
    get_device,
    grammar_from_yacc,
    implement,
)
from repro.grammar.analysis import analyze_grammar

GRAMMAR = """
%%
E: "if" C "then" E "else" E | "go" | "stop";
C: "true" | "false";
%%
"""


def main() -> None:
    grammar = grammar_from_yacc(GRAMMAR, name="if-then-else")
    print(grammar.describe())

    # The Fig. 8 algorithm; this table is the paper's Fig. 10.
    analysis = analyze_grammar(grammar)
    print("\nFollow sets (paper Fig. 10):")
    print(analysis.describe_follow())

    sentence = b"if true then if false then go else stop else go"
    print(f"\nTagging {sentence.decode()!r} (behavioral):")
    tagger = BehavioralTagger(grammar)
    for token in tagger.tag(sentence):
        print(f"  {token}")

    # The same stream through the generated netlist, cycle by cycle.
    circuit = TaggerGenerator().generate(grammar)
    print(f"\nGenerated hardware: {circuit.describe()}")
    gate = GateLevelTagger(circuit)
    gate_tokens = gate.tag(sentence)
    assert [str(t) for t in gate_tokens] == [str(t) for t in tagger.tag(sentence)]
    print("gate-level simulation produced identical tags ✓")

    # Area/timing model on both of the paper's devices.
    print("\nImplementation model:")
    for device_key in ("virtex4-lx200", "virtexe-2000"):
        report = implement(circuit, get_device(device_key))
        print(f"  {report.timing.summary()}  ({report.n_luts} LUTs)")


if __name__ == "__main__":
    main()
