#!/usr/bin/env python3
"""Natural-language front end (the paper's §5.1 application sketch).

"The architecture can also be used for high-speed processing of
natural languages. … By identifying words within their context, a
semantic processing system could more accurately define the meaning
of each word."

A miniature English grammar where the same word form plays different
grammatical roles; the tagger's context tags disambiguate them — e.g.
"fish" as a noun versus "fish" as a verb — purely from token position,
the way the paper envisions a front end for semantic processing.

Run:  python examples/natural_language.py
"""

from repro import BehavioralTagger, grammar_from_yacc
from repro.core.stack import StackTagger

# S  -> NP VP ; simple declaratives with an ambiguous word list.
GRAMMAR = """
%%
s:    np vp;
np:   det noun | noun;
vp:   verb | verb np;
det:  "the" | "a";
noun: "people" | "fish" | "boats" | "water";
verb: "fish" | "row" | "drink";
%%
"""


def role_of(token, grammar) -> str:
    """The grammatical role = the LHS of the production that used it."""
    return grammar.productions[token.occurrence.production].lhs.name


def main() -> None:
    grammar = grammar_from_yacc(GRAMMAR, name="mini-english")
    tagger = BehavioralTagger(grammar)

    sentences = [
        b"the people fish",          # 'fish' is the verb
        b"people drink the water",
        b"a fish",                   # fragment: 'fish' is a noun
    ]
    for sentence in sentences:
        print(f"{sentence.decode()!r}:")
        for token in tagger.tag(sentence):
            print(f"   {token.text():<8} as {role_of(token, grammar)}")

    # 'fish' after "the people" carries the verb tag (and, because the
    # stack-less engine also entertains "…people." ending a sentence
    # with 'fish' starting the next one, a parallel noun tag — the
    # §3.3 behaviour: "if multiple transitions takes place, all of
    # them can be executed in parallel").
    roles = {
        role_of(t, grammar)
        for t in tagger.tag(b"the people fish")
        if t.text() == "fish"
    }
    assert "verb" in roles
    roles = {
        role_of(t, grammar)
        for t in tagger.tag(b"a fish")
        if t.text() == "fish"
    }
    assert roles == {"noun"}
    print("\n'fish' disambiguated by grammatical context ✓")

    # Strict recognition with the §5.2 stack extension:
    strict = StackTagger(grammar)
    print("\nstrict grammaticality (stack mode):")
    for sentence in (b"the people fish", b"fish the the"):
        verdict = "grammatical" if strict.accepts(sentence) else "rejected"
        print(f"   {sentence.decode()!r}: {verdict}")


if __name__ == "__main__":
    main()
