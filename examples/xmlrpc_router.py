#!/usr/bin/env python3
"""XML-RPC content-based message router (the paper's §4, Fig. 12).

Generates a stream of XML-RPC calls for bank and shopping services —
including adversarial messages that plant the *other* service's name
inside a payload value — and routes it twice:

* with the context-aware tagger (service read only from the
  methodName context), and
* with a naive string matcher (service matched anywhere, the
  deep-packet-inspection baseline of §1).

The naive router misroutes exactly the decoy messages.

Run:  python examples/xmlrpc_router.py
"""

from repro.apps.xmlrpc import (
    ContentBasedRouter,
    MethodCall,
    NaiveRouter,
    StringValue,
    I4Value,
    WorkloadGenerator,
)


def demo_single_message() -> None:
    call = MethodCall(
        method="deposit",
        params=(I4Value(250), StringValue("savings")),
    )
    print("message:", call.serialize())
    router = ContentBasedRouter()
    message = router.route(call.encode())[0]
    print(
        f"routed to port {message.port} "
        f"({router.table.name_of(message.port)}), service={message.service}"
    )


def demo_adversarial_stream() -> None:
    generator = WorkloadGenerator(seed=42, adversarial_rate=0.35)
    stream, truth = generator.stream(50)
    print(f"\nstream: 50 messages, {len(stream)} bytes, "
          f"{sum(1 for _c, _p, d in truth if d)} carry decoy service names")

    contextual = ContentBasedRouter()
    naive = NaiveRouter()
    for name, router in (("contextual", contextual), ("naive", naive)):
        routed = router.route(stream)
        correct = sum(
            1
            for message, (_call, port, _d) in zip(routed, truth)
            if message.port == port
        )
        print(f"  {name:<10} router: {correct}/{len(truth)} routed correctly")

    # Show one misrouted decoy in detail.
    for message, nmessage, (call, port, decoy) in zip(
        contextual.route(stream), naive.route(stream), truth
    ):
        if decoy and nmessage.port != port:
            print("\nexample decoy message:")
            print(" ", message.payload.decode()[:120], "…")
            print(
                f"  true service {call.method!r} (port {port}); "
                f"contextual -> port {message.port} ✓, "
                f"naive -> port {nmessage.port} ✗ (matched {nmessage.service!r})"
            )
            break


def demo_port_queues() -> None:
    generator = WorkloadGenerator(seed=7)
    stream, _truth = generator.stream(12)
    router = ContentBasedRouter()
    print("\nper-port queues (the Fig. 12 switch):")
    for port, messages in sorted(router.route_to_ports(stream).items()):
        print(
            f"  {router.table.name_of(port):<16} "
            f"{len(messages)} messages: "
            + ", ".join(m.service or "?" for m in messages)
        )


if __name__ == "__main__":
    demo_single_message()
    demo_adversarial_stream()
    demo_port_queues()
