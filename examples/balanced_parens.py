#!/usr/bin/env python3
"""The balanced-parenthesis grammar and the PDA→FSA collapse (Fig. 2).

The paper's key design decision (§3.1): recursive parser state is not
kept in hardware, collapsing the push-down automaton of Fig. 2a into
the finite automaton of Fig. 2b. The tagger therefore accepts a
*superset* of the language — token order is enforced, nesting balance
is not. This example shows both sides:

* balanced input tags exactly like the true (LL(1)) parser;
* unbalanced-but-locally-legal input still streams through the tagger
  (the superset), while the true parser rejects it.

Run:  python examples/balanced_parens.py
"""

from repro import BehavioralTagger
from repro.errors import ParseError
from repro.grammar.examples import balanced_parens
from repro.software import LL1Parser


def show(tagger: BehavioralTagger, parser: LL1Parser, data: bytes) -> None:
    tags = " ".join(f"{t.token}@{t.context}" for t in tagger.tag(data))
    try:
        parser.parse(data)
        verdict = "accepted by true parser"
    except ParseError as exc:
        verdict = f"REJECTED by true parser ({exc})"
    print(f"  {data.decode()!r:<12} tagger: [{tags}]")
    print(f"  {'':<12} {verdict}")


def main() -> None:
    grammar = balanced_parens()
    print(grammar.describe())
    tagger = BehavioralTagger(grammar)
    parser = LL1Parser(grammar)

    print("\nBalanced sentences (language of the grammar):")
    for data in (b"0", b"(0)", b"((0))", b"( ( 0 ) )"):
        show(tagger, parser, data)

    print("\nUnbalanced sentences (the FSA superset of Fig. 2b):")
    print("every adjacent token pair is legal, so the stack-less tagger")
    print("still tags them; only the true parser catches the imbalance:")
    for data in (b"((0)", b"(0))"):
        show(tagger, parser, data)

    print("\nLocally illegal input (caught even without a stack):")
    print("')' may not follow '(' in any sentence, so it is never tagged;")
    print("after an accepting token the start tokens re-arm (streaming):")
    for data in (b"()", b"0)("):
        tags = [str(t) for t in tagger.tag(data)]
        print(f"  {data.decode()!r:<8} tagger emits {tags}")


if __name__ == "__main__":
    main()
