#!/usr/bin/env python3
"""Context-aware intrusion signatures and content filtering (§3.5/§5.1).

Two back-ends on the same XML-RPC tagger:

* a signature scanner that alerts on a byte pattern only when it
  appears in a sensitive grammatical context (base64 payloads), while
  the same bytes in a method name are benign — compared against a
  context-free sweep that alarms on both;
* a content filter that drops messages calling a forbidden method,
  while the same word inside a string parameter passes.

Run:  python examples/nids_filter.py
"""

from repro.apps.content_filter import ContentFilter, FilterRule
from repro.apps.nids import ContextSignatureScanner, Signature
from repro.apps.xmlrpc import Base64Value, MethodCall, StringValue
from repro.grammar.examples import xmlrpc


def demo_signatures() -> None:
    grammar = xmlrpc()
    scanner = ContextSignatureScanner(
        grammar,
        signatures=[
            Signature(
                name="shellcode-marker",
                pattern=b"90cc90",
                contexts=frozenset({"base64"}),
            )
        ],
    )
    stream = b"".join(
        call.encode()
        for call in (
            # Malicious: the marker inside a base64 payload.
            MethodCall("upload", (Base64Value("AAAA90cc90AAAA"),)),
            # Benign: the same bytes as an innocent string parameter.
            MethodCall("echo", (StringValue("90cc90"),)),
        )
    )
    comparison = scanner.compare_with_naive(stream)
    print("signature scan over two messages:")
    for alert in comparison.alerts:
        print(f"  ALERT {alert.signature} in <{alert.context}> "
              f"at [{alert.start}:{alert.end}]")
    print(f"  naive context-free sweep hits: {len(comparison.naive_hits)}")
    print(f"  false positives avoided by context: "
          f"{comparison.false_positives}")


def demo_filter() -> None:
    grammar = xmlrpc()
    content_filter = ContentFilter(
        grammar,
        rules=[FilterRule(value=b"withdraw", context="methodName")],
    )
    stream = b"".join(
        call.encode()
        for call in (
            MethodCall("withdraw", ()),                    # forbidden
            MethodCall("deposit", (StringValue("withdraw"),)),  # fine
        )
    )
    print("\ncontent filter (forbid method 'withdraw'):")
    for decision in content_filter.filter(stream):
        verdict = "DROP" if decision.dropped else "pass"
        print(f"  [{decision.start}:{decision.end}] {verdict} "
              f"{decision.flags or ''}")
    survivors = content_filter.passed(stream)
    print(f"  {survivors.count(b'<methodCall>')} of 2 messages pass")


if __name__ == "__main__":
    demo_signatures()
    demo_filter()
