#!/usr/bin/env python3
"""Structure-preserving translation with two grammars (§5.1).

"Another application for natural language processing could be using
two grammars in different languages to more accurately translate
documents from one language to another since word ordering is not
always the same."

Two toy grammars for the same command language — an English-like
prefix form and a "reversed" postfix form with different word order.
The tagger parses the source with grammar A; because every token
carries its grammatical role (the occurrence tag), the translator can
re-emit the sentence under grammar B's word order and vocabulary,
then verify the output against grammar B with the strict stack tagger.

Run:  python examples/translation.py
"""

from repro import grammar_from_yacc
from repro.core.stack import StackTagger

# Source language: "move the box", "paint the door red" (verb first).
SOURCE = """
%%
cmd:   verb "the" noun | verb "the" noun adj;
verb:  "move" | "paint" | "open";
noun:  "box" | "door" | "window";
adj:   "red" | "blue";
%%
"""

# Target language: noun first, verb last, adjective before noun,
# different vocabulary ("kiste schieben" style word order).
TARGET = """
%%
cmd:   "das" noun verb | "das" adj noun verb;
noun:  "kiste" | "tuer" | "fenster";
verb:  "schieben" | "streichen" | "oeffnen";
adj:   "rot" | "blau";
%%
"""

VOCABULARY = {
    "move": "schieben", "paint": "streichen", "open": "oeffnen",
    "box": "kiste", "door": "tuer", "window": "fenster",
    "red": "rot", "blue": "blau",
}


def translate(sentence: bytes, source, target) -> bytes:
    """Parse with the source grammar, re-order and re-word for the
    target grammar."""
    tagged = StackTagger(source).run(sentence)
    role_of = {}
    for stacked in tagged:
        token = stacked.token
        role = source.productions[token.occurrence.production].lhs.name
        role_of.setdefault(role, []).append(token.text())

    words = ["das"]
    if "adj" in role_of:
        words.append(VOCABULARY[role_of["adj"][0]])
    words.append(VOCABULARY[role_of["noun"][0]])
    words.append(VOCABULARY[role_of["verb"][0]])
    return " ".join(words).encode()


def main() -> None:
    source = grammar_from_yacc(SOURCE, name="source-lang")
    target = grammar_from_yacc(TARGET, name="target-lang")
    checker = StackTagger(target)

    for sentence in (
        b"move the box",
        b"paint the door red",
        b"open the window",
    ):
        translated = translate(sentence, source, target)
        ok = checker.accepts(translated)
        print(f"{sentence.decode():<22} -> {translated.decode():<28} "
              f"[{'valid in target grammar' if ok else 'INVALID'}]")
        assert ok

    print("\nword order changed (verb-first -> verb-last) while the")
    print("grammatical roles carried by the tags kept the structure.")


if __name__ == "__main__":
    main()
