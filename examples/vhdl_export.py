#!/usr/bin/env python3
"""Generate VHDL for a tagger, mirroring the paper's code generator.

"The grammar … is loaded into the VHDL code generator which completely
generates all the code required for the parser." (§4.2)

This example compiles the if-then-else grammar to a netlist, emits the
VHDL design unit, and prints implementation estimates for both of the
paper's devices. Pass a path argument to write the VHDL to a file.

Run:  python examples/vhdl_export.py [out.vhd]
"""

import sys

from repro import TaggerGenerator, emit_vhdl, get_device, implement
from repro.grammar.examples import if_then_else


def main() -> None:
    grammar = if_then_else()
    circuit = TaggerGenerator().generate(grammar, name="if_then_else_tagger")
    vhdl = emit_vhdl(circuit.netlist)

    if len(sys.argv) > 1:
        with open(sys.argv[1], "w", encoding="utf-8") as handle:
            handle.write(vhdl)
        print(f"wrote {len(vhdl.splitlines())} lines of VHDL to {sys.argv[1]}")
    else:
        lines = vhdl.splitlines()
        print("\n".join(lines[:40]))
        print(f"… ({len(lines) - 40} more lines; pass a filename to save)")

    print()
    print(circuit.describe())
    for device_key in ("virtex4-lx200", "virtexe-2000"):
        report = implement(circuit, get_device(device_key))
        print(
            f"{report.device.name}: {report.n_luts} LUTs "
            f"({report.utilization:.2%} of device), "
            f"{report.frequency_mhz:.0f} MHz, "
            f"{report.bandwidth_gbps:.2f} Gbps"
        )


if __name__ == "__main__":
    main()
