"""Figure 15 regeneration: frequency vs grammar pattern bytes.

Run with ``pytest benchmarks/bench_figure15.py --benchmark-only``.

Prints the five-point Virtex 4 curve (ours vs paper), an ASCII plot,
and the §4.3 routing-delay breakdown showing the decoded-bit fanout
becoming the critical path (~2 ns at 3000 bytes). Benchmarks the
timing-analysis stage across design sizes.
"""

import pytest

from repro.bench.figure15 import ascii_plot, format_figure15, run_figure15
from repro.bench.scaling import scale_point_grammar
from repro.core.generator import TaggerGenerator
from repro.fpga.device import get_device
from repro.fpga.techmap import techmap
from repro.fpga.timing import analyze_timing


def test_figure15_report(report_sink, benchmark):
    points = benchmark.pedantic(run_figure15, rounds=1, iterations=1)
    breakdown_lines = ["", "§4.3 routing-delay breakdown (worst nets):"]
    for point in points:
        worst = point.measured.timing.worst_nets[0]
        breakdown_lines.append(
            f"  {point.measured.pattern_bytes:>5}B: net {worst.net} "
            f"fanout {worst.fanout} route {worst.route_ns:.2f} ns"
        )
    report_sink(
        "figure15",
        format_figure15(points) + "\n" + ascii_plot(points)
        + "\n".join(breakdown_lines),
    )
    freqs = [p.measured.frequency_mhz for p in points]
    assert all(a >= b - 1e-6 for a, b in zip(freqs, freqs[1:]))
    assert points[-1].worst_route_ns == pytest.approx(2.0, abs=0.15)


@pytest.mark.parametrize("copies", [1, 4, 9])
def test_timing_analysis_speed(benchmark, copies):
    circuit = TaggerGenerator().generate(scale_point_grammar(copies))
    mapping = techmap(circuit.netlist)
    device = get_device("virtex4-lx200")
    report = benchmark(lambda: analyze_timing(mapping, device))
    assert report.frequency_mhz > 0


def test_dense_sweep_report(report_sink, benchmark):
    """Extra resolution beyond the paper's five points."""
    device = get_device("virtex4-lx200")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["dense sweep (copies 1..10):",
             "bytes  LUTs  L/B   MHz   Gbps"]
    for copies in range(1, 11):
        circuit = TaggerGenerator().generate(scale_point_grammar(copies))
        report = __import__(
            "repro.fpga.report", fromlist=["implement"]
        ).implement(circuit, device)
        lines.append(
            f"{report.pattern_bytes:>5} {report.n_luts:>5} "
            f"{report.luts_per_byte:4.2f} {report.frequency_mhz:5.0f} "
            f"{report.bandwidth_gbps:5.2f}"
        )
    report_sink("figure15_dense", "\n".join(lines))
